//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal harness: each benchmark runs a short warm-up plus a fixed
//! number of timed iterations and prints the mean wall-clock time. No
//! statistics, plots, or baselines — just enough to keep `cargo bench`
//! targets building and producing comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const DEFAULT_SAMPLE: u64 = 30;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, f: &mut F) {
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<55} {mean:>12.3?}/iter ({} iters)", b.iters);
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= DEFAULT_SAMPLE);
    }

    #[test]
    fn group_labels_compose() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
