//! Offline shim for the `rand` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it calls: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`. The generator is xoshiro256++ seeded through splitmix64 —
//! deterministic per seed, which is all the datagen and annealing code
//! require (they never depend on matching upstream `rand`'s exact stream).

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its full domain (only the types the
    /// workspace uses are supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`; panics on an empty range like `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        standard_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable over their full domain via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

fn standard_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        standard_f64(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-domain u64/i64
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + standard_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (standard_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3i64..=9);
            assert!((3..=9).contains(&v));
            let v = r.gen_range(0usize..5);
            assert!(v < 5);
            let f = r.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
        // Every value in a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }
}
