//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a thin wrapper over `std::sync` locks with `parking_lot`'s ergonomics:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is
//! swallowed, matching parking_lot's poison-free semantics).

use std::sync::PoisonError;

/// Mutex with `parking_lot`-style non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`-style non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
