//! Offline mini property-testing harness with a `proptest`-compatible API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of `proptest` its test suites use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases`, range
//! and regex-literal strategies, `collection::vec`, tuple strategies,
//! `any::<T>()`, and `sample::Index`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (reproducible across runs), and failing cases are
//! reported without shrinking.

use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (xoshiro256++ seeded from the property name).
pub mod test_runner {
    /// RNG handed to strategies while generating a case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of the property named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Unbiased integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample from empty range");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Something that can generate values of `Self::Value` for a test case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String-literal strategies interpret the literal as a (small) regex:
/// literals, `[...]` classes with ranges, `(...)` groups, and `{n}` /
/// `{n,m}` quantifiers — the subset the workspace's suites use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::emit(&ast, rng, &mut out);
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats only — mirrors proptest's default f64 strategy
        // closely enough for these suites.
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy choosing uniformly among a fixed set of values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// This index reduced modulo `len`; panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }

        /// The element of `slice` this index selects.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// Tiny regex-subset parser/generator backing string-literal strategies.
mod regex_lite {
    use super::test_runner::TestRng;

    #[derive(Debug)]
    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let nodes = parse_seq(&chars, &mut pos, false);
        assert!(pos == chars.len(), "unsupported regex pattern: {pattern}");
        nodes
    }

    fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Node> {
        let mut out = Vec::new();
        while *pos < chars.len() {
            let c = chars[*pos];
            let atom = match c {
                ')' if in_group => break,
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos))
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, true);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unterminated group in regex"
                    );
                    *pos += 1;
                    Node::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    assert!(*pos < chars.len(), "dangling escape in regex");
                    let esc = chars[*pos];
                    *pos += 1;
                    Node::Literal(esc)
                }
                _ => {
                    *pos += 1;
                    Node::Literal(c)
                }
            };
            // Optional {n} / {n,m} quantifier.
            if *pos < chars.len() && chars[*pos] == '{' {
                *pos += 1;
                let (lo, hi) = parse_counts(chars, pos);
                out.push(Node::Repeat(Box::new(atom), lo, hi));
            } else {
                out.push(atom);
            }
        }
        out
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = chars[*pos];
            *pos += 1;
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                let hi = chars[*pos + 1];
                *pos += 2;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(*pos < chars.len(), "unterminated class in regex");
        *pos += 1; // consume ']'
        ranges
    }

    fn parse_counts(chars: &[char], pos: &mut usize) -> (u32, u32) {
        let mut lo = 0u32;
        while chars[*pos].is_ascii_digit() {
            lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
            *pos += 1;
        }
        let hi = if chars[*pos] == ',' {
            *pos += 1;
            let mut h = 0u32;
            while chars[*pos].is_ascii_digit() {
                h = h * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            h
        } else {
            lo
        };
        assert!(chars[*pos] == '}', "malformed quantifier in regex");
        *pos += 1;
        (lo, hi)
    }

    pub fn emit(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            emit_one(node, rng, out);
        }
    }

    fn emit_one(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                        return;
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Node::Group(inner) => emit(inner, rng, out),
            Node::Repeat(atom, lo, hi) => {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as u32;
                for _ in 0..n {
                    emit_one(atom, rng, out);
                }
            }
        }
    }
}

/// Everything the test suites import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3i64..10, y in 0.5..2.5f64, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!(n >= 1 && n < 4);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in collection::vec(0u8..3, 2..6),
            fixed in collection::vec((any::<bool>(), 0i32..5), 3),
            pick in any::<sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 3));
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(pick.index(7) < 7);
        }

        #[test]
        fn regex_strategies(s in "[a-c]{2,4}", t in "x(y[0-9]){1,2}", u in "[ -~]{0,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.starts_with('x'));
            prop_assert!(t.len() == 3 || t.len() == 5);
            prop_assert!(u.len() <= 5);
            prop_assert!(u.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn config_cases_respected() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
