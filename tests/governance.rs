//! Query-governance integration tests: deadlines, cooperative
//! cancellation, and memory budgets must abort cleanly with typed errors,
//! never panic, and never poison the session caches with partial state —
//! under both serial and parallel execution.

use std::time::Duration;

use kdap_suite::core::{render_exploration, Kdap, KdapError};
use kdap_suite::datagen::{build_ebiz, EbizScale};

const THREADS: [usize; 2] = [1, 4];

fn session(threads: usize) -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap())
        .cache_capacity(16)
        .threads(threads)
        .build()
        .unwrap()
}

#[test]
fn zero_deadline_times_out_differentiate() {
    for threads in THREADS {
        let mut kdap = session(threads);
        kdap.set_deadline(Some(Duration::ZERO));
        match kdap.try_interpret("columbus lcd") {
            Err(KdapError::Timeout { stage, .. }) => {
                assert!(!stage.is_empty(), "breach reports its stage");
            }
            other => panic!("expected Timeout with {threads} thread(s), got {other:?}"),
        }
        // The infallible facade degrades to "no interpretations".
        assert!(kdap.interpret("columbus lcd").is_empty());
    }
}

#[test]
fn zero_deadline_times_out_explore() {
    for threads in THREADS {
        let mut kdap = session(threads);
        let ranked = kdap.interpret("columbus");
        assert!(!ranked.is_empty());
        let net = ranked[0].net.clone();
        kdap.set_deadline(Some(Duration::ZERO));
        match kdap.explore(&net) {
            Err(KdapError::Timeout { stage, .. }) => assert!(!stage.is_empty()),
            other => panic!("expected Timeout with {threads} thread(s), got {other:?}"),
        }
        // Clearing the deadline restores normal service: the deadline
        // clock restarts per query, so earlier breaches leave no residue.
        kdap.set_deadline(None);
        kdap.explore(&net).expect("no deadline, no breach");
    }
}

#[test]
fn pre_cancelled_token_aborts_the_next_query() {
    for threads in THREADS {
        let kdap = session(threads);
        let token = kdap.cancel_token();
        let ranked = kdap.interpret("columbus");
        let net = ranked[0].net.clone();
        token.cancel();
        match kdap.explore(&net) {
            Err(KdapError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled with {threads} thread(s), got {other:?}"),
        }
        token.reset();
        kdap.explore(&net).expect("reset token runs normally");
    }
}

#[test]
fn cancellation_from_another_thread_stops_a_running_query() {
    let kdap = session(4);
    let token = kdap.cancel_token();
    let ranked = kdap.interpret("columbus");
    let net = ranked[0].net.clone();
    let canceller = std::thread::spawn({
        let token = token.clone();
        move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        }
    });
    // Re-run the query until the asynchronous cancel lands; the flag
    // persists until reset, so one of the runs must observe it.
    let give_up = std::time::Instant::now() + Duration::from_secs(30);
    let mut cancelled = false;
    while std::time::Instant::now() < give_up {
        match kdap.explore(&net) {
            Ok(_) => continue,
            Err(KdapError::Cancelled { .. }) => {
                cancelled = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    canceller.join().unwrap();
    assert!(cancelled, "cancellation was never observed");
    token.reset();
    kdap.explore(&net).expect("token reset restores service");
}

#[test]
fn tiny_budget_is_exceeded_and_reported() {
    for threads in THREADS {
        let mut kdap = session(threads);
        let ranked = kdap.interpret("columbus");
        let net = ranked[0].net.clone();
        kdap.set_memory_budget(Some(1));
        match kdap.explore(&net) {
            Err(KdapError::BudgetExceeded {
                stage,
                budget_bytes,
                charged_bytes,
            }) => {
                assert!(!stage.is_empty());
                assert_eq!(budget_bytes, 1);
                assert!(charged_bytes > budget_bytes);
            }
            other => panic!("expected BudgetExceeded with {threads} thread(s), got {other:?}"),
        }
        kdap.set_memory_budget(None);
        kdap.explore(&net).expect("no budget, no breach");
    }
}

#[test]
fn empty_and_stopword_queries_are_typed_errors() {
    let kdap = session(1);
    for q in ["", "   ", "!!! ???", "the and of", "a the with"] {
        match kdap.try_interpret(q) {
            Err(KdapError::EmptyQuery) => {}
            other => panic!("{q:?}: expected EmptyQuery, got {other:?}"),
        }
        assert!(kdap.interpret(q).is_empty());
    }
    // Usable-but-unmatched keywords are an empty result, not an error.
    assert!(kdap.try_interpret("zzzzqqqq").unwrap().is_empty());
}

#[test]
fn breaches_increment_governor_counters() {
    let mut kdap = Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap())
        .cache_capacity(16)
        .observability(true)
        .build()
        .unwrap();
    kdap.set_deadline(Some(Duration::ZERO));
    assert!(kdap.try_interpret("columbus lcd").is_err());
    assert!(kdap.try_interpret("seattle").is_err());
    kdap.set_deadline(None);
    let token = kdap.cancel_token();
    token.cancel();
    let ranked_err = kdap.try_interpret("columbus");
    assert!(matches!(ranked_err, Err(KdapError::Cancelled { .. })));
    let snap = kdap.obs().metrics_snapshot();
    assert_eq!(snap.counters.get("governor.timeouts"), Some(&2));
    assert_eq!(snap.counters.get("governor.cancellations"), Some(&1));
}

/// The cache-poisoning invariant: a query that breaches a limit commits
/// nothing — entry counts stay put, and the session afterwards produces
/// results identical to a session that never saw the failed query.
#[test]
fn timed_out_query_leaves_caches_unpoisoned() {
    for threads in THREADS {
        let mut kdap = session(threads);
        // Warm the caches with a successful exploration.
        let ranked = kdap.interpret("columbus");
        let warm = kdap.explore(&ranked[0].net).unwrap();
        let semijoin_len = kdap.semijoin_cache_len();
        let subspace_len = kdap.subspace_cache_len();
        assert!(semijoin_len.unwrap_or(0) > 0, "warm-up populated the cache");

        // A different query breaches the deadline before committing.
        let victim = kdap.interpret("seattle");
        assert!(!victim.is_empty());
        kdap.set_deadline(Some(Duration::ZERO));
        for r in victim.iter().take(3) {
            assert!(matches!(
                kdap.explore(&r.net),
                Err(KdapError::Timeout { .. })
            ));
        }
        assert_eq!(kdap.semijoin_cache_len(), semijoin_len);
        assert_eq!(kdap.subspace_cache_len(), subspace_len);

        // The surviving session renders the warm query exactly as a
        // control session that never ran the failed one.
        kdap.set_deadline(None);
        let again = kdap.explore(&ranked[0].net).unwrap();
        let control = session(threads);
        let control_ranked = control.interpret("columbus");
        let control_ex = control.explore(&control_ranked[0].net).unwrap();
        assert_eq!(render_exploration(&warm), render_exploration(&again));
        assert_eq!(render_exploration(&again), render_exploration(&control_ex));
    }
}

/// A budget breach mid-query must obey the same invariant as a timeout.
#[test]
fn budget_breach_leaves_caches_unpoisoned() {
    for threads in THREADS {
        let mut kdap = session(threads);
        let ranked = kdap.interpret("columbus");
        kdap.explore(&ranked[0].net).unwrap();
        let semijoin_len = kdap.semijoin_cache_len();
        let subspace_len = kdap.subspace_cache_len();

        let victim = kdap.interpret("seattle");
        kdap.set_memory_budget(Some(1));
        for r in victim.iter().take(3) {
            assert!(kdap.explore(&r.net).is_err());
        }
        assert_eq!(kdap.semijoin_cache_len(), semijoin_len);
        assert_eq!(kdap.subspace_cache_len(), subspace_len);
    }
}
