//! Save/load roundtrips: any warehouse — including the generated demo
//! ones — persists as a spec + CSV directory and reloads identically.

use std::path::PathBuf;

use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_ebiz, EbizScale};
use kdap_suite::warehouse::{export_spec, load_warehouse, save_warehouse};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdap_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ebiz_roundtrips_through_disk() {
    let wh = build_ebiz(EbizScale::small(), 7).unwrap();
    let dir = temp_dir("ebiz");
    save_warehouse(&wh, &dir).unwrap();
    let loaded = load_warehouse(&dir).unwrap();

    // Structure matches.
    assert_eq!(loaded.tables().len(), wh.tables().len());
    assert_eq!(loaded.fact_rows(), wh.fact_rows());
    assert_eq!(
        loaded.schema().dimensions().len(),
        wh.schema().dimensions().len()
    );
    assert_eq!(loaded.schema().edges().len(), wh.schema().edges().len());
    assert_eq!(
        loaded.schema().measures().len(),
        wh.schema().measures().len()
    );

    // Every cell of every table matches.
    for t in wh.tables() {
        let lt = loaded.table(loaded.table_id(t.name()).unwrap());
        assert_eq!(lt.nrows(), t.nrows(), "table {}", t.name());
        for r in 0..t.nrows() {
            assert_eq!(lt.row(r), t.row(r), "{} row {r}", t.name());
        }
    }

    // Hierarchies and roles survived.
    let product = loaded.schema().dimension_by_name("Product").unwrap();
    assert_eq!(product.hierarchies.len(), 2);
    assert!(loaded
        .schema()
        .edges()
        .iter()
        .any(|e| e.role.as_deref() == Some("Buyer")));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kdap_answers_identically_after_reload() {
    let wh = build_ebiz(EbizScale::small(), 7).unwrap();
    let dir = temp_dir("answers");
    save_warehouse(&wh, &dir).unwrap();
    let loaded = load_warehouse(&dir).unwrap();

    let a = Kdap::builder(wh).build().unwrap();
    let b = Kdap::builder(loaded).build().unwrap();
    for query in ["seattle", "plasma lcd", "\"columbus day\"", "premium"] {
        let ra = a.interpret(query);
        let rb = b.interpret(query);
        assert_eq!(ra.len(), rb.len(), "{query}");
        for (x, y) in ra.iter().zip(&rb) {
            assert!((x.score - y.score).abs() < 1e-12, "{query}");
            assert_eq!(
                x.net.display(a.warehouse()),
                y.net.display(b.warehouse()),
                "{query}"
            );
        }
        if let (Some(x), Some(y)) = (ra.first(), rb.first()) {
            let ea = a.explore(&x.net).expect("star net evaluates");
            let eb = b.explore(&y.net).expect("star net evaluates");
            assert_eq!(ea.subspace_size, eb.subspace_size, "{query}");
            assert_eq!(ea.total_aggregate, eb.total_aggregate, "{query}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exported_spec_is_valid_spec_syntax() {
    let wh = build_ebiz(EbizScale::small(), 7).unwrap();
    let spec = export_spec(&wh);
    assert!(spec.contains("fact TRANSITEM"));
    assert!(spec.contains("role=Buyer"));
    assert!(spec.contains("hierarchy=ProductLine:"));
    assert!(spec.contains("groupby="));
    assert!(spec.contains("measure SalesRevenue = TRANSITEM.UnitPrice * TRANSITEM.Qty"));
    // Loadable when paired with exported tables (covered by the roundtrip
    // tests); here just check it parses structurally with stub CSVs.
    let err = kdap_suite::warehouse::load_spec(&spec, |_| Err("no files".into()));
    assert!(err.is_err(), "missing CSVs must be reported, not panic");
}
