//! The single-pass multi-aggregate facet kernel is an *execution*
//! strategy, never a *semantics* change: for any workload subspace, the
//! fused scan must reproduce the per-facet kernels bit-for-bit — group
//! maps, domains, bucket series, bucketizers and totals — across thread
//! counts and across the dense-array / hash-fallback accumulator choice;
//! and a whole fused exploration must equal the per-facet oracle
//! pipeline field-for-field.

use std::sync::OnceLock;

use proptest::prelude::*;

use kdap_suite::core::{materialize, FacetConfig, FacetKernel, Kdap, StarNet};
use kdap_suite::datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};
use kdap_suite::query::{
    aggregate_total_exec, fact_paths_by_table, group_by_buckets_exec, group_by_categorical_exec,
    multi_group_by_exec, project_categorical, project_numeric, AggFunc, Bucketizer, ExecConfig,
    FacetSpec, JoinPath, MeasureVector, RowSet, DENSE_GROUP_LIMIT, MAX_PATH_LEN,
};
use kdap_suite::warehouse::{ColRef, TableId, ValueType};

struct Fixture {
    /// Session on the default fused kernel.
    fused: Kdap,
    /// Session on the per-facet oracle kernel (identical seed-42 build).
    per_facet: Kdap,
    candidate_sets: Vec<Vec<StarNet>>,
}

/// One AW_ONLINE build shared by every proptest case: the warehouse is
/// deterministic (seed 42), so the two sessions hold identical data.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let wh = build_aw_online(Scale::small(), 42).expect("generator is valid");
        let queries = generate_workload(&wh, &WorkloadConfig::default());
        let fused = Kdap::builder(wh)
            .threads(1)
            .build()
            .expect("measure defined");
        let per_facet = Kdap::builder(build_aw_online(Scale::small(), 42).unwrap())
            .threads(1)
            .facet_config(FacetConfig {
                kernel: FacetKernel::PerFacet,
                ..FacetConfig::default()
            })
            .build()
            .expect("measure defined");
        let candidate_sets = queries
            .iter()
            .map(|q| {
                fused
                    .interpret(&q.text())
                    .into_iter()
                    .map(|r| r.net)
                    .collect()
            })
            .filter(|nets: &Vec<StarNet>| !nets.is_empty())
            .collect();
        Fixture {
            fused,
            per_facet,
            candidate_sets,
        }
    })
}

/// Every categorical and float attribute reachable from the fact table,
/// as one fused spec list (plus a Total), each tagged with the join path
/// the per-facet oracle kernels will walk.
fn candidate_specs(kdap: &Kdap, rows: &RowSet) -> Vec<(JoinPath, FacetSpec)> {
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let schema = wh.schema();
    let fact = schema.fact_table();
    let by_table = fact_paths_by_table(schema, MAX_PATH_LEN);
    let mut out = vec![(JoinPath::empty(), FacetSpec::Total)];
    for t in 0..wh.tables().len() as u32 {
        let tid = TableId(t);
        if tid == fact {
            continue;
        }
        let Some(path) = by_table.get(&tid).and_then(|paths| paths.first()) else {
            continue;
        };
        let mapper = jidx.row_mapper(wh, fact, path);
        for (c, col) in wh.tables()[t as usize].columns().iter().enumerate() {
            let attr = ColRef::new(tid, c as u32);
            if col.dict().is_some() {
                out.push((
                    path.clone(),
                    FacetSpec::Categorical {
                        attr,
                        mapper: mapper.clone(),
                    },
                ));
            } else if col.value_type() == ValueType::Float {
                out.push((
                    path.clone(),
                    FacetSpec::NumericDomain {
                        attr,
                        mapper: mapper.clone(),
                    },
                ));
                let values = project_numeric(wh, jidx, fact, path, attr, rows);
                if let Some(buckets) = Bucketizer::equal_width(values.iter().copied(), 8) {
                    out.push((
                        path.clone(),
                        FacetSpec::Buckets {
                            attr,
                            mapper: mapper.clone(),
                            buckets,
                        },
                    ));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused scan vs. per-facet kernels: identical group maps, domains,
    /// bucket series, bucketizers and totals at every thread count, on
    /// both the dense-array path and the hash fallback (forced by a
    /// zero dense limit).
    #[test]
    fn multi_aggregate_kernel_matches_per_facet_kernels(
        query_idx in 0usize..64,
        threads in proptest::sample::select(vec![1usize, 4]),
        dense in any::<bool>(),
    ) {
        let fx = fixture();
        let nets = &fx.candidate_sets[query_idx % fx.candidate_sets.len()];
        let kdap = &fx.fused;
        let (wh, jidx) = (kdap.warehouse(), kdap.join_index());
        let fact = wh.schema().fact_table();
        let measure = kdap.measure();
        let mv = MeasureVector::build(wh, measure);
        let exec = ExecConfig::with_threads(threads);
        let dense_limit = if dense { DENSE_GROUP_LIMIT } else { 0 };
        for net in nets.iter().take(2) {
            let sub = materialize(wh, jidx, net);
            let tagged = candidate_specs(kdap, &sub.rows);
            let specs: Vec<FacetSpec> = tagged.iter().map(|(_, s)| s.clone()).collect();
            let groups = multi_group_by_exec(wh, &specs, &sub.rows, &mv, &exec, dense_limit).unwrap();
            prop_assert_eq!(groups.len(), specs.len());
            for ((path, spec), fg) in tagged.iter().zip(&groups) {
                match spec {
                    FacetSpec::Total => {
                        let expect =
                            aggregate_total_exec(wh, measure, &sub.rows, AggFunc::Sum, &exec)
                                .unwrap();
                        let got = fg.total(AggFunc::Sum);
                        prop_assert!(
                            got == expect || (got.is_nan() && expect.is_nan()),
                            "total {} vs {}", got, expect
                        );
                    }
                    FacetSpec::Categorical { attr, .. } => {
                        if dense_limit > 0 {
                            prop_assert!(fg.is_dense());
                        }
                        prop_assert_eq!(
                            fg.to_map(AggFunc::Sum),
                            group_by_categorical_exec(
                                wh, jidx, fact, path, *attr, &sub.rows, measure,
                                AggFunc::Sum, &exec,
                            ).unwrap()
                        );
                        prop_assert_eq!(
                            fg.domain(),
                            project_categorical(wh, jidx, fact, path, *attr, &sub.rows)
                        );
                    }
                    FacetSpec::Buckets { attr, buckets, .. } => {
                        prop_assert_eq!(
                            fg.to_series(AggFunc::Sum),
                            group_by_buckets_exec(
                                wh, jidx, fact, path, *attr, &sub.rows, measure,
                                AggFunc::Sum, buckets, &exec,
                            ).unwrap()
                        );
                    }
                    FacetSpec::NumericDomain { attr, .. } => {
                        let values = project_numeric(wh, jidx, fact, path, *attr, &sub.rows);
                        prop_assert_eq!(
                            fg.bucketizer(8),
                            Bucketizer::equal_width(values.iter().copied(), 8)
                        );
                    }
                }
            }
        }
    }

    /// Whole-pipeline oracle check: a serial fused exploration equals the
    /// serial per-facet exploration field-for-field — same panels, same
    /// attribute scores, same instance lists, same aggregates.
    #[test]
    fn fused_exploration_matches_per_facet_oracle(query_idx in 0usize..64) {
        let fx = fixture();
        let nets = &fx.candidate_sets[query_idx % fx.candidate_sets.len()];
        for net in nets.iter().take(2) {
            let fused = fx.fused.explore(net).expect("fused explore succeeds");
            let oracle = fx.per_facet.explore(net).expect("per-facet explore succeeds");
            prop_assert_eq!(fused, oracle);
        }
    }
}
