//! The optimizer is an *execution* strategy, never a *semantics* change:
//! for any workload query, any planner configuration (reordering and
//! fusion independently toggled, cache on or off), and any thread count,
//! plan-compiled evaluation must produce fact-row sets bit-identical to
//! the naive per-constraint semi-join cascade — both one net at a time
//! and through the deduplicating batch path.

use std::sync::OnceLock;

use proptest::prelude::*;

use kdap_suite::core::{
    materialize, materialize_batch, materialize_planned, Kdap, Planner, PlannerConfig, StarNet,
};
use kdap_suite::datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};
use kdap_suite::query::ExecConfig;

struct Fixture {
    kdap: Kdap,
    candidate_sets: Vec<Vec<StarNet>>,
}

/// One AW_ONLINE build shared by every proptest case: the warehouse is
/// deterministic (seed 42), so caching it only trims wall time.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let wh = build_aw_online(Scale::small(), 42).expect("generator is valid");
        let queries = generate_workload(&wh, &WorkloadConfig::default());
        let kdap = Kdap::builder(wh).build().expect("measure defined");
        let candidate_sets = queries
            .iter()
            .map(|q| {
                kdap.interpret(&q.text())
                    .into_iter()
                    .map(|r| r.net)
                    .collect()
            })
            .filter(|nets: &Vec<StarNet>| !nets.is_empty())
            .collect();
        Fixture {
            kdap,
            candidate_sets,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-net: any planner setting × any thread count matches the naive
    /// serial cascade exactly.
    #[test]
    fn planned_materialization_matches_naive(
        query_idx in 0usize..64,
        reorder in any::<bool>(),
        fuse_fact_local in any::<bool>(),
        cached in any::<bool>(),
        threads in proptest::sample::select(vec![1usize, 4]),
    ) {
        let fx = fixture();
        let nets = &fx.candidate_sets[query_idx % fx.candidate_sets.len()];
        let planner = Planner::new(PlannerConfig { reorder, fuse_fact_local }, cached);
        let exec = ExecConfig::with_threads(threads);
        let (wh, jidx) = (fx.kdap.warehouse(), fx.kdap.join_index());
        for net in nets {
            let naive = materialize(wh, jidx, net);
            let planned = materialize_planned(wh, jidx, net, &planner, &exec)
                .expect("star net evaluates");
            prop_assert_eq!(
                naive.rows.to_words(),
                planned.rows.to_words(),
                "reorder={} fuse={} cached={} threads={}",
                reorder, fuse_fact_local, cached, threads
            );
        }
    }

    /// Batch: deduplicated whole-candidate-set evaluation returns the same
    /// subspaces, in the same order, as one-net-at-a-time naive runs.
    #[test]
    fn batch_materialization_matches_naive(
        query_idx in 0usize..64,
        reorder in any::<bool>(),
        fuse_fact_local in any::<bool>(),
        threads in proptest::sample::select(vec![1usize, 4]),
    ) {
        let fx = fixture();
        let nets = &fx.candidate_sets[query_idx % fx.candidate_sets.len()];
        let planner = Planner::new(PlannerConfig { reorder, fuse_fact_local }, true);
        let exec = ExecConfig::with_threads(threads);
        let (wh, jidx) = (fx.kdap.warehouse(), fx.kdap.join_index());
        let refs: Vec<&StarNet> = nets.iter().collect();
        let batched = materialize_batch(wh, jidx, &refs, &planner, &exec)
            .expect("star nets evaluate");
        prop_assert_eq!(batched.len(), nets.len());
        for (net, sub) in nets.iter().zip(&batched) {
            let naive = materialize(wh, jidx, net);
            prop_assert_eq!(
                naive.rows.to_words(),
                sub.rows.to_words(),
                "reorder={} fuse={} threads={}",
                reorder, fuse_fact_local, threads
            );
        }
    }
}
