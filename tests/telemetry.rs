//! End-to-end telemetry tests over a real socket: trace-id propagation
//! (header → response echo → profile body → access log → slow ledger),
//! the Prometheus `/metrics` exposition, Chrome-trace profile export,
//! the slow-query ledger endpoint, and the enriched health check.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use kdap_suite::core::api::json;
use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_ebiz, EbizScale};
use kdap_suite::obs::lint_exposition;
use kdap_suite::server::{EngineRegistry, KdapServer, ServerConfig};

fn engine(seed: u64) -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::small(), seed).unwrap())
        .cache_capacity(16)
        .observability(true)
        .build()
        .unwrap()
}

/// Two-tenant server on an ephemeral port, optionally with a JSONL
/// access log.
fn start(log: Option<String>) -> KdapServer {
    let registry = EngineRegistry::new()
        .with("ebiz", Arc::new(engine(7)))
        .with("ebiz-alt", Arc::new(engine(11)));
    let config = ServerConfig {
        port: 0,
        workers: 4,
        log,
        ..ServerConfig::default()
    };
    KdapServer::start(registry, &config).expect("ephemeral bind")
}

/// Minimal HTTP/1.1 client returning `(status, raw head, body)` — the
/// raw head so tests can assert response headers like the trace echo.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: kdap\r\nConnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("recv");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

/// The value of a response header, case-insensitive on the name.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|l| {
        let (n, v) = l.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

#[test]
fn client_trace_id_flows_through_response_profile_log_and_ledger() {
    let log_path = std::env::temp_dir().join(format!(
        "kdap-telemetry-access-{}.jsonl",
        std::process::id()
    ));
    let server = start(Some(log_path.to_string_lossy().into_owned()));
    let addr = server.addr();
    let trace = "deadbeefcafe0042";

    // A profiled query with a client-supplied trace id: the id must come
    // back in the response header AND inside the profile JSON.
    let (status, head, body) = http(
        addr,
        "POST",
        "/v1/ebiz/profile",
        &[("x-kdap-trace-id", trace)],
        "{\"keywords\": \"columbus\"}",
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header_value(&head, "x-kdap-trace-id").as_deref(),
        Some(trace),
        "{head}"
    );
    assert!(
        body.contains(&format!("\"trace_id\": \"{trace}\"")),
        "profile must carry the trace id: {body}"
    );

    // A breached query (instant deadline) with the same trace id: the
    // 408 error body echoes the id and the slow ledger retains it.
    let (status, head, body) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[("x-kdap-trace-id", trace)],
        "{\"keywords\": \"columbus\", \"timeout_ms\": 0}",
    );
    assert_eq!(status, 408, "{body}");
    assert_eq!(
        header_value(&head, "x-kdap-trace-id").as_deref(),
        Some(trace),
        "{head}"
    );
    assert!(
        body.contains(&format!("\"trace_id\": \"{trace}\"")),
        "error body must carry the trace id: {body}"
    );

    let (status, _, ledger) = http(addr, "GET", "/v1/ebiz/slow", &[], "");
    assert_eq!(status, 200);
    assert!(
        ledger.contains(&format!("\"trace_id\": \"{trace}\"")),
        "slow ledger must retain the breached query: {ledger}"
    );
    assert!(ledger.contains("\"breach\": \"timeout\""), "{ledger}");
    let doc = json::parse(&ledger).expect("ledger body is valid JSON");
    assert!(doc.get("capacity").is_some(), "{ledger}");
    assert!(!doc.get("entries").unwrap().as_arr().unwrap().is_empty());

    server.shutdown();

    // Both requests must have produced access-log lines carrying the
    // trace id; the breached one also names the breach.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    std::fs::remove_file(&log_path).ok();
    let hits: Vec<&str> = log.lines().filter(|l| l.contains(trace)).collect();
    assert!(
        hits.len() >= 2,
        "expected 2+ access lines with trace: {log}"
    );
    for line in &hits {
        json::parse(line).expect("access-log lines are valid JSON");
        assert!(line.contains("\"event\": \"access\""), "{line}");
    }
    assert!(
        hits.iter()
            .any(|l| l.contains("\"status\": 408") && l.contains("\"breach\": \"timeout\"")),
        "breached request must log its breach: {log}"
    );
}

#[test]
fn trace_ids_are_minted_when_absent_and_rejected_when_invalid() {
    let server = start(None);
    let addr = server.addr();

    let (status, head, _) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[],
        "{\"keywords\": \"columbus\"}",
    );
    assert_eq!(status, 200);
    let minted = header_value(&head, "x-kdap-trace-id").expect("minted id echoed");
    assert_eq!(minted.len(), 32, "{minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");

    // A second request gets a different id.
    let (_, head2, _) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[],
        "{\"keywords\": \"columbus\"}",
    );
    assert_ne!(
        header_value(&head2, "x-kdap-trace-id").as_deref(),
        Some(minted.as_str())
    );

    // Non-hex ids are a 400, not silently replaced.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[("x-kdap-trace-id", "not-hex!")],
        "{\"keywords\": \"columbus\"}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("x-kdap-trace-id"), "{body}");

    server.shutdown();
}

#[test]
fn metrics_exposition_is_lintable_and_labels_every_tenant() {
    let server = start(None);
    let addr = server.addr();

    // Touch both tenants so counters and latency histograms exist, and
    // breach one governor so breach counters appear.
    for tenant in ["ebiz", "ebiz-alt"] {
        let (status, _, _) = http(
            addr,
            "POST",
            &format!("/v1/{tenant}/explore"),
            &[],
            "{\"keywords\": \"columbus\"}",
        );
        assert_eq!(status, 200);
    }
    let (status, _, _) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[],
        "{\"keywords\": \"columbus\", \"timeout_ms\": 0}",
    );
    assert_eq!(status, 408);

    let (status, head, exposition) = http(addr, "GET", "/metrics", &[], "");
    assert_eq!(status, 200);
    assert!(
        header_value(&head, "content-type")
            .unwrap_or_default()
            .starts_with("text/plain"),
        "{head}"
    );
    let samples = lint_exposition(&exposition).expect("exposition lints clean");
    assert!(samples > 0);
    for needle in [
        "tenant=\"ebiz\"",
        "tenant=\"ebiz-alt\"",
        "# TYPE kdap_http_requests counter",
        "kdap_http_explore_latency_ns_bucket{",
        "le=\"+Inf\"",
        "kdap_governor_timeouts",
    ] {
        assert!(
            exposition.contains(needle),
            "missing {needle}:\n{exposition}"
        );
    }
    // Every sample line is tenant-labeled.
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(line.contains("tenant=\""), "unlabeled sample: {line}");
    }

    // POST is not allowed on the exporter.
    let (status, _, _) = http(addr, "POST", "/metrics", &[], "");
    assert_eq!(status, 405);

    server.shutdown();
}

#[test]
fn profile_format_trace_returns_chrome_trace_json() {
    let server = start(None);
    let addr = server.addr();

    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/ebiz/profile?format=trace",
        &[],
        "{\"keywords\": \"columbus\"}",
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "{body}");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(ev.get("ts").and_then(|t| t.as_num()).is_some());
        assert!(ev.get("dur").and_then(|d| d.as_num()).is_some());
        assert_eq!(ev.get("cat").and_then(|c| c.as_str()), Some("kdap"));
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("differentiate")),
        "{body}"
    );

    // `format=trace` is profile-only: other verbs cannot be trees.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/ebiz/explore?format=trace",
        &[],
        "{\"keywords\": \"columbus\"}",
    );
    assert_eq!(status, 406, "{body}");

    server.shutdown();
}

#[test]
fn slow_ledger_ranks_breaches_above_plain_slowness() {
    let server = start(None);
    let addr = server.addr();

    // Two normal queries then one breached query.
    for _ in 0..2 {
        let (status, _, _) = http(
            addr,
            "POST",
            "/v1/ebiz/explore",
            &[],
            "{\"keywords\": \"columbus\"}",
        );
        assert_eq!(status, 200);
    }
    let (status, _, _) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[],
        "{\"keywords\": \"columbus\", \"timeout_ms\": 0}",
    );
    assert_eq!(status, 408);

    let (status, _, ledger) = http(addr, "GET", "/v1/ebiz/slow", &[], "");
    assert_eq!(status, 200);
    let doc = json::parse(&ledger).expect("valid ledger JSON");
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_arr())
        .expect("entries");
    assert_eq!(entries.len(), 3, "{ledger}");
    // Most interesting first: the breach outranks faster 200s.
    assert_eq!(
        entries[0].get("breach").and_then(|b| b.as_str()),
        Some("timeout"),
        "{ledger}"
    );
    assert_eq!(
        entries[0].get("status").and_then(|s| s.as_num()),
        Some(408.0)
    );

    // The other tenant's ledger is isolated and empty.
    let (_, _, other) = http(addr, "GET", "/v1/ebiz-alt/slow", &[], "");
    let doc = json::parse(&other).expect("valid ledger JSON");
    assert!(doc
        .get("entries")
        .and_then(|e| e.as_arr())
        .expect("entries")
        .is_empty());

    server.shutdown();
}

#[test]
fn healthz_reports_version_uptime_kernel_and_tenants() {
    let server = start(None);
    let addr = server.addr();

    let (status, _, body) = http(addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    // The shape older clients substring-match on must survive.
    assert!(body.contains("\"status\": \"ok\""), "{body}");
    let doc = json::parse(&body).expect("healthz is valid JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(doc.get("uptime_s").and_then(|u| u.as_num()).is_some());
    assert_eq!(doc.get("tenants").and_then(|t| t.as_num()), Some(2.0));
    let kernel = doc.get("kernel").and_then(|k| k.as_str()).expect("kernel");
    assert!(!kernel.is_empty());

    server.shutdown();
}
