//! Robustness: the system must degrade gracefully — never panic — under
//! arbitrary query input, and behave correctly under concurrent use.

use std::sync::Arc;

use proptest::prelude::*;

use kdap_suite::core::{Kdap, SubspaceCache};
use kdap_suite::datagen::{build_ebiz, EbizScale};

fn session() -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap())
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any printable-ASCII query string interprets without panicking, and
    /// every returned interpretation explores without panicking.
    #[test]
    fn arbitrary_queries_never_panic(query in "[ -~]{0,40}") {
        let kdap = session();
        let ranked = kdap.interpret(&query);
        for r in ranked.iter().take(3) {
            let ex = kdap.explore(&r.net).expect("star net evaluates");
            prop_assert!(ex.subspace_size <= kdap.warehouse().fact_rows());
        }
    }

    /// Queries made of real vocabulary fragments always yield
    /// interpretations whose scores are finite and ordered.
    #[test]
    fn vocabulary_queries_rank_sanely(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "columbus", "seattle", "plasma", "lcd", "premium", "october",
                "sydney", "laptop", "projector", "2005",
            ]),
            1..4,
        )
    ) {
        let kdap = session();
        let query = words.join(" ");
        let ranked = kdap.interpret(&query);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for r in &ranked {
            prop_assert!(r.score.is_finite());
            prop_assert!(r.score >= 0.0);
        }
    }
}

#[test]
fn concurrent_sessions_share_cache_safely() {
    let kdap = Arc::new(
        Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap())
            .cache_capacity(8)
            .build()
            .unwrap(),
    );
    let queries = ["columbus", "seattle", "plasma", "lcd"];
    let mut handles = Vec::new();
    for i in 0..4 {
        let kdap = Arc::clone(&kdap);
        handles.push(std::thread::spawn(move || {
            let mut sizes = Vec::new();
            for _ in 0..5 {
                let ranked = kdap.interpret(queries[i % queries.len()]);
                if let Some(r) = ranked.first() {
                    sizes.push(
                        kdap.explore(&r.net)
                            .expect("star net evaluates")
                            .subspace_size,
                    );
                }
            }
            sizes
        }));
    }
    let mut all: Vec<Vec<usize>> = Vec::new();
    for h in handles {
        all.push(h.join().expect("no thread panicked"));
    }
    // Each thread saw consistent sizes across its repeats.
    for sizes in &all {
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }
    let (hits, misses) = kdap.cache_stats().unwrap();
    assert_eq!(hits + misses, 20, "every explore hit the cache layer");
    assert!(hits >= 16, "repeats were served from cache: {hits} hits");
}

#[test]
fn direct_cache_use_is_thread_safe() {
    let kdap = Arc::new(session());
    let cache = Arc::new(SubspaceCache::new(4));
    let nets: Vec<_> = kdap
        .interpret("columbus")
        .into_iter()
        .map(|r| r.net)
        .collect();
    let nets = Arc::new(nets);
    let mut handles = Vec::new();
    for t in 0..4 {
        let kdap = Arc::clone(&kdap);
        let cache = Arc::clone(&cache);
        let nets = Arc::clone(&nets);
        handles.push(std::thread::spawn(move || {
            for i in 0..20 {
                let net = &nets[(t + i) % nets.len()];
                let sub = cache.materialize(kdap.warehouse(), kdap.join_index(), net);
                assert!(sub.len() <= kdap.warehouse().fact_rows());
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
    assert!(cache.len() <= 4, "capacity respected under contention");
}
