//! Integration tests spanning all crates: the full differentiate/explore
//! pipeline over the generated warehouses, checking the structural
//! invariants that make KDAP results trustworthy.

use kdap_suite::core::{
    generate_star_nets, materialize, rank_star_nets, rollup_spaces, GenConfig, Kdap, RankMethod,
};
use kdap_suite::datagen::{build_aw_online, build_ebiz, EbizScale, Scale};
use kdap_suite::query::{AggFunc, JoinIndex};
use kdap_suite::textindex::TextIndex;

fn ebiz_session() -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap())
        .build()
        .unwrap()
}

#[test]
fn every_interpretation_is_materializable() {
    let kdap = ebiz_session();
    for query in ["Columbus", "Seattle Plasma", "Premium", "October"] {
        for r in kdap.interpret(query) {
            let sub = materialize(kdap.warehouse(), kdap.join_index(), &r.net);
            // Materialization must not panic and the subspace is within
            // the fact table.
            assert!(sub.len() <= kdap.warehouse().fact_rows());
        }
    }
}

#[test]
fn subspace_is_contained_in_every_rollup_space() {
    let kdap = ebiz_session();
    for query in ["Columbus", "Seattle Plasma", "Televisions"] {
        for r in kdap.interpret(query).into_iter().take(5) {
            let sub = materialize(kdap.warehouse(), kdap.join_index(), &r.net);
            for rup in rollup_spaces(kdap.warehouse(), kdap.join_index(), &r.net) {
                for row in sub.rows.iter() {
                    assert!(rup.rows.contains(row), "RUP must contain DS' ({query})");
                }
            }
        }
    }
}

#[test]
fn facet_partitions_sum_to_subspace_total() {
    let kdap = ebiz_session();
    let ranked = kdap.interpret("Columbus");
    let ex = kdap.explore(&ranked[0].net).expect("star net evaluates");
    for panel in &ex.panels {
        for attr in &panel.attrs {
            // Facet construction truncates to top-k instances; only check
            // attributes whose full domain is visible.
            if attr.entries.len() < kdap.facet_config().top_k_instances {
                let sum: f64 = attr.entries.iter().map(|e| e.aggregate).sum();
                let diff = (sum - ex.total_aggregate).abs();
                assert!(
                    diff < 1e-6 * ex.total_aggregate.abs().max(1.0),
                    "{}.{}: {} != {}",
                    panel.dimension,
                    attr.name,
                    sum,
                    ex.total_aggregate
                );
            }
        }
    }
}

#[test]
fn ranking_is_stable_and_sorted_for_all_methods() {
    let wh = build_aw_online(Scale::small(), 3).unwrap();
    let index = TextIndex::build(&wh);
    let nets = generate_star_nets(
        &wh,
        &index,
        &["mountain", "california"],
        &GenConfig::default(),
    );
    for method in RankMethod::ALL {
        let a = rank_star_nets(nets.clone(), method);
        let b = rank_star_nets(nets.clone(), method);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score);
            assert_eq!(x.net.display(&wh), y.net.display(&wh));
        }
        for w in a.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

#[test]
fn measures_agree_between_direct_and_facet_aggregation() {
    let kdap = ebiz_session();
    let ranked = kdap.interpret("Columbus");
    let net = &ranked[0].net;
    let sub = materialize(kdap.warehouse(), kdap.join_index(), net);
    let direct = sub.aggregate(kdap.warehouse(), kdap.measure(), AggFunc::Sum);
    let ex = kdap.explore(net).expect("star net evaluates");
    assert_eq!(direct, ex.total_aggregate);
    assert_eq!(sub.len(), ex.subspace_size);
}

#[test]
fn join_index_and_text_index_rebuild_identically() {
    let wh = build_ebiz(EbizScale::small(), 7).unwrap();
    let a = TextIndex::build(&wh);
    let b = TextIndex::build(&wh);
    assert_eq!(a.n_docs(), b.n_docs());
    assert_eq!(a.n_terms(), b.n_terms());
    let _ = JoinIndex::build(&wh);
}

#[test]
fn empty_and_nonsense_queries_degrade_gracefully() {
    let kdap = ebiz_session();
    assert!(kdap.interpret("").is_empty());
    assert!(kdap.interpret("zzzz qqqq xxxx").is_empty());
    // Punctuation-only input.
    assert!(kdap.interpret("!!! ???").is_empty());
}

#[test]
fn both_aw_warehouses_run_the_full_pipeline() {
    for (wh, query) in [
        (build_aw_online(Scale::small(), 11).unwrap(), "Bikes"),
        (
            kdap_suite::datagen::build_aw_reseller(Scale::small(), 11).unwrap(),
            "Warehouse",
        ),
    ] {
        let kdap = Kdap::builder(wh).build().unwrap();
        let ranked = kdap.interpret(query);
        assert!(!ranked.is_empty(), "{query} finds interpretations");
        let ex = kdap.explore(&ranked[0].net).expect("star net evaluates");
        assert!(ex.subspace_size > 0, "{query} subspace non-empty");
        assert!(!ex.panels.is_empty());
    }
}
