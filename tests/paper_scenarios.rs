//! The paper's concrete scenarios, asserted as tests: each test pins one
//! claim from the text so regressions against the reproduction are loud.

use std::time::Instant;

use kdap_suite::core::facet::{merge_intervals, AnnealConfig};
use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_aw_online, build_ebiz, EbizScale, Scale};

fn ebiz() -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::full(), 42).unwrap())
        .build()
        .unwrap()
}

/// §4.1 Example 3.1: "Columbus" may be a holiday or a city, and as a city
/// either stores or customers — four interpretations in total (customers
/// split into buyer/seller roles).
#[test]
fn example_3_1_columbus_ambiguity() {
    let kdap = ebiz();
    let ranked = kdap.interpret("Columbus");
    assert_eq!(ranked.len(), 4);
    let displays: Vec<String> = ranked
        .iter()
        .map(|r| r.net.display(kdap.warehouse()))
        .collect();
    assert!(displays.iter().any(|d| d.contains("STORE → LOCATION")));
    assert!(displays.iter().any(|d| d.contains("(Buyer)")));
    assert!(displays.iter().any(|d| d.contains("(Seller)")));
    assert!(displays.iter().any(|d| d.contains("Columbus Day")));
}

/// §4.3: "San Jose" must merge into the city instance and outrank
/// "San Antonio"-style split interpretations.
#[test]
fn phrase_query_san_jose_merges_and_wins() {
    let kdap = ebiz();
    let ranked = kdap.interpret("San Jose");
    let top = &ranked[0];
    assert_eq!(top.net.n_groups(), 1, "one merged hit group");
    assert!(top.net.constraints[0]
        .group
        .hits
        .iter()
        .all(|h| h.value.contains("San Jose")));
    // Any split interpretation scores strictly lower.
    for r in &ranked[1..] {
        if r.net.n_groups() > 1 {
            assert!(r.score < top.score);
        }
    }
}

/// §4.2: the "Seattle Portland TV" query must include the interpretation
/// "TV purchases made by customers from Seattle in stores located in
/// Portland" — the same LOCATION table under two aliases.
#[test]
fn seattle_portland_cross_role_interpretation_exists() {
    let kdap = ebiz();
    let ranked = kdap.interpret("Seattle Portland TV");
    let found = ranked.iter().any(|r| {
        r.net.constraints.iter().any(|c| {
            let d = c
                .path
                .display(kdap.warehouse(), kdap.warehouse().schema().fact_table());
            d.contains("(Buyer)") && c.group.hits.iter().any(|h| h.value.as_ref() == "Seattle")
        }) && r.net.constraints.iter().any(|c| {
            let d = c
                .path
                .display(kdap.warehouse(), kdap.warehouse().schema().fact_table());
            d.contains("STORE") && c.group.hits.iter().any(|h| h.value.as_ref() == "Portland")
        })
    });
    assert!(found);
}

/// §4.2: star nets must join *through the fact table*: "Home Electronics
/// VCR" (both product hits) yields ONE dimension-merged subspace slicing
/// the fact table, not a Discover-style product-only tuple tree.
#[test]
fn star_nets_go_through_the_fact_table() {
    let kdap = ebiz();
    let ranked = kdap.interpret("\"Home Electronics\" VCR");
    assert!(!ranked.is_empty());
    let fact = kdap.warehouse().schema().fact_table();
    for r in &ranked {
        for c in &r.net.constraints {
            // Every constraint path starts at the fact table.
            let tables = c.path.tables(kdap.warehouse().schema(), fact);
            assert_eq!(tables[0], fact);
        }
    }
    // The top interpretation has one group on the product line and one on
    // the group name — intersection on the fact table.
    let ex = kdap.explore(&ranked[0].net).expect("star net evaluates");
    assert!(ex.subspace_size > 0, "intersection selects fact points");
}

/// Table 1 shape: "California Mountain Bikes" puts the intended
/// state × subcategory interpretation first on AW_ONLINE.
#[test]
fn table1_intended_interpretation_ranks_first() {
    let kdap = Kdap::builder(build_aw_online(Scale::full(), 42).unwrap())
        .build()
        .unwrap();
    let ranked = kdap.interpret("California Mountain Bikes");
    let top = ranked[0].net.display(kdap.warehouse());
    assert!(top.contains("StateProvinceName/{California}"), "got {top}");
    assert!(top.contains("Mountain Bikes"), "got {top}");
}

/// Table 2 shape: after picking the Table 1 star net, the Product panel
/// promotes the subcategory with the "Mountain Bikes" hit pinned first.
#[test]
fn table2_product_panel_promotes_hit_attribute() {
    let kdap = Kdap::builder(build_aw_online(Scale::full(), 42).unwrap())
        .build()
        .unwrap();
    let ranked = kdap.interpret("California Mountain Bikes");
    let ex = kdap.explore(&ranked[0].net).expect("star net evaluates");
    let product = ex
        .panels
        .iter()
        .find(|p| p.dimension == "Product")
        .expect("product panel");
    assert!(product.attrs[0].promoted);
    assert_eq!(
        product.attrs[0].name,
        "DimProductSubcategory.ProductSubcategoryName"
    );
    assert_eq!(product.attrs[0].entries[0].label, "Mountain Bikes");
    assert!(product.attrs[0].entries[0].is_hit);
}

/// §6.5: a 500-iteration interval merge takes well under 5 ms and never
/// touches the storage engine.
#[test]
fn interval_merge_latency_claim_holds() {
    let x: Vec<f64> = (0..40).map(|i| ((i * 37) % 23) as f64).collect();
    let y: Vec<f64> = (0..40).map(|i| ((i * 17) % 19) as f64).collect();
    let cfg = AnnealConfig {
        iterations: 500,
        ..AnnealConfig::default()
    };
    let _ = merge_intervals(&x, &y, &cfg); // warm-up
    let t = Instant::now();
    for _ in 0..20 {
        let _ = std::hint::black_box(merge_intervals(&x, &y, &cfg));
    }
    let per_run = t.elapsed().as_secs_f64() * 1000.0 / 20.0;
    assert!(
        per_run < 5.0,
        "merge took {per_run:.2} ms (debug builds included)"
    );
}

/// §6.2 content summaries: long textual attributes (descriptions) are
/// searchable and produce valid interpretations.
#[test]
fn long_description_attributes_are_searchable() {
    let kdap = ebiz();
    let ranked = kdap.interpret("handcrafted bumps");
    assert!(!ranked.is_empty());
    let top = ranked[0].net.display(kdap.warehouse());
    assert!(top.contains("PRODUCT.Description"), "got {top}");
}
