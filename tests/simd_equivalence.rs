//! The vectorized kernel layer is an *execution* strategy, never a
//! *semantics* change: every dispatched kernel (bit-unpack, bitmap word
//! ops, popcount/run canonicalization, measure gather, and the batch
//! fused group-by built on them) must reproduce its scalar reference
//! bit-for-bit — across bit widths, container shapes, null bitmaps,
//! thread counts, and the dense-array / hash-fallback / mid-scan
//! promotion accumulator paths. On hosts whose detected tier is already
//! Scalar these checks degenerate to scalar-vs-scalar and pass trivially;
//! CI additionally runs the whole suite under `KDAP_NO_SIMD=1`.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use kdap_suite::core::{materialize, Kdap, StarNet};
use kdap_suite::datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};
use kdap_suite::obs::Obs;
use kdap_suite::query::aggregate_multi::multi_group_by_exec_sized;
use kdap_suite::query::bitmap::BLOCK_ROWS;
use kdap_suite::query::kernel as qkernel;
use kdap_suite::query::{
    fact_paths_by_table, multi_group_by_exec, Bucketizer, ExecConfig, FacetGroups, FacetSpec,
    MeasureVector, RowSet, DENSE_GROUP_LIMIT, MAX_PATH_LEN,
};
use kdap_suite::warehouse::kernel as wkernel;
use kdap_suite::warehouse::{ColRef, TableId, ValueType};

// ---------------------------------------------------------------------
// Kernel level: decode
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk bit-unpack: the dispatched kernel equals the scalar
    /// reference for every supported width, at every length (including
    /// empty and partial final words), and null-sentinel application on
    /// top of both yields identical buffers.
    #[test]
    fn unpack_dispatch_matches_scalar(
        bits in proptest::sample::select(vec![1u8, 2, 4, 8, 16, 32]),
        len in 0usize..3000,
        seed in any::<u64>(),
        null_every in 0usize..8,
    ) {
        let per_word = 64 / bits as usize;
        let n_words = len.div_ceil(per_word);
        // Deterministic pseudo-random words from the seed (splitmix64).
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let words: Vec<u64> = (0..n_words).map(|_| next()).collect();
        let mut scalar = vec![0u32; len];
        let mut dispatched = vec![0xAAAA_AAAAu32; len];
        wkernel::unpack_words_scalar(&words, bits, len, &mut scalar);
        wkernel::unpack_words(&words, bits, len, &mut dispatched);
        prop_assert_eq!(&scalar, &dispatched);
        // Null sentinel on top: same bits set, same sentinel writes.
        let null_words: Vec<u64> = (0..len.div_ceil(64))
            .map(|_| if null_every == 0 { 0 } else { next() })
            .collect();
        wkernel::apply_null_sentinel(&null_words, &mut scalar);
        wkernel::apply_null_sentinel(&null_words, &mut dispatched);
        prop_assert_eq!(&scalar, &dispatched);
        for (i, v) in scalar.iter().enumerate() {
            let is_null = null_words[i / 64] >> (i % 64) & 1 == 1;
            prop_assert_eq!(is_null, *v == wkernel::NULL_CODE || *v == u32::MAX && is_null,
                "row {}", i);
        }
    }

    /// Bitmap word kernels: AND / OR / ANDNOT, popcount, and
    /// run-start counting all match their scalar references on random
    /// word blocks of every length up to beyond one container.
    #[test]
    fn word_ops_dispatch_matches_scalar(
        n_words in 0usize..1100,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a: Vec<u64> = (0..n_words).map(|_| next()).collect();
        let b: Vec<u64> = (0..n_words).map(|_| next()).collect();
        for op in 0..3 {
            let mut want = a.clone();
            let mut got = a.clone();
            match op {
                0 => {
                    qkernel::and_words_scalar(&mut want, &b);
                    qkernel::and_words(&mut got, &b);
                }
                1 => {
                    qkernel::or_words_scalar(&mut want, &b);
                    qkernel::or_words(&mut got, &b);
                }
                _ => {
                    qkernel::andnot_words_scalar(&mut want, &b);
                    qkernel::andnot_words(&mut got, &b);
                }
            }
            prop_assert_eq!(want, got, "op {}", op);
        }
        prop_assert_eq!(qkernel::popcount_words_scalar(&a), qkernel::popcount_words(&a));
        prop_assert_eq!(qkernel::count_run_starts_scalar(&a), qkernel::count_run_starts(&a));
    }

    /// Measure gather: the dispatched gather copies exact bit patterns
    /// (including NaN NULL sentinels) for arbitrary index orders.
    #[test]
    fn gather_dispatch_matches_scalar(
        n_values in 1usize..4000,
        n_idx in 0usize..2000,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Raw bit patterns: every eighth value is a NaN payload.
        let values: Vec<f64> = (0..n_values)
            .map(|i| {
                if i % 8 == 7 {
                    f64::from_bits(f64::NAN.to_bits() | (i as u64))
                } else {
                    f64::from_bits(next() & 0x7FEF_FFFF_FFFF_FFFF)
                }
            })
            .collect();
        let idx: Vec<u32> = (0..n_idx).map(|_| (next() as usize % n_values) as u32).collect();
        let mut want = vec![0.0f64; n_idx];
        let mut got = vec![0.0f64; n_idx];
        qkernel::gather_f64_scalar(&values, &idx, &mut want);
        qkernel::gather_f64(&values, &idx, &mut got);
        let want_bits: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(want_bits, got_bits);
    }
}

// ---------------------------------------------------------------------
// RowSet level: container shapes against a naive model
// ---------------------------------------------------------------------

/// Fills `set` and `model` with the same rows from one shape recipe:
/// 0 = sparse scatter (Array), 1 = dense runs (Run), 2 = random fill
/// (Bitmap) — per block, so multi-block sets mix container kinds.
fn fill_block(set: &mut RowSet, model: &mut [bool], block: usize, shape: u8, seed: u64) {
    let base = block * BLOCK_ROWS;
    let limit = model.len().min(base + BLOCK_ROWS);
    if base >= limit {
        return;
    }
    let span = limit - base;
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut put = |row: usize| {
        set.insert(row);
        model[row] = true;
    };
    match shape {
        0 => {
            for _ in 0..200 {
                put(base + next() as usize % span);
            }
        }
        1 => {
            for _ in 0..4 {
                let start = next() as usize % span;
                let len = (next() as usize % 5000).min(span - start);
                for r in start..start + len {
                    put(base + r);
                }
            }
        }
        _ => {
            for _ in 0..span / 3 {
                put(base + next() as usize % span);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Set algebra over mixed container shapes equals the boolean-vector
    /// model: intersection, union, and difference (all routed through the
    /// dispatched word kernels), plus cardinality (dispatched popcount)
    /// and membership after canonicalization.
    #[test]
    fn rowset_ops_match_naive_model(
        shapes_a in proptest::collection::vec(0u8..3, 3),
        shapes_b in proptest::collection::vec(0u8..3, 3),
        seed in any::<u64>(),
        tail in 1usize..2000,
    ) {
        let universe = 2 * BLOCK_ROWS + tail;
        let mut a = RowSet::empty(universe);
        let mut b = RowSet::empty(universe);
        let mut ma = vec![false; universe];
        let mut mb = vec![false; universe];
        for blk in 0..3 {
            fill_block(&mut a, &mut ma, blk, shapes_a[blk], seed ^ (blk as u64 + 1));
            fill_block(&mut b, &mut mb, blk, shapes_b[blk], seed ^ (0x100 + blk as u64));
        }
        prop_assert_eq!(a.len(), ma.iter().filter(|&&x| x).count());
        let check = |set: &RowSet, model: &[bool]| {
            let want: Vec<usize> =
                model.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i).collect();
            let got: Vec<usize> = set.iter().collect();
            assert_eq!(got, want);
            assert_eq!(set.len(), want.len());
        };
        let mut and = a.clone();
        and.intersect_with(&b);
        let m_and: Vec<bool> = ma.iter().zip(&mb).map(|(&x, &y)| x && y).collect();
        check(&and, &m_and);
        let mut or = a.clone();
        or.union_with(&b);
        let m_or: Vec<bool> = ma.iter().zip(&mb).map(|(&x, &y)| x || y).collect();
        check(&or, &m_or);
        let mut diff = a.clone();
        diff.and_not_with(&b);
        let m_diff: Vec<bool> = ma.iter().zip(&mb).map(|(&x, &y)| x && !y).collect();
        check(&diff, &m_diff);
    }
}

// ---------------------------------------------------------------------
// Fused group-by: forced-scalar reference vs dispatched batch path
// ---------------------------------------------------------------------

struct Fixture {
    kdap: Kdap,
    candidate_sets: Vec<Vec<StarNet>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let wh = build_aw_online(Scale::small(), 42).expect("generator is valid");
        let queries = generate_workload(&wh, &WorkloadConfig::default());
        let kdap = Kdap::builder(wh)
            .threads(1)
            .build()
            .expect("measure defined");
        let candidate_sets = queries
            .iter()
            .map(|q| {
                kdap.interpret(&q.text())
                    .into_iter()
                    .map(|r| r.net)
                    .collect()
            })
            .filter(|nets: &Vec<StarNet>| !nets.is_empty())
            .collect();
        Fixture {
            kdap,
            candidate_sets,
        }
    })
}

/// Every categorical and float attribute reachable from the fact table
/// as one fused spec list, plus a Total.
fn candidate_specs(kdap: &Kdap, rows: &RowSet) -> Vec<FacetSpec> {
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let schema = wh.schema();
    let fact = schema.fact_table();
    let by_table = fact_paths_by_table(schema, MAX_PATH_LEN);
    let mut out = vec![FacetSpec::Total];
    for t in 0..wh.tables().len() as u32 {
        let tid = TableId(t);
        if tid == fact {
            continue;
        }
        let Some(path) = by_table.get(&tid).and_then(|paths| paths.first()) else {
            continue;
        };
        let mapper = jidx.row_mapper(wh, fact, path);
        for (c, col) in wh.tables()[t as usize].columns().iter().enumerate() {
            let attr = ColRef::new(tid, c as u32);
            if col.dict().is_some() {
                out.push(FacetSpec::Categorical {
                    attr,
                    mapper: mapper.clone(),
                });
            } else if col.value_type() == ValueType::Float {
                out.push(FacetSpec::NumericDomain {
                    attr,
                    mapper: mapper.clone(),
                });
                let values: Vec<f64> = rows
                    .iter()
                    .filter_map(|r| mapper[r].and_then(|t| col.get_float(t as usize)))
                    .collect();
                if let Some(buckets) = Bucketizer::equal_width(values.iter().copied(), 8) {
                    out.push(FacetSpec::Buckets {
                        attr,
                        mapper: mapper.clone(),
                        buckets,
                    });
                }
            }
        }
    }
    out
}

/// Exact accumulator digest of one facet result: shape tag, then per
/// touched group the presence count and the raw bit patterns of the
/// accumulator fields. Untouched dense slots are skipped so a promoted
/// (or hash-built) result digests identically to its dense twin.
fn digest(fg: &FacetGroups) -> Vec<(u32, u64, u64, u64, u64, u64)> {
    fn stat_row(key: u32, s: &kdap_suite::query::GroupStats) -> (u32, u64, u64, u64, u64, u64) {
        (
            key,
            s.rows,
            s.acc.count,
            s.acc.sum.to_bits(),
            s.acc.min.to_bits(),
            s.acc.max.to_bits(),
        )
    }
    match fg {
        FacetGroups::Dense { stats } => stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.rows > 0 || s.acc.count > 0)
            .map(|(i, s)| stat_row(i as u32, s))
            .collect(),
        FacetGroups::Sparse { stats } => {
            let sorted: BTreeMap<u32, _> = stats.iter().map(|(k, v)| (*k, v)).collect();
            sorted.iter().map(|(k, s)| stat_row(*k, s)).collect()
        }
        // Buckets keep zero slots: the series is positional.
        FacetGroups::Buckets { stats } => stats
            .iter()
            .enumerate()
            .map(|(i, s)| stat_row(i as u32, s))
            .collect(),
        FacetGroups::Domain { min, max, any } => {
            vec![(u32::MAX, *any as u64, 0, min.to_bits(), max.to_bits(), 0)]
        }
        FacetGroups::Total { stats } => vec![stat_row(0, stats)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batch (SIMD-dispatched) fused scan equals the forced-scalar
    /// per-row reference bit-for-bit: same group presence counts, same
    /// accumulator bit patterns, on both accumulator paths, at one and
    /// four threads.
    #[test]
    fn fused_group_by_scalar_vs_dispatched_bit_identical(
        query_idx in 0usize..64,
        threads in proptest::sample::select(vec![1usize, 4]),
        dense in any::<bool>(),
    ) {
        let fx = fixture();
        let nets = &fx.candidate_sets[query_idx % fx.candidate_sets.len()];
        let kdap = &fx.kdap;
        let wh = kdap.warehouse();
        let mv = MeasureVector::build(wh, kdap.measure());
        let dense_limit = if dense { DENSE_GROUP_LIMIT } else { 0 };
        let scalar_exec = ExecConfig::with_threads(threads).with_force_scalar(true);
        let simd_exec = ExecConfig::with_threads(threads);
        for net in nets.iter().take(2) {
            let sub = materialize(wh, kdap.join_index(), net);
            let specs = candidate_specs(kdap, &sub.rows);
            let want =
                multi_group_by_exec(wh, &specs, &sub.rows, &mv, &scalar_exec, dense_limit)
                    .unwrap();
            let got =
                multi_group_by_exec(wh, &specs, &sub.rows, &mv, &simd_exec, dense_limit).unwrap();
            prop_assert_eq!(want.len(), got.len());
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                prop_assert_eq!(digest(w), digest(g), "spec {} ({:?})", i, &specs[i]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mid-scan dense→sparse promotion (stale statistics)
// ---------------------------------------------------------------------

/// Drives the out-of-bounds promotion path deterministically: a dense
/// array sized for one code while the column holds many forces every
/// scan — scalar and batch, serial and threaded — to promote mid-scan.
/// The promoted result must equal the hash-path result bit-for-bit, the
/// scalar and dispatched promoted results must match each other, and the
/// `agg_dense_oob_fallback` counter must record the promotions.
#[test]
fn oob_promotion_matches_hash_path_under_threads() {
    let fx = fixture();
    let kdap = &fx.kdap;
    let wh = kdap.warehouse();
    let mv = MeasureVector::build(wh, kdap.measure());
    let rows = RowSet::full(wh.fact_rows());
    // A categorical spec whose domain has at least two codes, so a
    // one-slot dense array must promote.
    let spec = candidate_specs(kdap, &rows)
        .into_iter()
        .find(|s| {
            let FacetSpec::Categorical { .. } = s else {
                return false;
            };
            let groups = multi_group_by_exec(
                wh,
                std::slice::from_ref(s),
                &rows,
                &mv,
                &ExecConfig::serial(),
                DENSE_GROUP_LIMIT,
            )
            .unwrap();
            groups[0].n_groups() >= 2
        })
        .expect("AW_ONLINE has a multi-valued categorical attribute");
    let specs = vec![spec];
    for threads in [1usize, 4] {
        // Reference: plain hash path (dense disabled).
        let hash = multi_group_by_exec(
            wh,
            &specs,
            &rows,
            &mv,
            &ExecConfig::with_threads(threads),
            0,
        )
        .unwrap();
        for force_scalar in [true, false] {
            let obs = Obs::enabled();
            let exec = ExecConfig::with_threads(threads)
                .with_obs(obs.clone())
                .with_force_scalar(force_scalar);
            let promoted = multi_group_by_exec_sized(
                wh,
                &specs,
                &rows,
                &mv,
                &exec,
                DENSE_GROUP_LIMIT,
                Some(1),
            )
            .unwrap();
            assert!(
                matches!(promoted[0], FacetGroups::Sparse { .. }),
                "dense array for 1 code must promote (threads={threads}, scalar={force_scalar})"
            );
            assert_eq!(
                digest(&promoted[0]),
                digest(&hash[0]),
                "promoted ≡ hash (threads={threads}, scalar={force_scalar})"
            );
            let counters = obs.metrics_snapshot().counters;
            let oob = counters
                .get("query.agg_dense_oob_fallback")
                .copied()
                .unwrap_or(0);
            assert!(
                oob >= 1,
                "promotion must be counted (threads={threads}, scalar={force_scalar}): {counters:?}"
            );
        }
    }
}

/// The session builder's force-scalar switch pins the tier and survives
/// thread-count changes; the env-independent detected tier is what the
/// default session reports.
#[test]
fn session_force_scalar_pins_tier() {
    let wh = build_aw_online(Scale::small(), 7).expect("generator is valid");
    let mut kdap = Kdap::builder(wh)
        .force_scalar_kernels(true)
        .build()
        .expect("measure defined");
    assert!(kdap.kernel_tier().is_scalar());
    kdap.set_threads(4);
    assert!(
        kdap.kernel_tier().is_scalar(),
        "set_threads must preserve force_scalar"
    );
    let wh2 = build_aw_online(Scale::small(), 7).expect("generator is valid");
    let default = Kdap::builder(wh2).build().expect("measure defined");
    assert_eq!(default.kernel_tier(), wkernel::active_tier());
}
