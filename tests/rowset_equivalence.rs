//! The hybrid RowSet is a *representation* choice, never a semantics
//! change: whatever mix of array / bitmap / run containers a set settles
//! into, every operation must agree bit-for-bit with a plain `Vec<u64>`
//! word model — across densities that force each container kind, across
//! universes that straddle the 64Ki-row block boundary, at the
//! array→bitmap conversion threshold, and for both the serial and the
//! chunk-parallel kernels at every thread count.

use proptest::prelude::*;

use kdap_suite::query::bitmap::{ARRAY_MAX, BLOCK_ROWS};
use kdap_suite::query::{ExecConfig, RowSet};

/// Row-population shapes, each designed to land the set in (or across)
/// a particular container representation.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// A handful of scattered rows — array containers.
    Sparse,
    /// ~70% fill — bitmap containers.
    Dense,
    /// A few long contiguous stretches — run containers.
    Runs,
    /// Rows hugging block boundaries (multiples of 64Ki ± 2).
    Boundary,
    /// Exactly `ARRAY_MAX` then `ARRAY_MAX + 1` rows in the first block —
    /// the array→bitmap conversion edge.
    Threshold,
}

const SHAPES: [Shape; 5] = [
    Shape::Sparse,
    Shape::Dense,
    Shape::Runs,
    Shape::Boundary,
    Shape::Threshold,
];

/// Universes that exercise sub-word, sub-block, exact-boundary, and
/// multi-block row sets (including the partial trailing block).
const UNIVERSES: [usize; 7] = [
    1,
    64,
    4_097,
    BLOCK_ROWS - 1,
    BLOCK_ROWS,
    BLOCK_ROWS + 1,
    3 * BLOCK_ROWS + 123,
];

/// Deterministic xorshift so dense populations don't have to round-trip
/// through proptest value trees (shrinking the seed is enough).
fn gen_rows(shape: Shape, seed: u64, universe: usize) -> Vec<usize> {
    let mut s = seed | 1;
    let mut next = move |m: usize| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as usize) % m.max(1)
    };
    let mut rows = std::collections::BTreeSet::new();
    match shape {
        Shape::Sparse => {
            for _ in 0..next(300) {
                rows.insert(next(universe));
            }
        }
        Shape::Dense => {
            for r in 0..universe {
                if next(10) < 7 {
                    rows.insert(r);
                }
            }
        }
        Shape::Runs => {
            for _ in 0..1 + next(6) {
                let start = next(universe);
                let len = 1 + next(universe - start);
                rows.extend(start..start + len.min(BLOCK_ROWS * 2));
            }
        }
        Shape::Boundary => {
            for block in 0..=universe / BLOCK_ROWS {
                let edge = block * BLOCK_ROWS;
                for off in [0usize, 1, 2] {
                    if edge >= off && edge - off < universe && next(3) > 0 {
                        rows.insert(edge - off);
                    }
                    if edge + off < universe && next(3) > 0 {
                        rows.insert(edge + off);
                    }
                }
            }
        }
        Shape::Threshold => {
            let extra = next(2); // ARRAY_MAX stays array, +1 must convert
            for _ in 0..(ARRAY_MAX + extra) * 2 {
                rows.insert(next(universe.min(BLOCK_ROWS)));
                if rows.len() >= ARRAY_MAX + extra {
                    break;
                }
            }
        }
    }
    rows.into_iter().collect()
}

/// The reference model: a plain bit-per-row word vector.
fn model_words(rows: &[usize], universe: usize) -> Vec<u64> {
    let mut words = vec![0u64; universe.div_ceil(64)];
    for &r in rows {
        words[r / 64] |= 1 << (r % 64);
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three set operations, on every shape pairing, in every
    /// universe, serial and parallel, agree with word-level arithmetic —
    /// and the results of different kernels are bit-identical.
    #[test]
    fn set_ops_match_the_word_model(
        shape_a in proptest::sample::select(SHAPES.to_vec()),
        shape_b in proptest::sample::select(SHAPES.to_vec()),
        universe in proptest::sample::select(UNIVERSES.to_vec()),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        threads in proptest::sample::select(vec![1usize, 4]),
    ) {
        let rows_a = gen_rows(shape_a, seed_a, universe);
        let rows_b = gen_rows(shape_b, seed_b, universe);
        let (wa, wb) = (model_words(&rows_a, universe), model_words(&rows_b, universe));
        let a = RowSet::from_rows(universe, rows_a.iter().copied());
        let b = RowSet::from_rows(universe, rows_b.iter().copied());
        prop_assert_eq!(&a.to_words(), &wa, "from_rows round-trip");
        prop_assert_eq!(a.len(), rows_a.len());

        let exec = ExecConfig::with_threads(threads);
        type WordOp = fn(u64, u64) -> u64;
        type SetOp = fn(&mut RowSet, &RowSet);
        let word_and: WordOp = |x, y| x & y;
        let word_or: WordOp = |x, y| x | y;
        let word_and_not: WordOp = |x, y| x & !y;
        let cases: [(&str, SetOp, WordOp); 3] = [
            ("intersect", RowSet::intersect_with, word_and),
            ("union", RowSet::union_with, word_or),
            ("and_not", RowSet::and_not_with, word_and_not),
        ];
        for (name, op, word_op) in cases {
            let expected: Vec<u64> =
                wa.iter().zip(&wb).map(|(&x, &y)| word_op(x, y)).collect();
            let mut serial = a.clone();
            op(&mut serial, &b);
            prop_assert_eq!(&serial.to_words(), &expected, "{} serial", name);

            let mut parallel = a.clone();
            match name {
                "intersect" => parallel.intersect_with_exec(&b, &exec).unwrap(),
                "union" => parallel.union_with_exec(&b, &exec).unwrap(),
                _ => parallel.and_not_with_exec(&b, &exec).unwrap(),
            }
            prop_assert_eq!(
                &parallel.to_words(), &expected,
                "{} threads={}", name, threads
            );
            // Representation may differ; equality must be semantic.
            prop_assert_eq!(&serial, &parallel, "{} semantic eq", name);
            prop_assert_eq!(
                serial.len(),
                expected.iter().map(|w| w.count_ones() as usize).sum::<usize>()
            );
        }
    }

    /// Iteration, callback traversal, membership, and the words
    /// round-trip all describe the same set the model does.
    #[test]
    fn traversal_matches_the_word_model(
        shape in proptest::sample::select(SHAPES.to_vec()),
        universe in proptest::sample::select(UNIVERSES.to_vec()),
        seed in any::<u64>(),
    ) {
        let rows = gen_rows(shape, seed, universe);
        let set = RowSet::from_rows(universe, rows.iter().copied());
        let words = model_words(&rows, universe);

        let via_iter: Vec<usize> = set.iter().collect();
        prop_assert_eq!(&via_iter, &rows, "iter() in sorted order");

        let mut via_for_each = Vec::new();
        set.for_each_in_word_range(0..set.n_words(), |r| via_for_each.push(r));
        prop_assert_eq!(&via_for_each, &rows, "for_each over the full range");

        // A sub-range that starts and ends mid-block.
        let lo = set.n_words() / 3;
        let hi = set.n_words() - set.n_words() / 4;
        let expect_range: Vec<usize> = rows
            .iter()
            .copied()
            .filter(|r| (lo * 64..hi * 64).contains(r))
            .collect();
        let got_range: Vec<usize> = set.iter_word_range(lo..hi).collect();
        prop_assert_eq!(&got_range, &expect_range, "word range {}..{}", lo, hi);

        let roundtrip = RowSet::from_words(universe, words.clone()).unwrap();
        prop_assert_eq!(&roundtrip, &set, "from_words(to_words) identity");

        // Membership spot-checks around every populated row's neighborhood.
        for &r in rows.iter().take(64) {
            prop_assert!(set.contains(r));
            if r + 1 < universe {
                prop_assert_eq!(set.contains(r + 1), rows.binary_search(&(r + 1)).is_ok());
            }
        }
    }
}

/// The `ARRAY_MAX`-th insert converts the container without disturbing
/// the set's contents (deterministic edge kept outside proptest so the
/// exact threshold is always exercised).
#[test]
fn conversion_threshold_preserves_contents() {
    let universe = BLOCK_ROWS + 7;
    let mut set = RowSet::empty(universe);
    let mut model = vec![0u64; universe.div_ceil(64)];
    for i in 0..ARRAY_MAX + 2 {
        let row = i * 3 % BLOCK_ROWS;
        set.insert(row);
        model[row / 64] |= 1 << (row % 64);
        if i == ARRAY_MAX - 1 || i == ARRAY_MAX {
            assert_eq!(set.to_words(), model, "around the threshold at {i}");
        }
    }
    assert_eq!(set.to_words(), model);
    assert!(
        set.container_histogram().bitmaps >= 1,
        "past ARRAY_MAX must be a bitmap"
    );
}
