//! End-to-end tests of the HTTP query API over a real socket: tenant
//! isolation, bit-identity with direct library calls, typed error
//! mapping, governance (408/429) without cache poisoning, and wire
//! format negotiation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;

use kdap_suite::core::{Kdap, QueryRequest, Verb, WireFormat};
use kdap_suite::datagen::{build_ebiz, EbizScale};
use kdap_suite::server::{EngineRegistry, KdapServer, ServerConfig};

fn engine(seed: u64) -> Kdap {
    Kdap::builder(build_ebiz(EbizScale::small(), seed).unwrap())
        .cache_capacity(16)
        .observability(true)
        .build()
        .unwrap()
}

/// Two-tenant server on an ephemeral port. Tenants are the same schema
/// at different seeds, so identical requests must produce different,
/// per-tenant data.
fn start(max_inflight: usize) -> KdapServer {
    let registry = EngineRegistry::new()
        .with("ebiz", Arc::new(engine(7)))
        .with("ebiz-alt", Arc::new(engine(11)));
    let config = ServerConfig {
        port: 0,
        workers: 4,
        max_inflight,
        ..ServerConfig::default()
    };
    KdapServer::start(registry, &config).expect("ephemeral bind")
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, returns
/// `(status, content_type, body)`.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: kdap\r\nConnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("recv");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_type = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-type")
                .then(|| value.trim().to_string())
        })
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    http(addr, "POST", path, &[], body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    http(addr, "GET", path, &[], "")
}

/// Entry counts of the two plan caches, parsed out of a `/stats` body.
fn cache_lens(stats: &str) -> (u64, u64) {
    fn len_of(stats: &str, cache: &str) -> u64 {
        let marker = format!("\"{cache}\": {{\"len\": ");
        let at = stats.find(&marker).expect("cache entry in stats") + marker.len();
        stats[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("len value")
    }
    (len_of(stats, "subspace"), len_of(stats, "semijoin"))
}

#[test]
fn concurrent_tenants_are_bit_identical_to_direct_library_calls() {
    let server = start(16);
    let addr = server.addr();

    // Expected bodies come from freshly built engines with the same
    // seeds — the server must add nothing and lose nothing.
    let cases: Vec<(&str, u64, &str)> = vec![("ebiz", 7, "columbus"), ("ebiz-alt", 11, "seattle")];
    let expected: Vec<(String, String, String)> = cases
        .iter()
        .map(|(tenant, seed, keywords)| {
            let direct = engine(*seed)
                .run(&QueryRequest::new(Verb::Explore, *keywords))
                .expect("direct explore succeeds");
            (
                format!("/v1/{tenant}/explore"),
                format!("{{\"keywords\": \"{keywords}\"}}"),
                direct.encode(WireFormat::Json).expect("encodes"),
            )
        })
        .collect();

    // Hammer both tenants concurrently; every response must match its
    // tenant's direct result byte for byte.
    let handles: Vec<_> = (0..3)
        .flat_map(|_| expected.clone())
        .map(|(path, body, want)| {
            thread::spawn(move || {
                let (status, content_type, got) = post(addr, &path, &body);
                assert_eq!(status, 200, "{path}: {got}");
                assert_eq!(content_type, "application/json");
                assert_eq!(got, want, "{path} drifted from the library result");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // The two tenants really are different data sets.
    let (_, _, a) = post(addr, "/v1/ebiz/explore", "{\"keywords\": \"seattle\"}");
    let (_, _, b) = post(addr, "/v1/ebiz-alt/explore", "{\"keywords\": \"seattle\"}");
    assert_ne!(a, b, "tenants must not share state");

    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors() {
    let server = start(16);
    let addr = server.addr();

    for (body, want) in [
        ("{", "invalid JSON"),
        ("{\"keywords\": 42}", "`keywords` must be a string"),
        (
            "{\"keywords\": \"x\", \"bogus\": 1}",
            "unknown field `bogus`",
        ),
        ("{\"keywords\": \"x\", \"rank\": \"nope\"}", "unknown rank"),
    ] {
        let (status, content_type, resp) = post(addr, "/v1/ebiz/differentiate", body);
        assert_eq!(status, 400, "{body} -> {resp}");
        assert_eq!(content_type, "application/json");
        assert!(resp.contains("\"code\": \"bad_request\""), "{resp}");
        assert!(resp.contains(want), "{resp}");
    }

    let (status, _, resp) = post(addr, "/v1/nope/explore", "{\"keywords\": \"x\"}");
    assert_eq!(status, 404);
    assert!(resp.contains("ebiz, ebiz-alt"), "lists tenants: {resp}");

    let (status, _, resp) = post(addr, "/v1/ebiz/frobnicate", "{}");
    assert_eq!(status, 404);
    assert!(resp.contains("unknown action"), "{resp}");

    let (status, _, resp) = get(addr, "/v1/ebiz/explore");
    assert_eq!(status, 405);
    assert!(resp.contains("method_not_allowed"), "{resp}");

    // A pick beyond the interpretation list is a 404, not a 500.
    let (status, _, resp) = post(
        addr,
        "/v1/ebiz/explore",
        "{\"keywords\": \"columbus\", \"pick\": 999}",
    );
    assert_eq!(status, 404);
    assert!(resp.contains("no_interpretation"), "{resp}");

    server.shutdown();
}

#[test]
fn governed_timeout_is_a_typed_408_and_poisons_no_cache() {
    let server = start(16);
    let addr = server.addr();

    // Warm the caches with one healthy query.
    let (status, _, _) = post(addr, "/v1/ebiz/explore", "{\"keywords\": \"columbus\"}");
    assert_eq!(status, 200);
    let (_, _, before) = get(addr, "/v1/ebiz/stats");
    let lens_before = cache_lens(&before);
    assert!(lens_before.0 > 0, "warm-up populated the subspace cache");

    // `timeout_ms: 0` is an already-expired deadline: the query aborts
    // at its first governance check, deterministically.
    let (status, content_type, resp) = post(
        addr,
        "/v1/ebiz/explore",
        "{\"keywords\": \"seattle\", \"timeout_ms\": 0}",
    );
    assert_eq!(status, 408, "{resp}");
    assert_eq!(content_type, "application/json");
    assert!(resp.contains("\"code\": \"timeout\""), "{resp}");

    // The abort left the caches byte-identical and was counted.
    let (_, _, after) = get(addr, "/v1/ebiz/stats");
    assert_eq!(
        cache_lens(&after),
        lens_before,
        "aborted query must not commit"
    );
    assert!(after.contains("\"governor.timeouts\": 1"), "{after}");
    assert!(after.contains("\"http.status.408\": 1"), "{after}");

    // The governance header works too, and the tenant stays healthy.
    let (status, _, _) = http(
        addr,
        "POST",
        "/v1/ebiz/explore",
        &[("x-kdap-timeout-ms", "0")],
        "{\"keywords\": \"seattle\"}",
    );
    assert_eq!(status, 408);
    let (status, _, _) = post(addr, "/v1/ebiz/explore", "{\"keywords\": \"seattle\"}");
    assert_eq!(status, 200, "tenant recovered after governed aborts");

    server.shutdown();
}

#[test]
fn saturated_tenant_rejects_with_429_but_stays_routable() {
    // `max_inflight: 0` admits nothing — every query is a deterministic
    // 429 while liveness and stats stay up.
    let server = start(0);
    let addr = server.addr();

    let (status, _, resp) = post(addr, "/v1/ebiz/explore", "{\"keywords\": \"columbus\"}");
    assert_eq!(status, 429, "{resp}");
    assert!(resp.contains("\"code\": \"too_many_requests\""), "{resp}");

    let (status, _, resp) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(resp.contains("\"status\": \"ok\""), "{resp}");

    let (status, _, stats) = get(addr, "/v1/ebiz/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"http.rejected\": 1"), "{stats}");
    assert!(stats.contains("\"http.status.429\": 1"), "{stats}");

    server.shutdown();
}

#[test]
fn wire_format_negotiation_round_trips() {
    let server = start(16);
    let addr = server.addr();
    let body = "{\"keywords\": \"columbus\"}";

    // Default: JSON.
    let (status, content_type, json) = post(addr, "/v1/ebiz/differentiate", body);
    assert_eq!(status, 200);
    assert_eq!(content_type, "application/json");
    assert!(json.contains("\"verb\": \"differentiate\""), "{json}");
    assert!(json.contains("\"interpretations\""), "{json}");

    // `?format=csv` wins over everything.
    let (status, content_type, csv) = post(addr, "/v1/ebiz/differentiate?format=csv", body);
    assert_eq!(status, 200);
    assert_eq!(content_type, "text/csv");
    assert!(
        csv.starts_with("rank,score,interpretation,fingerprint"),
        "{csv}"
    );

    // `Accept: text/csv` negotiates the same thing.
    let (status, content_type, accept_csv) = http(
        addr,
        "POST",
        "/v1/ebiz/differentiate",
        &[("Accept", "text/csv")],
        body,
    );
    assert_eq!(status, 200);
    assert_eq!(content_type, "text/csv");
    assert_eq!(accept_csv, csv, "header and query negotiation agree");

    // Unknown explicit formats are refused, not silently defaulted.
    let (status, _, resp) = post(addr, "/v1/ebiz/differentiate?format=xml", body);
    assert_eq!(status, 406, "{resp}");
    assert!(resp.contains("not_acceptable"), "{resp}");

    server.shutdown();
}
