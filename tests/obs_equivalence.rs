//! Observability is a pure observer: enabling the recorder must never
//! change a single result bit — not interpretation ranking, not the
//! exploration aggregates, not facet ordering — at any thread count.
//! The per-query profile tree, in turn, must keep a stable stage
//! structure whether the kernels run on one worker or four (timings
//! differ; the tree does not).

use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_ebiz, generate_workload, EbizScale, WorkloadConfig};

fn sessions(threads: usize) -> (Kdap, Kdap) {
    let off = Kdap::builder(build_ebiz(EbizScale::small(), 42).expect("generator is valid"))
        .threads(threads)
        .build()
        .expect("measure defined");
    let on = Kdap::builder(build_ebiz(EbizScale::small(), 42).expect("generator is valid"))
        .threads(threads)
        .observability(true)
        .build()
        .expect("measure defined");
    (off, on)
}

#[test]
fn obs_on_off_results_are_bit_identical_across_thread_counts() {
    for threads in [1usize, 4] {
        let (off, on) = sessions(threads);
        let queries = generate_workload(off.warehouse(), &WorkloadConfig::default());
        let mut explored = 0usize;
        for q in queries.iter().take(24) {
            let text = q.text();
            let ranked_off = off.interpret(&text);
            let ranked_on = on.interpret(&text);
            assert_eq!(
                ranked_off.len(),
                ranked_on.len(),
                "threads={threads} `{text}`: interpretation count diverged"
            );
            for (a, b) in ranked_off.iter().zip(&ranked_on) {
                assert_eq!(
                    a.score, b.score,
                    "threads={threads} `{text}`: ranking score diverged"
                );
                assert_eq!(
                    a.net.fingerprint(),
                    b.net.fingerprint(),
                    "threads={threads} `{text}`: net diverged"
                );
            }
            if let (Some(a), Some(b)) = (ranked_off.first(), ranked_on.first()) {
                let ex_off = off.explore(&a.net).expect("explore succeeds");
                let ex_on = on.explore(&b.net).expect("explore succeeds");
                assert_eq!(
                    ex_off, ex_on,
                    "threads={threads} `{text}`: exploration diverged"
                );
                explored += 1;
            }
        }
        assert!(explored > 4, "workload produced too few explorable queries");
    }
}

#[test]
fn profile_stage_structure_is_stable_across_thread_counts() {
    let (_, on1) = sessions(1);
    let (_, on4) = sessions(4);
    let p1 = on1.profile_query("columbus lcd").expect("profile succeeds");
    let p4 = on4.profile_query("columbus lcd").expect("profile succeeds");
    assert!(!p1.profile.is_empty(), "profile recorded no stages");
    assert_eq!(
        p1.profile.stage_names(),
        p4.profile.stage_names(),
        "profile tree shape must not depend on the worker count"
    );
    assert_eq!(p1.exploration, p4.exploration);
}

#[test]
fn disabled_sessions_record_nothing() {
    let (off, _) = sessions(1);
    assert!(!off.obs().is_enabled());
    // A profile request on a disabled session returns an empty tree
    // rather than erroring — the query itself still runs.
    let report = off.profile_query("columbus lcd").expect("query still runs");
    assert!(report.profile.is_empty());
    assert!(report.exploration.is_some());
    let snap = off.obs().metrics_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}
