//! End-to-end test of the data-driven path: the bookshop example spec
//! (examples/data/) loads through `kdap_warehouse::spec`, and the full
//! KDAP pipeline runs over it — exactly what `kdap --spec` does.

use std::path::Path;

use kdap_suite::core::Kdap;
use kdap_suite::warehouse::load_spec;

fn load_bookshop() -> kdap_suite::warehouse::Warehouse {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/data");
    let spec = std::fs::read_to_string(dir.join("bookshop.spec")).expect("spec exists");
    load_spec(&spec, |file| {
        std::fs::read_to_string(dir.join(file)).map_err(|e| e.to_string())
    })
    .expect("bookshop spec is valid")
}

#[test]
fn bookshop_spec_builds_a_complete_warehouse() {
    let wh = load_bookshop();
    assert_eq!(wh.fact_rows(), 10);
    assert_eq!(wh.tables().len(), 4);
    assert_eq!(wh.schema().dimensions().len(), 2);
    assert_eq!(wh.schema().measures().len(), 2);
    let book_dim = wh.schema().dimension_by_name("Book").unwrap();
    assert_eq!(book_dim.hierarchies.len(), 1);
    assert_eq!(book_dim.groupby_candidates.len(), 4);
}

#[test]
fn kdap_runs_end_to_end_over_spec_data() {
    let kdap = Kdap::builder(load_bookshop()).build().unwrap();
    // Attribute-instance ambiguity in the bookshop: "gardens" hits two
    // fantasy titles in one hit group.
    let ranked = kdap.interpret("gardens");
    assert!(!ranked.is_empty());
    let top = &ranked[0];
    assert_eq!(top.net.n_groups(), 1);
    assert_eq!(
        top.net.constraints[0].group.hits.len(),
        2,
        "both Gardens titles"
    );
    let ex = kdap.explore(&top.net).expect("star net evaluates");
    // Sales of books 2 and 6: rows 2, 7, 8 → qty-weighted revenue.
    assert_eq!(ex.subspace_size, 3);
    let expected = 18.50 + 16.00 + 2.0 * 17.75;
    assert!((ex.total_aggregate - expected).abs() < 1e-9);

    // A phrase over the author's name resolves to the AUTHOR domain.
    let ranked = kdap.interpret("\"ada winterbourne\" mystery");
    assert!(!ranked.is_empty());
    let d = ranked[0].net.display(kdap.warehouse());
    assert!(d.contains("AUTHOR.Name"), "got {d}");
    assert!(d.contains("Mystery"), "got {d}");
}

#[test]
fn hierarchy_rollup_works_on_spec_defined_hierarchies() {
    let kdap = Kdap::builder(load_bookshop()).build().unwrap();
    // Title rolls up to genre.
    let ranked = kdap.interpret("\"the last lighthouse\"");
    let net = &ranked[0].net;
    let rolled = kdap_suite::core::roll_up(kdap.warehouse(), kdap.join_index(), net, 0).unwrap();
    assert_eq!(rolled.n_groups(), 1);
    let attr = rolled.constraints[0].group.attr;
    assert_eq!(kdap.warehouse().col_name(attr), "BOOK.Genre");
    let ex = kdap.explore(&rolled).expect("star net evaluates");
    // All Mystery sales: books 1 and 4 → rows 1, 4, 5.
    assert_eq!(ex.subspace_size, 3);
}
