//! Phrase-query handling (paper §4.3).
//!
//! Hit groups of *consecutive* keywords are merged when (a) they come from
//! the same attribute domain and (b) their intersection is non-empty
//! ("San" + "Jose" both hitting the City domain with "San Jose" in
//! common). The merged group is the intersection, and its hit scores are
//! refreshed by consulting the text engine again with the phrase query,
//! since the per-keyword scores are obsolete after the merge.

use std::collections::{HashMap, HashSet};

use kdap_textindex::TextIndex;

use crate::hit::{Hit, HitGroup, HitSet};

/// Produces the candidate-group pool used by star-seed enumeration: all
/// original single-keyword groups plus every mergeable phrase group over
/// consecutive keyword runs.
pub fn merged_group_pool(index: &TextIndex, hit_sets: &[HitSet]) -> Vec<HitGroup> {
    let mut pool: Vec<HitGroup> = hit_sets
        .iter()
        .flat_map(|hs| hs.groups.iter().cloned())
        .collect();

    // Try every run of consecutive keywords [i, j], longest runs included;
    // generalizes the pairwise merge to phrases of >2 keywords.
    let n = hit_sets.len();
    for i in 0..n {
        for j in (i + 1)..n {
            // Attribute domains present in every hit set of the run.
            let mut common: Option<HashSet<_>> = None;
            for hs in &hit_sets[i..=j] {
                let attrs: HashSet<_> = hs.groups.iter().map(|g| g.attr).collect();
                common = Some(match common {
                    None => attrs,
                    Some(c) => c.intersection(&attrs).copied().collect(),
                });
            }
            let Some(common) = common else { continue };
            for attr in common {
                // Intersect hit codes across the run.
                let mut codes: Option<HashSet<u32>> = None;
                for hs in &hit_sets[i..=j] {
                    // Infallible: `attr` was intersected from exactly
                    // these hit sets' group attributes above.
                    #[allow(clippy::expect_used)]
                    let g = hs
                        .groups
                        .iter()
                        .find(|g| g.attr == attr)
                        .expect("attr is common to the run");
                    let c: HashSet<u32> = g.hits.iter().map(|h| h.code).collect();
                    codes = Some(match codes {
                        None => c,
                        Some(prev) => prev.intersection(&c).copied().collect(),
                    });
                }
                // Infallible: the run `i..=j` holds at least one hit set.
                #[allow(clippy::expect_used)]
                let codes = codes.expect("run is non-empty");
                if codes.is_empty() {
                    // Requirement (b): non-overlapping groups stay separate
                    // ("Software" and "Electronics" are two slices).
                    continue;
                }
                // Re-score the intersection with the phrase query.
                let keywords: Vec<&str> = hit_sets[i..=j]
                    .iter()
                    .map(|hs| hs.keyword.as_str())
                    .collect();
                let phrase_hits = index.search_phrase(&keywords, &Default::default());
                let mut rescored: HashMap<u32, Hit> = HashMap::new();
                for sh in phrase_hits {
                    let meta = index.doc(sh.doc);
                    if meta.attr == attr && codes.contains(&meta.code) {
                        rescored.insert(
                            meta.code,
                            Hit {
                                code: meta.code,
                                value: meta.text.clone(),
                                score: sh.score,
                            },
                        );
                    }
                }
                if rescored.is_empty() {
                    // The instances contain all the keywords but never as a
                    // phrase; keep them unmerged.
                    continue;
                }
                let mut hits: Vec<Hit> = rescored.into_values().collect();
                hits.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.code.cmp(&b.code))
                });
                pool.push(HitGroup {
                    attr,
                    hits,
                    keywords: (i..=j).collect(),
                    numeric: None,
                });
            }
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hit::{build_hit_sets, HitConfig};
    use kdap_warehouse::{ColRef, TableId};
    use std::sync::Arc;

    fn attr(t: u32, c: u32) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    fn index() -> TextIndex {
        TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("San Jose")),
            (attr(0, 0), 1, Arc::from("San Antonio")),
            (attr(0, 0), 2, Arc::from("Santa Cruz")),
            (attr(1, 0), 0, Arc::from("Jose")),
            (attr(2, 0), 0, Arc::from("Software")),
            (attr(2, 0), 1, Arc::from("Electronics")),
        ])
    }

    fn pool_for(keywords: &[&str]) -> Vec<HitGroup> {
        let idx = index();
        let sets = build_hit_sets(&idx, keywords, &HitConfig::default());
        merged_group_pool(&idx, &sets)
    }

    #[test]
    fn consecutive_city_keywords_merge_into_phrase_group() {
        let pool = pool_for(&["san", "jose"]);
        let merged: Vec<&HitGroup> = pool.iter().filter(|g| g.keywords.len() == 2).collect();
        assert_eq!(merged.len(), 1);
        let g = merged[0];
        assert_eq!(g.attr, attr(0, 0));
        assert_eq!(g.hits.len(), 1);
        assert_eq!(g.hits[0].value.as_ref(), "San Jose");
        // Phrase score of the exact instance is 1.
        assert!((g.hits[0].score - 1.0).abs() < 1e-9);
        assert_eq!(g.keywords, vec![0, 1]);
    }

    #[test]
    fn merged_group_excludes_non_phrase_instances() {
        let pool = pool_for(&["san", "jose"]);
        let merged = pool.iter().find(|g| g.keywords.len() == 2).unwrap();
        assert!(merged.hits.iter().all(|h| h.value.as_ref() == "San Jose"));
    }

    #[test]
    fn original_groups_survive_in_pool() {
        let pool = pool_for(&["san", "jose"]);
        // "san" city group (San Jose, San Antonio, Santa Cruz via prefix)
        // and "jose" groups remain available as alternatives.
        assert!(pool
            .iter()
            .any(|g| g.keywords == vec![0] && g.attr == attr(0, 0)));
        assert!(pool
            .iter()
            .any(|g| g.keywords == vec![1] && g.attr == attr(1, 0)));
    }

    #[test]
    fn disjoint_groups_from_same_domain_do_not_merge() {
        // "Software" and "Electronics" hit the same attribute domain but
        // share no instance — they must stay side-by-side slices.
        let pool = pool_for(&["software", "electronics"]);
        assert!(pool.iter().all(|g| g.keywords.len() == 1));
    }

    #[test]
    fn non_adjacent_instances_do_not_merge() {
        // "jose" then "san" in reverse order: "Jose San" never occurs as a
        // phrase, so no merged group forms.
        let pool = pool_for(&["jose", "san"]);
        assert!(pool.iter().all(|g| g.keywords.len() == 1));
    }
}
