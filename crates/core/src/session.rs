//! End-to-end KDAP session: the two-phase differentiate/explore loop of
//! Figure 1.
//!
//! ```text
//! keywords ──▶ interpret() ──▶ ranked star nets ──(user picks one)──▶
//!          explore() ──▶ aggregates + dynamic facets
//! ```

use kdap_query::JoinIndex;
use kdap_textindex::TextIndex;
use kdap_warehouse::{Measure, Warehouse, WarehouseError};

use crate::cache::SubspaceCache;
use crate::facet::{explore_subspace, Exploration, FacetConfig};
use crate::interpret::{generate_star_nets, GenConfig, StarNet};
use crate::rank::{rank_star_nets, RankMethod, RankedStarNet};
use crate::subspace::materialize;

/// A ready-to-query KDAP system over one warehouse: text index and join
/// indexes are built once at construction.
pub struct Kdap {
    wh: Warehouse,
    index: TextIndex,
    jidx: JoinIndex,
    /// Differentiate-phase configuration.
    pub gen: GenConfig,
    /// Explore-phase configuration.
    pub facet: FacetConfig,
    /// Star-net ranking method (Standard unless ablating).
    pub method: RankMethod,
    measure: Measure,
    cache: Option<SubspaceCache>,
}

impl Kdap {
    /// Builds the offline indexes and a session with default
    /// configuration, using the warehouse's first declared measure.
    pub fn new(wh: Warehouse) -> Result<Self, WarehouseError> {
        let measure = wh
            .schema()
            .measures()
            .first()
            .cloned()
            .ok_or(WarehouseError::NoFactTable)?;
        let index = TextIndex::build(&wh);
        let jidx = JoinIndex::build(&wh);
        Ok(Kdap {
            wh,
            index,
            jidx,
            gen: GenConfig::default(),
            facet: FacetConfig::default(),
            method: RankMethod::Standard,
            measure,
            cache: None,
        })
    }

    /// Enables the subspace cache (§7 future-work optimization): repeat
    /// explorations of the same interpretation skip rematerialization.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(SubspaceCache::new(capacity));
        self
    }

    /// Cache hit/miss counters, when the cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Selects the measure by name.
    pub fn with_measure(mut self, name: &str) -> Result<Self, WarehouseError> {
        self.measure = self
            .wh
            .schema()
            .measure_by_name(name)
            .cloned()
            .ok_or_else(|| WarehouseError::UnknownTable(format!("measure {name}")))?;
        Ok(self)
    }

    /// The underlying warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.wh
    }

    /// The full-text index.
    pub fn text_index(&self) -> &TextIndex {
        &self.index
    }

    /// The join indexes.
    pub fn join_index(&self) -> &JoinIndex {
        &self.jidx
    }

    /// The active measure.
    pub fn measure(&self) -> &Measure {
        &self.measure
    }

    /// Differentiate phase: parses the keyword query (double quotes group
    /// phrases, e.g. `"san jose" tv`), generates candidate star nets and
    /// returns them ranked.
    pub fn interpret(&self, query: &str) -> Vec<RankedStarNet> {
        let keywords = split_query(query);
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let nets = generate_star_nets(&self.wh, &self.index, &refs, &self.gen);
        rank_star_nets(nets, self.method)
    }

    /// Explore phase: aggregates the chosen interpretation's subspace and
    /// constructs its dynamic facets.
    pub fn explore(&self, net: &StarNet) -> Exploration {
        self.explore_with_measure(net, &self.measure)
    }

    /// Explore phase with an explicit measure (the paper extends to
    /// user-defined measures and aggregation functions, §5).
    pub fn explore_with_measure(&self, net: &StarNet, measure: &Measure) -> Exploration {
        let sub = match &self.cache {
            Some(cache) => cache.materialize(&self.wh, &self.jidx, net),
            None => materialize(&self.wh, &self.jidx, net),
        };
        explore_subspace(&self.wh, &self.jidx, net, &sub, measure, &self.facet)
    }
}

/// Splits a raw query into keywords; double-quoted spans stay together so
/// the text engine can treat them as phrases directly.
pub fn split_query(query: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = query.trim();
    while !rest.is_empty() {
        if let Some(stripped) = rest.strip_prefix('"') {
            match stripped.find('"') {
                Some(end) => {
                    let phrase = &stripped[..end];
                    if !phrase.trim().is_empty() {
                        out.push(phrase.trim().to_string());
                    }
                    rest = stripped[end + 1..].trim_start();
                }
                None => {
                    // Unbalanced quote: treat the remainder as one phrase.
                    if !stripped.trim().is_empty() {
                        out.push(stripped.trim().to_string());
                    }
                    rest = "";
                }
            }
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            out.push(rest[..end].to_string());
            rest = rest[end..].trim_start();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ebiz_fixture;

    fn session() -> Kdap {
        let fx = ebiz_fixture();
        Kdap::new(fx.wh).unwrap()
    }

    #[test]
    fn split_query_handles_phrases_and_whitespace() {
        assert_eq!(split_query("columbus lcd"), vec!["columbus", "lcd"]);
        assert_eq!(
            split_query("\"san jose\" tv"),
            vec!["san jose", "tv"]
        );
        assert_eq!(split_query("  a   b  "), vec!["a", "b"]);
        assert_eq!(split_query("\"unbalanced phrase"), vec!["unbalanced phrase"]);
        assert!(split_query("").is_empty());
        assert!(split_query("\"\"").is_empty());
    }

    #[test]
    fn end_to_end_differentiate_then_explore() {
        let kdap = session();
        let ranked = kdap.interpret("columbus lcd");
        assert_eq!(ranked.len(), 4);
        // Scores are sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let ex = kdap.explore(&ranked[0].net);
        assert!(ex.subspace_size > 0);
        assert!(!ex.panels.is_empty());
    }

    #[test]
    fn quoted_phrase_changes_interpretation() {
        let kdap = session();
        // Quoted form searches the phrase directly; "columbus day" only
        // exists in the holiday domain.
        let ranked = kdap.interpret("\"columbus day\"");
        assert!(!ranked.is_empty());
        let top = ranked[0].net.display(kdap.warehouse());
        assert!(top.contains("HOLIDAY"), "got {top}");
    }

    #[test]
    fn session_without_measure_is_rejected() {
        use kdap_warehouse::{ValueType, WarehouseBuilder};
        let mut b = WarehouseBuilder::new();
        b.table("F", &[("Id", ValueType::Int, false)]).unwrap();
        b.fact("F").unwrap();
        let wh = b.finish().unwrap();
        assert!(Kdap::new(wh).is_err());
    }

    #[test]
    fn cached_session_counts_hits_and_matches_uncached() {
        let kdap_plain = session();
        let kdap_cached = session().with_cache(16);
        assert_eq!(kdap_plain.cache_stats(), None);
        let ranked = kdap_cached.interpret("columbus");
        let a = kdap_cached.explore(&ranked[0].net);
        let b = kdap_cached.explore(&ranked[0].net);
        assert_eq!(a.subspace_size, b.subspace_size);
        assert_eq!(a.total_aggregate, b.total_aggregate);
        assert_eq!(kdap_cached.cache_stats(), Some((1, 1)));
        // Same numbers as the uncached session.
        let ranked_p = kdap_plain.interpret("columbus");
        let c = kdap_plain.explore(&ranked_p[0].net);
        assert_eq!(a.total_aggregate, c.total_aggregate);
    }

    #[test]
    fn explore_with_alternate_measure() {
        let kdap = session();
        let ranked = kdap.interpret("columbus");
        let revenue = kdap.explore(&ranked[0].net);
        // COUNT-style measure: the fixture's only measure is Revenue, so
        // synthesize a quantity measure over the fact column.
        let qty = kdap
            .warehouse()
            .schema()
            .measures()
            .first()
            .cloned()
            .unwrap();
        let again = kdap.explore_with_measure(&ranked[0].net, &qty);
        assert_eq!(revenue.total_aggregate, again.total_aggregate);
        assert_eq!(revenue.subspace_size, again.subspace_size);
    }

    #[test]
    fn with_measure_selects_by_name() {
        let kdap = session().with_measure("Revenue").unwrap();
        assert_eq!(kdap.measure().name, "Revenue");
        assert!(session().with_measure("Nope").is_err());
    }
}
