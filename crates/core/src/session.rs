//! End-to-end KDAP session: the two-phase differentiate/explore loop of
//! Figure 1.
//!
//! ```text
//! keywords ──▶ interpret() ──▶ ranked star nets ──(user picks one)──▶
//!          explore() ──▶ aggregates + dynamic facets
//! ```
//!
//! Sessions are configured through [`KdapBuilder`] and may run the
//! explore phase over several worker threads; `threads = 1` (the
//! default) reproduces the serial pipeline bit for bit.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use kdap_obs::{CacheCounters, CacheOutcome, Obs, QueryProfile};
use kdap_query::{ExecConfig, JoinIndex, MeasureVector};
use kdap_textindex::{tokenize_terms, TextIndex};
use kdap_warehouse::{Measure, Warehouse};

use crate::api::{InterpretationSummary, QueryOptions, QueryRequest, QueryResponse, Verb};
use crate::cache::SubspaceCache;
use crate::error::KdapError;
use crate::explain::ExploreReport;
use crate::facet::{explore_subspace_planned, Exploration, FacetConfig, FacetKernel};
use crate::governor::{record_breach, CancelToken, Governor};
use crate::interpret::{try_generate_star_nets, GenConfig, StarNet};
use crate::plan::Planner;
use crate::rank::{rank_star_nets, RankMethod, RankedStarNet};
use crate::subspace::{materialize_batch, materialize_planned, Subspace};

/// Configures and constructs a [`Kdap`] session.
///
/// ```no_run
/// # use kdap_core::Kdap;
/// # fn wh() -> kdap_warehouse::Warehouse { unimplemented!() }
/// let kdap = Kdap::builder(wh())
///     .measure("Revenue")
///     .cache_capacity(64)
///     .threads(4)
///     .build()
///     .expect("valid session");
/// ```
pub struct KdapBuilder {
    wh: Warehouse,
    measure: Option<String>,
    cache_capacity: Option<usize>,
    gen: GenConfig,
    facet: FacetConfig,
    method: RankMethod,
    threads: usize,
    optimizer: bool,
    observability: bool,
    force_scalar: bool,
    deadline: Option<Duration>,
    memory_budget: Option<u64>,
    cancel: Option<CancelToken>,
}

impl KdapBuilder {
    /// Starts a builder over `wh` with default configuration: first
    /// declared measure, no cache, serial execution.
    pub fn new(wh: Warehouse) -> Self {
        KdapBuilder {
            wh,
            measure: None,
            cache_capacity: None,
            gen: GenConfig::default(),
            facet: FacetConfig::default(),
            method: RankMethod::Standard,
            threads: 1,
            optimizer: true,
            observability: false,
            force_scalar: false,
            deadline: None,
            memory_budget: None,
            cancel: None,
        }
    }

    /// Selects the measure by name (default: the warehouse's first
    /// declared measure).
    pub fn measure(mut self, name: impl Into<String>) -> Self {
        self.measure = Some(name.into());
        self
    }

    /// Enables the subspace cache with the given total capacity (§7
    /// future-work optimization): repeat explorations of the same
    /// interpretation skip rematerialization.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Sets the differentiate-phase configuration.
    pub fn gen_config(mut self, gen: GenConfig) -> Self {
        self.gen = gen;
        self
    }

    /// Sets the explore-phase configuration.
    pub fn facet_config(mut self, facet: FacetConfig) -> Self {
        self.facet = facet;
        self
    }

    /// Sets the star-net ranking method (Standard unless ablating).
    pub fn rank_method(mut self, method: RankMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the worker-thread count for the parallel execution engine.
    /// `1` (the default) runs serially; `0` uses all available cores.
    /// Results are identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Forces the scalar kernel tier for this session (default: off),
    /// overriding runtime CPU dispatch exactly like the `KDAP_NO_SIMD`
    /// environment variable but scoped to one session. Results are
    /// bit-identical either way; the scalar tier is the reference the
    /// SIMD tiers are tested against.
    pub fn force_scalar_kernels(mut self, force: bool) -> Self {
        self.force_scalar = force;
        self
    }

    /// Enables or disables the plan optimizer (default: enabled).
    /// With the optimizer on, star nets execute through selectivity-
    /// reordered, fused physical plans and share a per-session semi-join
    /// cache; off reproduces the naive per-net evaluation exactly.
    /// Results are identical either way.
    pub fn optimizer(mut self, enabled: bool) -> Self {
        self.optimizer = enabled;
        self
    }

    /// Enables or disables the observability recorder (default:
    /// disabled). Enabled, the session records per-stage timings into
    /// query profiles ([`Kdap::profile_query`]) and metrics; disabled,
    /// every instrumentation point is a no-op branch and results are
    /// bit-identical either way.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Sets a per-query wall-clock deadline. Each `interpret`/`explore`
    /// call restarts the clock; a query running past it aborts
    /// cooperatively with [`KdapError::Timeout`] at the next kernel
    /// chunk boundary.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a per-query memory budget in bytes, charged by accumulator
    /// and bitmap allocations. A query charging past it aborts with
    /// [`KdapError::BudgetExceeded`].
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches an externally owned cancellation token instead of a
    /// private one. Interactive frontends hand the same token to a
    /// console signal handler; server deployments keep each session's
    /// token private and pass per-request tokens through
    /// [`Kdap::run_cancellable`] instead.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Builds the offline indexes and the session.
    pub fn build(self) -> Result<Kdap, KdapError> {
        let measure = match &self.measure {
            Some(name) => self
                .wh
                .schema()
                .measure_by_name(name)
                .cloned()
                .ok_or_else(|| KdapError::UnknownMeasure(name.clone()))?,
            None => self
                .wh
                .schema()
                .measures()
                .first()
                .cloned()
                .ok_or(KdapError::NoMeasure)?,
        };
        let obs = if self.observability {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let mut index = TextIndex::build(&self.wh);
        index.attach_obs(obs.clone());
        let jidx = JoinIndex::build(&self.wh);
        let exec = if self.threads == 1 {
            ExecConfig::serial()
        } else {
            ExecConfig::with_threads(self.threads)
        }
        .with_obs(obs.clone())
        .with_force_scalar(self.force_scalar);
        let mut planner = if self.optimizer {
            Planner::optimized()
        } else {
            Planner::naive()
        };
        planner.attach_obs(obs.clone());
        Ok(Kdap {
            wh: self.wh,
            index,
            jidx,
            gen: self.gen,
            facet: self.facet,
            method: self.method,
            measure,
            cache: self.cache_capacity.map(SubspaceCache::new),
            exec,
            planner,
            obs,
            governor: Governor {
                deadline: self.deadline,
                memory_budget: self.memory_budget,
                cancel: self.cancel.unwrap_or_default(),
            },
            measure_vectors: Mutex::new(HashMap::new()),
        })
    }
}

/// A ready-to-query KDAP system over one warehouse: text index and join
/// indexes are built once at construction (see [`KdapBuilder`]).
pub struct Kdap {
    wh: Warehouse,
    index: TextIndex,
    jidx: JoinIndex,
    gen: GenConfig,
    facet: FacetConfig,
    method: RankMethod,
    measure: Measure,
    cache: Option<SubspaceCache>,
    exec: ExecConfig,
    planner: Planner,
    obs: Obs,
    governor: Governor,
    /// Measure expressions decoded to flat `f64` vectors, memoized by
    /// measure name for the life of the session — every fused exploration
    /// of the same measure shares one decode.
    measure_vectors: Mutex<HashMap<String, Arc<MeasureVector>>>,
}

impl Kdap {
    /// Starts a [`KdapBuilder`] over `wh`.
    pub fn builder(wh: Warehouse) -> KdapBuilder {
        KdapBuilder::new(wh)
    }

    /// Cache hit/miss counters, when the cache is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The underlying warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        &self.wh
    }

    /// The full-text index.
    pub fn text_index(&self) -> &TextIndex {
        &self.index
    }

    /// The join indexes.
    pub fn join_index(&self) -> &JoinIndex {
        &self.jidx
    }

    /// The active measure.
    pub fn measure(&self) -> &Measure {
        &self.measure
    }

    /// The differentiate-phase configuration.
    pub fn gen_config(&self) -> &GenConfig {
        &self.gen
    }

    /// Mutable access to the differentiate-phase configuration.
    pub fn gen_config_mut(&mut self) -> &mut GenConfig {
        &mut self.gen
    }

    /// The explore-phase configuration.
    pub fn facet_config(&self) -> &FacetConfig {
        &self.facet
    }

    /// Mutable access to the explore-phase configuration (interactive
    /// sessions flip interestingness modes and facet ordering).
    pub fn facet_config_mut(&mut self) -> &mut FacetConfig {
        &mut self.facet
    }

    /// The star-net ranking method.
    pub fn rank_method(&self) -> RankMethod {
        self.method
    }

    /// Changes the star-net ranking method.
    pub fn set_rank_method(&mut self, method: RankMethod) {
        self.method = method;
    }

    /// The execution configuration of the parallel engine.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Changes the worker-thread count (`1` = serial, `0` = all cores).
    pub fn set_threads(&mut self, threads: usize) {
        let force_scalar = self.exec.force_scalar;
        self.exec = if threads == 1 {
            ExecConfig::serial()
        } else {
            ExecConfig::with_threads(threads)
        }
        .with_obs(self.obs.clone())
        .with_force_scalar(force_scalar);
    }

    /// The kernel tier this session's batch kernels dispatch to: the
    /// process-wide detected tier unless the session (or `KDAP_NO_SIMD`)
    /// forces the scalar reference tier.
    pub fn kernel_tier(&self) -> kdap_query::KernelTier {
        self.exec.kernel_tier()
    }

    /// Per-query wall-clock deadline (None = unlimited).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.governor.deadline = deadline;
    }

    /// Per-query memory budget in bytes (None = unlimited).
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.governor.memory_budget = bytes;
    }

    /// A clonable handle that cancels the in-flight query when tripped
    /// (safe to call from a signal handler). Once handed out, every query
    /// of this session polls it at chunk granularity; call
    /// [`CancelToken::reset`] after a cancelled query unwinds.
    pub fn cancel_token(&self) -> CancelToken {
        self.governor.cancel.clone()
    }

    /// Replaces the session's cancellation token. Interactive frontends
    /// use this to scope a console signal handler to one session at a
    /// time; sessions hosted in a server registry keep their private
    /// token and receive per-request tokens via [`Kdap::run_cancellable`]
    /// instead.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.governor.cancel = token;
    }

    /// The per-query execution config: the session's `exec` plus a fresh
    /// governance context when limits are set or a cancel token has been
    /// handed out. Fresh per query, so the deadline clock restarts here.
    fn query_exec(&self) -> ExecConfig {
        if self.governor.is_unlimited() && !self.governor.cancel.is_shared() {
            self.exec.clone()
        } else {
            self.exec.clone().with_govern(self.governor.fresh_context())
        }
    }

    /// A request-scoped execution config: the session's `exec` governed
    /// by a [`Governor`] built from the request's overrides (`timeout_ms`
    /// / `budget_bytes` replace the session defaults when present) and an
    /// optional per-request cancel token (the server trips one on client
    /// disconnect). A `timeout_ms` of 0 is an already-expired deadline.
    fn request_exec(&self, options: &QueryOptions, cancel: Option<CancelToken>) -> ExecConfig {
        let deadline = options
            .timeout_ms
            .map(Duration::from_millis)
            .or(self.governor.deadline);
        let memory_budget = options.budget_bytes.or(self.governor.memory_budget);
        // An externally supplied token is shared by construction (its
        // owner holds a clone); the session token only counts when an
        // embedder has taken a handle out via `cancel_token()`.
        let shared = cancel.is_some() || self.governor.cancel.is_shared();
        if deadline.is_none() && memory_budget.is_none() && !shared {
            return self.exec.clone();
        }
        let governor = Governor {
            deadline,
            memory_budget,
            cancel: cancel.unwrap_or_else(|| self.governor.cancel.clone()),
        };
        self.exec.clone().with_govern(governor.fresh_context())
    }

    /// Differentiate phase — the **primary** entry point: parses the
    /// keyword query (double quotes group phrases, e.g. `"san jose" tv`),
    /// generates candidate star nets and returns them ranked.
    ///
    /// Errors are typed: [`KdapError::EmptyQuery`] when the input holds
    /// no usable keyword (empty, or nothing but stopwords and
    /// punctuation), and a governance error when the session's deadline,
    /// cancel token, or budget fires mid-generation. A well-formed query
    /// whose keywords simply match nothing still returns `Ok` with an
    /// empty ranking. Server, CLI and REPL all share this one
    /// typed-error path; [`Kdap::interpret`] is the lossy convenience
    /// form.
    pub fn try_interpret(&self, query: &str) -> Result<Vec<RankedStarNet>, KdapError> {
        let result = self.interpret_stage(query, self.method, &self.query_exec());
        if let Err(err) = &result {
            record_breach(&self.obs, err);
        }
        result
    }

    /// Infallible convenience wrapper over [`Kdap::try_interpret`]:
    /// empty/stopword-only input and governance aborts all collapse to
    /// an empty ranking. Prefer `try_interpret` anywhere the caller can
    /// surface an error.
    pub fn interpret(&self, query: &str) -> Vec<RankedStarNet> {
        self.try_interpret(query).unwrap_or_default()
    }

    /// The differentiate pipeline with explicit ranking method and
    /// execution config — the request-scoped form `run()` uses.
    fn interpret_stage(
        &self,
        query: &str,
        method: RankMethod,
        exec: &ExecConfig,
    ) -> Result<Vec<RankedStarNet>, KdapError> {
        let span = self.obs.span("differentiate");
        let keywords = split_query(query);
        if !has_usable_keyword(&keywords) {
            return Err(KdapError::EmptyQuery);
        }
        span.note("keywords", keywords.len());
        let refs: Vec<&str> = keywords.iter().map(String::as_str).collect();
        let nets = {
            let _s = self.obs.span("generate_star_nets");
            try_generate_star_nets(&self.wh, &self.index, &refs, &self.gen, exec)?
        };
        let ranked = {
            let _s = self.obs.span("rank_star_nets");
            rank_star_nets(nets, method)
        };
        span.rows_out(ranked.len() as u64);
        Ok(ranked)
    }

    /// Materializes the subspaces of the top-`k` ranked interpretations
    /// as one batch — each distinct `(group, path)` constraint across the
    /// whole candidate set is evaluated at most once — warming the
    /// subspace cache when it is enabled. Returned subspaces align with
    /// the input order.
    pub fn materialize_top(
        &self,
        ranked: &[RankedStarNet],
        k: usize,
    ) -> Result<Vec<Subspace>, KdapError> {
        let exec = self.query_exec();
        let result = self.materialize_top_inner(ranked, k, &exec);
        if let Err(err) = &result {
            record_breach(&self.obs, err);
        }
        result
    }

    fn materialize_top_inner(
        &self,
        ranked: &[RankedStarNet],
        k: usize,
        exec: &ExecConfig,
    ) -> Result<Vec<Subspace>, KdapError> {
        let nets: Vec<&StarNet> = ranked.iter().take(k).map(|r| &r.net).collect();
        let Some(cache) = &self.cache else {
            return materialize_batch(&self.wh, &self.jidx, &nets, &self.planner, exec);
        };
        // Serve warm interpretations from the subspace cache; batch the
        // misses through the planner. The cache is written only after the
        // whole batch succeeded, so a governed abort leaves it untouched.
        let keys: Vec<String> = nets.iter().map(|n| n.fingerprint()).collect();
        let mut out: Vec<Option<Subspace>> = keys.iter().map(|key| cache.get(key)).collect();
        let missing: Vec<usize> = (0..nets.len()).filter(|&i| out[i].is_none()).collect();
        let miss_nets: Vec<&StarNet> = missing.iter().map(|&i| nets[i]).collect();
        let subs = materialize_batch(&self.wh, &self.jidx, &miss_nets, &self.planner, exec)?;
        for (&i, sub) in missing.iter().zip(subs) {
            cache.insert(keys[i].clone(), sub.clone());
            out[i] = Some(sub);
        }
        Ok(out
            .into_iter()
            // Infallible: every index is either a cache hit or in `missing`.
            .map(|s| {
                #[allow(clippy::expect_used)]
                s.expect("all slots filled")
            })
            .collect())
    }

    fn materialize_net(&self, net: &StarNet, exec: &ExecConfig) -> Result<Subspace, KdapError> {
        let span = self.obs.span("materialize");
        let Some(cache) = &self.cache else {
            let sub = materialize_planned(&self.wh, &self.jidx, net, &self.planner, exec)?;
            span.rows_out(sub.len() as u64);
            return Ok(sub);
        };
        let key = net.fingerprint();
        if let Some(sub) = cache.get(&key) {
            span.cache(CacheOutcome::Hit);
            span.rows_out(sub.len() as u64);
            return Ok(sub);
        }
        span.cache(CacheOutcome::Miss);
        // The subspace-cache insert happens strictly after successful
        // materialization: a governed abort cannot leave a partial entry.
        let sub = materialize_planned(&self.wh, &self.jidx, net, &self.planner, exec)?;
        cache.insert(key, sub.clone());
        span.rows_out(sub.len() as u64);
        Ok(sub)
    }

    /// Explore phase: aggregates the chosen interpretation's subspace and
    /// constructs its dynamic facets.
    pub fn explore(&self, net: &StarNet) -> Result<Exploration, KdapError> {
        self.explore_with_measure(net, &self.measure)
    }

    /// Explore phase with an explicit measure (the paper extends to
    /// user-defined measures and aggregation functions, §5).
    ///
    /// With the fused kernel (the default) the measure vector is served
    /// from the session memo, so repeated explorations of the same
    /// measure decode it exactly once.
    pub fn explore_with_measure(
        &self,
        net: &StarNet,
        measure: &Measure,
    ) -> Result<Exploration, KdapError> {
        let result = self.explore_with_measure_inner(net, measure);
        if let Err(err) = &result {
            record_breach(&self.obs, err);
        }
        result
    }

    fn explore_with_measure_inner(
        &self,
        net: &StarNet,
        measure: &Measure,
    ) -> Result<Exploration, KdapError> {
        self.explore_stage(net, measure, &self.facet, &self.query_exec())
    }

    /// The explore pipeline with explicit facet and execution configs —
    /// the request-scoped form `run()` and `explore_with_options()` use.
    fn explore_stage(
        &self,
        net: &StarNet,
        measure: &Measure,
        facet: &FacetConfig,
        exec: &ExecConfig,
    ) -> Result<Exploration, KdapError> {
        let _span = self.obs.span("explore");
        match facet.kernel {
            FacetKernel::PerFacet => {
                let sub = self.materialize_net(net, exec)?;
                explore_subspace_planned(
                    &self.wh,
                    &self.jidx,
                    net,
                    &sub,
                    measure,
                    facet,
                    exec,
                    &self.planner,
                )
            }
            FacetKernel::Fused => self
                .explore_instrumented(net, measure, facet, exec)
                .map(|(ex, _)| ex),
        }
    }

    /// Explore phase with per-request option overrides ([`QueryOptions`]
    /// from the `api` module) — the hook interactive frontends use for
    /// drill/roll-up navigation so they never mutate [`FacetConfig`]
    /// directly. Governance overrides (`timeout_ms`, `budget_bytes`)
    /// apply to this call only.
    pub fn explore_with_options(
        &self,
        net: &StarNet,
        options: &QueryOptions,
    ) -> Result<Exploration, KdapError> {
        let facet = options.apply_facet(self.facet.clone());
        let exec = self.request_exec(options, None);
        let result = self.explore_stage(net, &self.measure, &facet, &exec);
        if let Err(err) = &result {
            record_breach(&self.obs, err);
        }
        result
    }

    /// The session-memoized measure vector for `measure`, decoding it on
    /// first request.
    fn measure_vector(&self, measure: &Measure) -> Arc<MeasureVector> {
        let mut cache = self
            .measure_vectors
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        cache
            .entry(measure.name.clone())
            .or_insert_with(|| Arc::new(MeasureVector::build(&self.wh, measure)))
            .clone()
    }

    fn explore_instrumented(
        &self,
        net: &StarNet,
        measure: &Measure,
        facet: &FacetConfig,
        exec: &ExecConfig,
    ) -> Result<(Exploration, ExploreReport), KdapError> {
        let sub = self.materialize_net(net, exec)?;
        let mv = self.measure_vector(measure);
        crate::facet::fused::explore_fused(
            &self.wh,
            &self.jidx,
            net,
            &sub,
            &mv,
            facet,
            exec,
            &self.planner,
        )
    }

    /// EXPLAIN of the explore phase: runs the fused pipeline (whatever
    /// the configured kernel) and returns the exploration together with
    /// its scan accounting — scans fused vs. the per-facet equivalent,
    /// and the dense/hash/buckets kernel choice per facet spec.
    pub fn explain_explore(
        &self,
        net: &StarNet,
    ) -> Result<(Exploration, ExploreReport), KdapError> {
        self.explain_explore_with(net, &QueryOptions::default())
    }

    /// [`Kdap::explain_explore`] with per-request option overrides, so
    /// frontends replay EXPLAIN under the exact facet configuration of
    /// the request being explained.
    pub fn explain_explore_with(
        &self,
        net: &StarNet,
        options: &QueryOptions,
    ) -> Result<(Exploration, ExploreReport), KdapError> {
        let facet = options.apply_facet(self.facet.clone());
        let exec = self.request_exec(options, None);
        let (ex, mut report) = {
            let _span = self.obs.span("explore");
            self.explore_instrumented(net, &self.measure, &facet, &exec)?
        };
        report.subspace_cache = self.cache.as_ref().map(|c| c.counters());
        report.semijoin_cache = self.planner.cache_counters();
        report.mapper_cache = Some(self.jidx.mapper_counters());
        Ok((ex, report))
    }

    /// EXPLAIN: the optimized physical plan of `net` with estimated vs.
    /// actual cardinalities and semi-join cache hits, executed through
    /// this session's planner.
    pub fn explain(&self, net: &StarNet) -> Result<crate::explain::Plan, KdapError> {
        crate::explain::explain_planned(&self.wh, &self.jidx, net, &self.planner, &self.exec)
    }

    /// The session's planner (optimizer switches, statistics, semi-join
    /// cache).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// `(hits, misses)` of the semi-join cache, when the optimizer is
    /// enabled.
    pub fn semijoin_stats(&self) -> Option<(u64, u64)> {
        self.planner.cache_stats()
    }

    /// The session's observability handle (disabled unless the session
    /// was built with [`KdapBuilder::observability`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Subspace-cache hit/miss/eviction counters, when the cache is
    /// enabled.
    pub fn subspace_cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Semi-join-cache hit/miss/eviction counters, when the optimizer is
    /// enabled.
    pub fn semijoin_counters(&self) -> Option<CacheCounters> {
        self.planner.cache_counters()
    }

    /// Number of entries in the subspace cache, when enabled. Governance
    /// tests use this to assert that aborted queries commit nothing.
    pub fn subspace_cache_len(&self) -> Option<usize> {
        self.cache.as_ref().map(|c| c.len())
    }

    /// Number of entries in the planner's semi-join cache, when enabled.
    pub fn semijoin_cache_len(&self) -> Option<usize> {
        self.planner.cache().map(|c| c.len())
    }

    /// Row-mapper-cache hit/miss counters of the session's join index.
    pub fn mapper_counters(&self) -> CacheCounters {
        self.jidx.mapper_counters()
    }

    /// Container histogram over every row set held by the session's
    /// caches (subspace cache + semi-join cache) — how the live hybrid
    /// bitmaps compress into array/bitmap/run blocks.
    pub fn cache_container_histogram(&self) -> kdap_query::ContainerHistogram {
        let mut h = kdap_query::ContainerHistogram::default();
        if let Some(cache) = self.cache.as_ref() {
            h.merge(&cache.container_histogram());
        }
        if let Some(cache) = self.planner.cache() {
            h.merge(&cache.container_histogram());
        }
        h
    }

    /// Executes one typed [`QueryRequest`] — **the** unified entry point
    /// every frontend (HTTP server, CLI, REPL) drives. The verb selects
    /// the pipeline: `differentiate` ranks interpretations,
    /// `explore`/`profile`/`explain` additionally run the explore phase
    /// on the picked interpretation (profile under the session recorder,
    /// explain with plan and scan accounting). Request options override
    /// the session's ranking method, facet configuration and governance
    /// limits for this call only; the session configuration is never
    /// mutated, so one `Arc<Kdap>` serves concurrent requests with
    /// differing options.
    ///
    /// Errors are typed [`KdapError`]s ([`crate::api::ApiError::from_kdap`]
    /// maps them onto HTTP statuses), and governance breaches are counted
    /// in the obs metrics before returning.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResponse, KdapError> {
        self.run_cancellable(request, None)
    }

    /// [`Kdap::run`] with an explicit per-request cancellation token.
    /// The server trips the token when the client disconnects mid-query;
    /// the query then unwinds with [`KdapError::Cancelled`] at the next
    /// kernel chunk boundary, leaving every cache untouched.
    pub fn run_cancellable(
        &self,
        request: &QueryRequest,
        cancel: Option<CancelToken>,
    ) -> Result<QueryResponse, KdapError> {
        let exec = self.request_exec(&request.options, cancel);
        let result = self.run_inner(request, &exec);
        if let Err(err) = &result {
            record_breach(&self.obs, err);
        }
        result
    }

    fn run_inner(
        &self,
        request: &QueryRequest,
        exec: &ExecConfig,
    ) -> Result<QueryResponse, KdapError> {
        let method = request.options.rank.unwrap_or(self.method);
        let facet = request.options.apply_facet(self.facet.clone());
        let profiling = request.verb == Verb::Profile;
        if profiling {
            self.obs.start_profile(&request.keywords);
        }
        let ranked = self.interpret_stage(&request.keywords, method, exec);
        // A failed differentiate must not leave profile state behind.
        let ranked = match ranked {
            Ok(ranked) => ranked,
            Err(err) => {
                if profiling {
                    self.obs.take_profile();
                }
                return Err(err);
            }
        };
        let n = ranked.len();
        let shown = if request.limit == 0 { n } else { request.limit };
        let interpretations = ranked
            .iter()
            .take(shown)
            .enumerate()
            .map(|(i, r)| InterpretationSummary {
                rank: i + 1,
                score: r.score,
                display: r.net.display(&self.wh),
                fingerprint: r.net.fingerprint(),
            })
            .collect();
        let mut response = QueryResponse {
            verb: request.verb,
            keywords: request.keywords.clone(),
            n_interpretations: n,
            interpretations,
            ranked,
            picked: None,
            exploration: None,
            plan: None,
            report: None,
            profile: None,
        };
        if request.verb != Verb::Differentiate {
            let net = match response.ranked.get(request.pick.wrapping_sub(1)) {
                Some(r) => r.net.clone(),
                None => {
                    if profiling {
                        self.obs.take_profile();
                    }
                    return Err(KdapError::NoInterpretation {
                        pick: request.pick,
                        available: n,
                    });
                }
            };
            response.picked = Some(request.pick);
            match request.verb {
                Verb::Explain => {
                    let explained = {
                        let _span = self.obs.span("explore");
                        self.explore_instrumented(&net, &self.measure, &facet, exec)
                    };
                    let (ex, mut report) = explained?;
                    report.subspace_cache = self.cache.as_ref().map(|c| c.counters());
                    report.semijoin_cache = self.planner.cache_counters();
                    report.mapper_cache = Some(self.jidx.mapper_counters());
                    response.plan = Some(self.explain(&net)?.render());
                    response.report = Some(report.render());
                    response.exploration = Some(ex);
                }
                _ => {
                    let explored = self.explore_stage(&net, &self.measure, &facet, exec);
                    let ex = match explored {
                        Ok(ex) => ex,
                        Err(err) => {
                            if profiling {
                                self.obs.take_profile();
                            }
                            return Err(err);
                        }
                    };
                    response.exploration = Some(ex);
                }
            }
        }
        if profiling {
            let mut profile = self
                .obs
                .take_profile()
                .unwrap_or_else(|| QueryProfile::empty(&request.keywords));
            profile.trace_id = request.trace_id.clone();
            response.profile = Some(profile);
        }
        Ok(response)
    }

    /// Runs the full differentiate → explore loop for `query` under the
    /// session recorder and returns the ranked interpretations, the
    /// exploration of the top one, and the per-stage timing profile.
    ///
    /// The profile is empty unless the session was built with
    /// [`KdapBuilder::observability`] — instrumentation stays inert (and
    /// results stay bit-identical) with the recorder off.
    pub fn profile_query(&self, query: &str) -> Result<ProfileReport, KdapError> {
        self.obs.start_profile(query);
        let ranked = match self.try_interpret(query) {
            Ok(ranked) => ranked,
            // No usable keywords is an empty (not failed) profile run.
            Err(KdapError::EmptyQuery) => Vec::new(),
            Err(err) => return Err(err),
        };
        let exploration = match ranked.first() {
            Some(top) => Some(self.explore(&top.net)?),
            None => None,
        };
        let profile = self
            .obs
            .take_profile()
            .unwrap_or_else(|| QueryProfile::empty(query));
        Ok(ProfileReport {
            ranked,
            exploration,
            profile,
        })
    }
}

/// The result of [`Kdap::profile_query`]: the query's ranked
/// interpretations, the exploration of the top-ranked one (when any
/// interpretation exists), and the recorded per-stage timing profile.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Ranked star-net interpretations, best first.
    pub ranked: Vec<RankedStarNet>,
    /// Exploration of the top interpretation; `None` when the query
    /// produced no interpretation at all.
    pub exploration: Option<Exploration>,
    /// The per-stage timing tree (empty when observability is off).
    pub profile: QueryProfile,
}

/// The classic Lucene StandardAnalyzer stopword list. Keyword input made
/// entirely of these (plus punctuation) carries no analytical intent, so
/// the session rejects it with [`KdapError::EmptyQuery`] instead of
/// generating a degenerate star net over the whole dataspace.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

/// True when at least one keyword tokenizes to a non-stopword term.
fn has_usable_keyword(keywords: &[String]) -> bool {
    keywords.iter().any(|k| {
        tokenize_terms(k)
            .iter()
            .any(|t| !STOPWORDS.contains(&t.as_str()))
    })
}

/// Splits a raw query into keywords; double-quoted spans stay together so
/// the text engine can treat them as phrases directly.
pub fn split_query(query: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = query.trim();
    while !rest.is_empty() {
        if let Some(stripped) = rest.strip_prefix('"') {
            match stripped.find('"') {
                Some(end) => {
                    let phrase = &stripped[..end];
                    if !phrase.trim().is_empty() {
                        out.push(phrase.trim().to_string());
                    }
                    rest = stripped[end + 1..].trim_start();
                }
                None => {
                    // Unbalanced quote: treat the remainder as one phrase.
                    if !stripped.trim().is_empty() {
                        out.push(stripped.trim().to_string());
                    }
                    rest = "";
                }
            }
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            out.push(rest[..end].to_string());
            rest = rest[end..].trim_start();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ebiz_fixture;

    fn session() -> Kdap {
        let fx = ebiz_fixture();
        Kdap::builder(fx.wh).build().unwrap()
    }

    #[test]
    fn split_query_handles_phrases_and_whitespace() {
        assert_eq!(split_query("columbus lcd"), vec!["columbus", "lcd"]);
        assert_eq!(split_query("\"san jose\" tv"), vec!["san jose", "tv"]);
        assert_eq!(split_query("  a   b  "), vec!["a", "b"]);
        assert_eq!(
            split_query("\"unbalanced phrase"),
            vec!["unbalanced phrase"]
        );
        assert!(split_query("").is_empty());
        assert!(split_query("\"\"").is_empty());
    }

    #[test]
    fn end_to_end_differentiate_then_explore() {
        let kdap = session();
        let ranked = kdap.interpret("columbus lcd");
        assert_eq!(ranked.len(), 4);
        // Scores are sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let ex = kdap.explore(&ranked[0].net).unwrap();
        assert!(ex.subspace_size > 0);
        assert!(!ex.panels.is_empty());
    }

    #[test]
    fn quoted_phrase_changes_interpretation() {
        let kdap = session();
        // Quoted form searches the phrase directly; "columbus day" only
        // exists in the holiday domain.
        let ranked = kdap.interpret("\"columbus day\"");
        assert!(!ranked.is_empty());
        let top = ranked[0].net.display(kdap.warehouse());
        assert!(top.contains("HOLIDAY"), "got {top}");
    }

    #[test]
    fn session_without_measure_is_rejected() {
        use kdap_warehouse::{ValueType, WarehouseBuilder};
        let mut b = WarehouseBuilder::new();
        b.table("F", &[("Id", ValueType::Int, false)]).unwrap();
        b.fact("F").unwrap();
        let wh = b.finish().unwrap();
        assert!(matches!(
            Kdap::builder(wh).build(),
            Err(KdapError::NoMeasure)
        ));
    }

    #[test]
    fn builder_rejects_unknown_measure() {
        let fx = ebiz_fixture();
        assert!(matches!(
            Kdap::builder(fx.wh).measure("Nope").build(),
            Err(KdapError::UnknownMeasure(_))
        ));
    }

    #[test]
    fn builder_selects_measure_by_name() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh).measure("Revenue").build().unwrap();
        assert_eq!(kdap.measure().name, "Revenue");
    }

    #[test]
    fn cached_session_counts_hits_and_matches_uncached() {
        let fx = ebiz_fixture();
        let kdap_plain = session();
        let kdap_cached = Kdap::builder(fx.wh).cache_capacity(16).build().unwrap();
        assert_eq!(kdap_plain.cache_stats(), None);
        let ranked = kdap_cached.interpret("columbus");
        let a = kdap_cached.explore(&ranked[0].net).unwrap();
        let b = kdap_cached.explore(&ranked[0].net).unwrap();
        assert_eq!(a.subspace_size, b.subspace_size);
        assert_eq!(a.total_aggregate, b.total_aggregate);
        assert_eq!(kdap_cached.cache_stats(), Some((1, 1)));
        // Same numbers as the uncached session.
        let ranked_p = kdap_plain.interpret("columbus");
        let c = kdap_plain.explore(&ranked_p[0].net).unwrap();
        assert_eq!(a.total_aggregate, c.total_aggregate);
    }

    #[test]
    fn threaded_session_matches_serial() {
        let fx = ebiz_fixture();
        let serial = session();
        let threaded = Kdap::builder(fx.wh).threads(4).build().unwrap();
        let rs = serial.interpret("columbus lcd");
        let rt = threaded.interpret("columbus lcd");
        assert_eq!(rs.len(), rt.len());
        for (a, b) in rs.iter().zip(&rt) {
            assert_eq!(
                serial.explore(&a.net).unwrap(),
                threaded.explore(&b.net).unwrap()
            );
        }
    }

    #[test]
    fn materialize_top_warms_the_cache() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh)
            .cache_capacity(16)
            .threads(4)
            .build()
            .unwrap();
        let ranked = kdap.interpret("columbus");
        let subs = kdap.materialize_top(&ranked, 3).unwrap();
        assert_eq!(subs.len(), 3.min(ranked.len()));
        let (_, misses) = kdap.cache_stats().unwrap();
        assert_eq!(misses, subs.len() as u64);
        // Exploring a warmed interpretation hits the cache.
        kdap.explore(&ranked[0].net).unwrap();
        let (hits, _) = kdap.cache_stats().unwrap();
        assert!(hits >= 1);
    }

    #[test]
    fn explore_with_alternate_measure() {
        let kdap = session();
        let ranked = kdap.interpret("columbus");
        let revenue = kdap.explore(&ranked[0].net).unwrap();
        // COUNT-style measure: the fixture's only measure is Revenue, so
        // synthesize a quantity measure over the fact column.
        let qty = kdap
            .warehouse()
            .schema()
            .measures()
            .first()
            .cloned()
            .unwrap();
        let again = kdap.explore_with_measure(&ranked[0].net, &qty).unwrap();
        assert_eq!(revenue.total_aggregate, again.total_aggregate);
        assert_eq!(revenue.subspace_size, again.subspace_size);
    }

    #[test]
    fn optimizer_off_matches_optimizer_on() {
        let fx = ebiz_fixture();
        let on = session();
        let off = Kdap::builder(fx.wh).optimizer(false).build().unwrap();
        assert!(on.semijoin_stats().is_some());
        assert_eq!(off.semijoin_stats(), None);
        let ro = on.interpret("columbus lcd");
        let rn = off.interpret("columbus lcd");
        for (a, b) in ro.iter().zip(&rn) {
            assert_eq!(on.explore(&a.net).unwrap(), off.explore(&b.net).unwrap());
        }
        // The optimized session reused shared constraints across nets.
        let (hits, misses) = on.semijoin_stats().unwrap();
        assert!(misses > 0);
        assert!(hits + misses > 0);
    }

    #[test]
    fn session_explains_through_its_planner() {
        let kdap = session();
        let ranked = kdap.interpret("columbus lcd");
        let plan = kdap.explain(&ranked[0].net).unwrap();
        assert_eq!(
            plan.subspace_size,
            kdap.explore(&ranked[0].net).unwrap().subspace_size
        );
        // Explaining again hits the semi-join cache for every step.
        let again = kdap.explain(&ranked[0].net).unwrap();
        assert!(again.constraints.iter().all(|c| c.cache_hit));
    }

    #[test]
    fn profile_query_records_stage_tree() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh)
            .cache_capacity(16)
            .observability(true)
            .build()
            .unwrap();
        assert!(kdap.obs().is_enabled());
        let report = kdap.profile_query("columbus lcd").unwrap();
        assert!(!report.ranked.is_empty());
        assert!(report.exploration.is_some());
        let stages = report.profile.stage_names();
        assert_eq!(stages[0], "differentiate");
        assert!(stages.iter().any(|s| s.trim() == "textindex.search"));
        assert!(stages.iter().any(|s| s.trim() == "rank_star_nets"));
        assert!(stages.iter().any(|s| s.trim() == "explore"));
        assert!(stages.iter().any(|s| s.trim() == "materialize"));
        assert!(stages.iter().any(|s| s.trim() == "plan.compile"));
        assert!(stages.iter().any(|s| s.trim() == "multi_group_by"));
        // Profiling again hits the subspace cache for the same net.
        let again = kdap.profile_query("columbus lcd").unwrap();
        let hit = again
            .profile
            .roots
            .iter()
            .flat_map(|r| r.children.iter())
            .find(|n| n.name == "materialize")
            .unwrap();
        assert_eq!(hit.cache, Some(kdap_obs::CacheOutcome::Hit));
        // Metrics accumulated along the way.
        let snap = kdap.obs().metrics_snapshot();
        assert!(snap.counters["textindex.searches"] >= 2);
        assert!(snap.histograms.contains_key("query.semijoin_step_ns"));
    }

    #[test]
    fn profile_structure_is_identical_across_thread_counts() {
        let fx = ebiz_fixture();
        let serial = Kdap::builder(fx.wh)
            .observability(true)
            .threads(1)
            .build()
            .unwrap();
        let fx4 = ebiz_fixture();
        let threaded = Kdap::builder(fx4.wh)
            .observability(true)
            .threads(4)
            .build()
            .unwrap();
        let a = serial.profile_query("columbus lcd").unwrap();
        let b = threaded.profile_query("columbus lcd").unwrap();
        assert_eq!(a.profile.stage_names(), b.profile.stage_names());
        assert_eq!(a.exploration, b.exploration);
    }

    #[test]
    fn observability_off_is_bit_identical_and_profile_empty() {
        let fx = ebiz_fixture();
        let off = session();
        let on = Kdap::builder(fx.wh).observability(true).build().unwrap();
        assert!(!off.obs().is_enabled());
        let ro = off.profile_query("columbus lcd").unwrap();
        let rn = on.profile_query("columbus lcd").unwrap();
        assert!(ro.profile.is_empty());
        assert!(!rn.profile.is_empty());
        assert_eq!(ro.ranked.len(), rn.ranked.len());
        for (a, b) in ro.ranked.iter().zip(&rn.ranked) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.net.fingerprint(), b.net.fingerprint());
        }
        assert_eq!(ro.exploration, rn.exploration);
    }

    #[test]
    fn explain_explore_reports_cache_counters() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh).cache_capacity(16).build().unwrap();
        let ranked = kdap.interpret("columbus lcd");
        let (_, report) = kdap.explain_explore(&ranked[0].net).unwrap();
        let sub = report.subspace_cache.unwrap();
        assert_eq!(sub.misses, 1);
        assert!(report.semijoin_cache.is_some());
        let mapper = report.mapper_cache.unwrap();
        assert!(mapper.hits + mapper.misses > 0);
        let text = report.render();
        assert!(text.contains("subspace cache"));
        assert!(text.contains("semi-join cache"));
        assert!(text.contains("row-mapper cache"));
    }

    #[test]
    fn run_differentiate_matches_try_interpret() {
        let kdap = session();
        let direct = kdap.try_interpret("columbus lcd").unwrap();
        let resp = kdap
            .run(&QueryRequest::new(Verb::Differentiate, "columbus lcd"))
            .unwrap();
        assert_eq!(resp.n_interpretations, direct.len());
        assert_eq!(resp.ranked.len(), direct.len());
        for (r, d) in resp.ranked.iter().zip(&direct) {
            assert_eq!(r.score, d.score);
            assert_eq!(r.net.fingerprint(), d.net.fingerprint());
        }
        for (i, s) in resp.interpretations.iter().enumerate() {
            assert_eq!(s.rank, i + 1);
            assert_eq!(s.fingerprint, direct[i].net.fingerprint());
            assert_eq!(s.display, direct[i].net.display(kdap.warehouse()));
        }
        assert!(resp.exploration.is_none());
        // limit truncates the summaries but not the ranking.
        let mut req = QueryRequest::new(Verb::Differentiate, "columbus lcd");
        req.limit = 1;
        let resp = kdap.run(&req).unwrap();
        assert_eq!(resp.interpretations.len(), 1);
        assert_eq!(resp.ranked.len(), direct.len());
    }

    #[test]
    fn run_explore_matches_direct_calls_and_options_do_not_stick() {
        let kdap = session();
        let direct = kdap.try_interpret("columbus lcd").unwrap();
        let expected = kdap.explore(&direct[0].net).unwrap();
        let resp = kdap
            .run(&QueryRequest::new(Verb::Explore, "columbus lcd"))
            .unwrap();
        assert_eq!(resp.picked, Some(1));
        assert_eq!(resp.exploration.as_ref(), Some(&expected));
        // Per-request overrides do not mutate the session config.
        let mut req = QueryRequest::new(Verb::Explore, "columbus lcd");
        req.options.top_k_attrs = Some(1);
        req.options.mode = Some(crate::interest::InterestMode::Bellwether);
        let over = kdap.run(&req).unwrap();
        assert!(over
            .exploration
            .unwrap()
            .panels
            .iter()
            .all(|p| p.attrs.len() <= 1));
        assert_eq!(
            kdap.facet_config().mode,
            crate::interest::InterestMode::Surprise
        );
        // And a plain request afterwards reproduces the original result.
        let resp = kdap
            .run(&QueryRequest::new(Verb::Explore, "columbus lcd"))
            .unwrap();
        assert_eq!(resp.exploration.as_ref(), Some(&expected));
    }

    #[test]
    fn run_rejects_out_of_range_pick() {
        let kdap = session();
        let mut req = QueryRequest::new(Verb::Explore, "columbus lcd");
        req.pick = 99;
        match kdap.run(&req) {
            Err(KdapError::NoInterpretation { pick, available }) => {
                assert_eq!(pick, 99);
                assert!(available > 0);
            }
            other => panic!("expected NoInterpretation, got {other:?}"),
        }
    }

    #[test]
    fn run_profile_and_explain_carry_their_payloads() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh).observability(true).build().unwrap();
        let resp = kdap
            .run(&QueryRequest::new(Verb::Profile, "columbus lcd"))
            .unwrap();
        let profile = resp.profile.expect("profile captured");
        assert!(!profile.is_empty());
        assert!(profile.stage_names().iter().any(|s| s.trim() == "explore"));
        let resp = kdap
            .run(&QueryRequest::new(Verb::Explain, "columbus lcd"))
            .unwrap();
        assert!(resp.plan.unwrap().contains("subspace:"));
        assert!(resp.report.unwrap().contains("fused scans"));
        assert!(resp.exploration.is_some());
    }

    #[test]
    fn run_zero_timeout_times_out_without_touching_caches() {
        let fx = ebiz_fixture();
        let kdap = Kdap::builder(fx.wh)
            .cache_capacity(16)
            .observability(true)
            .build()
            .unwrap();
        let mut req = QueryRequest::new(Verb::Explore, "columbus lcd");
        req.options.timeout_ms = Some(0);
        let err = kdap.run(&req).unwrap_err();
        assert!(matches!(err, KdapError::Timeout { .. }), "{err:?}");
        assert_eq!(kdap.subspace_cache_len(), Some(0));
        assert_eq!(kdap.semijoin_cache_len(), Some(0));
        let snap = kdap.obs().metrics_snapshot();
        assert_eq!(snap.counters.get("governor.timeouts"), Some(&1));
        // The session itself remains ungoverned: a follow-up request
        // with no overrides succeeds.
        req.options.timeout_ms = None;
        assert!(kdap.run(&req).is_ok());
    }

    #[test]
    fn run_cancellable_observes_a_pre_tripped_token() {
        let kdap = session();
        let token = CancelToken::new();
        token.cancel();
        let err = kdap
            .run_cancellable(
                &QueryRequest::new(Verb::Explore, "columbus lcd"),
                Some(token.clone()),
            )
            .unwrap_err();
        assert!(matches!(err, KdapError::Cancelled { .. }), "{err:?}");
        // The per-request token does not poison the session.
        assert!(!kdap.cancel_token().is_cancelled());
        assert!(kdap
            .run(&QueryRequest::new(Verb::Explore, "columbus lcd"))
            .is_ok());
    }

    #[test]
    fn explore_with_options_overrides_without_mutation() {
        let kdap = session();
        let ranked = kdap.try_interpret("columbus lcd").unwrap();
        let base = kdap.explore(&ranked[0].net).unwrap();
        let opts = QueryOptions {
            top_k_instances: Some(1),
            ..QueryOptions::default()
        };
        let narrowed = kdap.explore_with_options(&ranked[0].net, &opts).unwrap();
        // top_k_instances bounds categorical facets (numerical facets keep
        // their merged display intervals).
        assert!(narrowed
            .panels
            .iter()
            .flat_map(|p| p.attrs.iter())
            .filter(|a| a.kind == kdap_warehouse::AttrKind::Categorical)
            .all(|a| a.entries.len() <= 1));
        assert_eq!(kdap.explore(&ranked[0].net).unwrap(), base);
    }

    #[test]
    fn config_accessors_round_trip() {
        let mut kdap = session();
        assert_eq!(kdap.rank_method(), RankMethod::Standard);
        kdap.facet_config_mut().top_k_attrs = 1;
        assert_eq!(kdap.facet_config().top_k_attrs, 1);
        kdap.set_threads(4);
        assert!(!kdap.exec_config().is_serial());
        kdap.set_threads(1);
        assert!(kdap.exec_config().is_serial());
    }
}
