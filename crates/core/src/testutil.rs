//! Test fixture: a miniature EBiz warehouse (paper Figure 2) exhibiting
//! both ambiguity kinds — the shared `LOC` table reachable via Store,
//! Buyer and Seller paths (join-path ambiguity) and "Columbus" as a city
//! and a holiday (attribute-instance ambiguity).
//!
//! Exposed (hidden from docs) so the crate's integration tests can reuse
//! the fixture; not part of the public API.
#![allow(missing_docs)]
// Test-only fixture construction: panicking on a malformed fixture is the
// desired behavior, exactly as in #[cfg(test)] code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use kdap_query::JoinIndex;
use kdap_textindex::TextIndex;
use kdap_warehouse::{AttrKind, Value, ValueType, Warehouse, WarehouseBuilder};

pub struct Fixture {
    pub wh: Warehouse,
    pub index: TextIndex,
    pub jidx: JoinIndex,
}

pub fn ebiz_fixture() -> Fixture {
    let wh = build_warehouse();
    let index = TextIndex::build(&wh);
    let jidx = JoinIndex::build(&wh);
    Fixture { wh, index, jidx }
}

fn build_warehouse() -> Warehouse {
    let mut b = WarehouseBuilder::new();
    b.table(
        "ITEM",
        &[
            ("IKey", ValueType::Int, false),
            ("TKey", ValueType::Int, false),
            ("PKey", ValueType::Int, false),
            ("Qty", ValueType::Int, false),
            ("UnitPrice", ValueType::Float, false),
        ],
    )
    .unwrap();
    b.table(
        "TRANS",
        &[
            ("TKey", ValueType::Int, false),
            ("SKey", ValueType::Int, false),
            ("BuyerKey", ValueType::Int, false),
            ("SellerKey", ValueType::Int, false),
            ("DKey", ValueType::Int, false),
        ],
    )
    .unwrap();
    b.table(
        "STORE",
        &[
            ("SKey", ValueType::Int, false),
            ("StoreName", ValueType::Str, true),
            ("LKey", ValueType::Int, false),
        ],
    )
    .unwrap();
    b.table(
        "LOC",
        &[
            ("LKey", ValueType::Int, false),
            ("City", ValueType::Str, true),
            ("State", ValueType::Str, true),
        ],
    )
    .unwrap();
    b.table(
        "ACCT",
        &[
            ("AKey", ValueType::Int, false),
            ("CKey", ValueType::Int, false),
        ],
    )
    .unwrap();
    b.table(
        "CUST",
        &[
            ("CKey", ValueType::Int, false),
            ("Name", ValueType::Str, true),
            ("LKey", ValueType::Int, false),
            ("Income", ValueType::Float, false),
        ],
    )
    .unwrap();
    b.table(
        "PROD",
        &[
            ("PKey", ValueType::Int, false),
            ("Name", ValueType::Str, true),
            ("GKey", ValueType::Int, false),
            ("ListPrice", ValueType::Float, false),
        ],
    )
    .unwrap();
    b.table(
        "PGROUP",
        &[
            ("GKey", ValueType::Int, false),
            ("GroupName", ValueType::Str, true),
        ],
    )
    .unwrap();
    b.table(
        "DATE",
        &[
            ("DKey", ValueType::Int, false),
            ("Label", ValueType::Str, false),
            ("HKey", ValueType::Int, false),
        ],
    )
    .unwrap();
    b.table(
        "HOLIDAY",
        &[
            ("HKey", ValueType::Int, false),
            ("Event", ValueType::Str, true),
        ],
    )
    .unwrap();

    b.rows(
        "LOC",
        vec![
            vec![1i64.into(), "Columbus".into(), "Ohio".into()],
            vec![2i64.into(), "Seattle".into(), "Washington".into()],
            vec![3i64.into(), "Portland".into(), "Oregon".into()],
        ],
    )
    .unwrap();
    b.rows(
        "STORE",
        vec![
            vec![1i64.into(), "Downtown Store".into(), 1i64.into()],
            vec![2i64.into(), "Mall Store".into(), 2i64.into()],
        ],
    )
    .unwrap();
    b.rows(
        "CUST",
        vec![
            vec![
                1i64.into(),
                "Alice Johnson".into(),
                2i64.into(),
                50_000.0.into(),
            ],
            vec![
                2i64.into(),
                "Bob Smith".into(),
                3i64.into(),
                80_000.0.into(),
            ],
        ],
    )
    .unwrap();
    b.rows(
        "ACCT",
        vec![
            vec![1i64.into(), 1i64.into()],
            vec![2i64.into(), 2i64.into()],
        ],
    )
    .unwrap();
    b.rows(
        "PGROUP",
        vec![
            vec![1i64.into(), "Flat Panel(LCD)".into()],
            vec![2i64.into(), "LCD Projectors".into()],
            vec![3i64.into(), "Plasma Displays".into()],
        ],
    )
    .unwrap();
    b.rows(
        "PROD",
        vec![
            vec![
                1i64.into(),
                "Slimline TV 42".into(),
                1i64.into(),
                550.0.into(),
            ],
            vec![
                2i64.into(),
                "Projector X100".into(),
                2i64.into(),
                850.0.into(),
            ],
            vec![
                3i64.into(),
                "Plasma TV 50".into(),
                3i64.into(),
                700.0.into(),
            ],
        ],
    )
    .unwrap();
    b.rows(
        "HOLIDAY",
        vec![
            vec![1i64.into(), "Columbus Day".into()],
            vec![2i64.into(), "New Year".into()],
        ],
    )
    .unwrap();
    b.rows(
        "DATE",
        vec![
            vec![1i64.into(), "2006-10-09".into(), 1i64.into()],
            vec![2i64.into(), "2006-01-01".into(), 2i64.into()],
            vec![3i64.into(), "2006-05-05".into(), Value::Null],
        ],
    )
    .unwrap();
    b.rows(
        "TRANS",
        vec![
            // store Columbus, buyer Alice(Seattle), seller Bob(Portland),
            // Columbus Day
            vec![
                1i64.into(),
                1i64.into(),
                1i64.into(),
                2i64.into(),
                1i64.into(),
            ],
            // store Seattle, buyer Bob, seller Alice, New Year
            vec![
                2i64.into(),
                2i64.into(),
                2i64.into(),
                1i64.into(),
                2i64.into(),
            ],
            // store Columbus, buyer Alice, seller Alice, no holiday
            vec![
                3i64.into(),
                1i64.into(),
                1i64.into(),
                1i64.into(),
                3i64.into(),
            ],
        ],
    )
    .unwrap();
    b.rows(
        "ITEM",
        vec![
            vec![
                1i64.into(),
                1i64.into(),
                1i64.into(),
                2i64.into(),
                500.0.into(),
            ],
            vec![
                2i64.into(),
                1i64.into(),
                2i64.into(),
                1i64.into(),
                800.0.into(),
            ],
            vec![
                3i64.into(),
                2i64.into(),
                3i64.into(),
                1i64.into(),
                700.0.into(),
            ],
            vec![
                4i64.into(),
                2i64.into(),
                1i64.into(),
                3i64.into(),
                450.0.into(),
            ],
            vec![
                5i64.into(),
                3i64.into(),
                2i64.into(),
                1i64.into(),
                900.0.into(),
            ],
            vec![
                6i64.into(),
                3i64.into(),
                3i64.into(),
                2i64.into(),
                650.0.into(),
            ],
        ],
    )
    .unwrap();

    b.edge("ITEM.TKey", "TRANS.TKey", None, None).unwrap();
    b.edge("ITEM.PKey", "PROD.PKey", None, Some("Product"))
        .unwrap();
    b.edge("TRANS.SKey", "STORE.SKey", None, Some("Store"))
        .unwrap();
    b.edge(
        "TRANS.BuyerKey",
        "ACCT.AKey",
        Some("Buyer"),
        Some("Customer"),
    )
    .unwrap();
    b.edge(
        "TRANS.SellerKey",
        "ACCT.AKey",
        Some("Seller"),
        Some("Customer"),
    )
    .unwrap();
    b.edge("TRANS.DKey", "DATE.DKey", None, Some("Time"))
        .unwrap();
    b.edge("STORE.LKey", "LOC.LKey", None, None).unwrap();
    b.edge("ACCT.CKey", "CUST.CKey", None, None).unwrap();
    b.edge("CUST.LKey", "LOC.LKey", None, None).unwrap();
    b.edge("PROD.GKey", "PGROUP.GKey", None, None).unwrap();
    b.edge("DATE.HKey", "HOLIDAY.HKey", None, None).unwrap();

    b.dimension(
        "Product",
        &["PROD", "PGROUP"],
        vec![("ProductGroup", vec!["PGROUP.GroupName", "PROD.Name"])],
        vec![
            ("PGROUP.GroupName", AttrKind::Categorical),
            ("PROD.Name", AttrKind::Categorical),
            ("PROD.ListPrice", AttrKind::Numerical),
        ],
    )
    .unwrap();
    b.dimension(
        "Store",
        &["STORE", "LOC"],
        vec![("StoreGeo", vec!["LOC.State", "LOC.City"])],
        vec![
            ("LOC.City", AttrKind::Categorical),
            ("LOC.State", AttrKind::Categorical),
        ],
    )
    .unwrap();
    b.dimension(
        "Customer",
        &["ACCT", "CUST", "LOC"],
        vec![("CustGeo", vec!["LOC.State", "LOC.City"])],
        vec![
            ("CUST.Name", AttrKind::Categorical),
            ("CUST.Income", AttrKind::Numerical),
        ],
    )
    .unwrap();
    b.dimension(
        "Time",
        &["DATE", "HOLIDAY"],
        vec![],
        vec![("HOLIDAY.Event", AttrKind::Categorical)],
    )
    .unwrap();
    b.fact("ITEM").unwrap();
    b.measure_product("Revenue", "ITEM.UnitPrice", "ITEM.Qty")
        .unwrap();
    b.finish().unwrap()
}
