//! The session-level planner: compiles star nets to logical plans, lowers
//! them to physical plans with column statistics, and owns the shared
//! [`SemijoinCache`] that deduplicates constraint evaluation across the
//! whole candidate set.

use kdap_obs::{CacheCounters, Obs};
use kdap_query::{optimize, LogicalPlan, PhysicalPlan, PlannerConfig, SemijoinCache};
use kdap_warehouse::{StatsCatalog, Warehouse};

use crate::interpret::StarNet;

/// Compiles and optimizes star-net plans for one session.
///
/// A planner bundles the optimizer switches, the lazily computed column
/// statistics, and (when caching is enabled) the session's semi-join
/// cache. It is `Sync`: one planner serves every worker thread.
#[derive(Debug, Default)]
pub struct Planner {
    cfg: PlannerConfig,
    stats: StatsCatalog,
    cache: Option<SemijoinCache>,
    obs: Obs,
}

impl Planner {
    /// The full optimizer: selectivity reordering, fact-local fusion, and
    /// a shared semi-join cache.
    pub fn optimized() -> Self {
        Planner {
            cfg: PlannerConfig::default(),
            stats: StatsCatalog::new(),
            cache: Some(SemijoinCache::new()),
            obs: Obs::disabled(),
        }
    }

    /// No optimization at all: constraints evaluate one by one in net
    /// order with no statistics and no cache — exactly the unoptimized
    /// per-net evaluation.
    pub fn naive() -> Self {
        Planner {
            cfg: PlannerConfig::naive(),
            stats: StatsCatalog::new(),
            cache: None,
            obs: Obs::disabled(),
        }
    }

    /// A planner with explicit optimizer switches and cache choice.
    pub fn new(cfg: PlannerConfig, cached: bool) -> Self {
        Planner {
            cfg,
            stats: StatsCatalog::new(),
            cache: cached.then(SemijoinCache::new),
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; compile/optimize timings flow
    /// into it from then on.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The optimizer switches in effect.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Compiles a star net and lowers it to a physical plan.
    pub fn plan(&self, wh: &Warehouse, net: &StarNet) -> PhysicalPlan {
        let t = self.obs.timer();
        let logical = net.compile();
        let compile_ns = t.stop();
        if self.obs.is_enabled() {
            self.obs.record_ns("planner.compile_ns", compile_ns);
            self.obs.leaf(
                "plan.compile",
                kdap_obs::LeafData {
                    wall_ns: compile_ns,
                    rows_out: Some(logical.len() as u64),
                    ..kdap_obs::LeafData::default()
                },
            );
        }
        self.lower(wh, &logical)
    }

    /// Lowers a logical plan to a physical plan. Statistics are consulted
    /// (and lazily computed) only when reordering is enabled.
    pub fn lower(&self, wh: &Warehouse, logical: &LogicalPlan) -> PhysicalPlan {
        let origin = wh.schema().fact_table();
        let stats = self.cfg.reorder.then_some(&self.stats);
        let t = self.obs.timer();
        let plan = optimize(wh, origin, logical, &self.cfg, stats);
        let optimize_ns = t.stop();
        if self.obs.is_enabled() {
            self.obs.record_ns("planner.optimize_ns", optimize_ns);
            self.obs.leaf(
                "plan.optimize",
                kdap_obs::LeafData {
                    wall_ns: optimize_ns,
                    rows_in: Some(logical.len() as u64),
                    rows_out: Some(plan.steps.len() as u64),
                    notes: vec![
                        ("reorder".into(), self.cfg.reorder.to_string()),
                        ("fuse".into(), self.cfg.fuse_fact_local.to_string()),
                    ],
                    ..kdap_obs::LeafData::default()
                },
            );
        }
        plan
    }

    /// The session's semi-join cache, when caching is enabled.
    pub fn cache(&self) -> Option<&SemijoinCache> {
        self.cache.as_ref()
    }

    /// `(hits, misses)` of the semi-join cache, when caching is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Hit/miss/eviction counters of the semi-join cache, when caching is
    /// enabled.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::testutil::ebiz_fixture;

    #[test]
    fn naive_planner_preserves_net_order() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let planner = Planner::naive();
        for net in &nets {
            let plan = planner.plan(&fx.wh, net);
            assert_eq!(plan.steps.len(), net.n_groups());
            for (step, c) in plan.steps.iter().zip(&net.constraints) {
                assert_eq!(step.key(), vec![c.fingerprint()]);
            }
        }
        assert!(planner.cache().is_none());
        assert!(planner.cache_stats().is_none());
    }

    #[test]
    fn optimized_planner_computes_stats_lazily() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let planner = Planner::optimized();
        let plan = planner.plan(&fx.wh, &nets[0]);
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].est_fraction() <= 1.0);
        assert!(planner.cache().is_some());
        assert_eq!(planner.cache_stats(), Some((0, 0)));
    }
}
