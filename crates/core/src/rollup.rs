//! Roll-up partitioning: computing the background space RUP(DS′)
//! (paper §5.2.1).
//!
//! For each *hitted* dimension, the subspace is enlarged by generalizing
//! the hit-group constraint one hierarchy level up: "Mountain Bikes"
//! (subcategory) rolls up to its category "Bikes"; "California" (state)
//! rolls up to its country. When the hit attribute sits at the top of its
//! hierarchy — or is not a hierarchy level at all — the constraint is
//! dropped entirely, i.e. the dimension rolls up to ALL.

use std::collections::BTreeSet;

use kdap_query::{
    execute_plan, par_map, paths_between, ExecConfig, JoinIndex, JoinPath, LogicalPlan, Selection,
};
use kdap_warehouse::{ColRef, Warehouse};

use crate::error::KdapError;
use crate::interpret::{Constraint, StarNet};
use crate::plan::Planner;
use crate::subspace::Subspace;

/// The rolled-up form of one constraint.
#[derive(Debug, Clone)]
pub enum Rollup {
    /// Replace the constraint by a selection at the parent hierarchy
    /// level (e.g. Subcategory ∈ {Mountain Bikes} → Category ∈ {Bikes}).
    Parent(Selection),
    /// No level above: the constraint is removed (roll up to ALL).
    Drop,
}

/// Computes the roll-up of `c` using the hierarchies of its dimension.
pub fn rollup_constraint(wh: &Warehouse, jidx: &JoinIndex, c: &Constraint) -> Rollup {
    let schema = wh.schema();
    let Some(dim_id) = c.path.dimension(schema) else {
        // Fact-table hits and untagged paths have no dimension to roll
        // up along.
        return Rollup::Drop;
    };
    if c.group.numeric.is_some() {
        // Numeric-range constraints have no categorical hierarchy to
        // climb; roll up to ALL.
        return Rollup::Drop;
    }
    let dim = schema.dimension(dim_id);
    let attr = c.group.attr;
    let Some(hierarchy) = dim.hierarchy_containing(attr) else {
        return Rollup::Drop;
    };
    let Some(parent_attr) = hierarchy.parent_level(attr) else {
        return Rollup::Drop;
    };
    match parent_codes(wh, jidx, attr, &c.group.codes(), parent_attr) {
        Some((sub_path, codes)) if !codes.is_empty() => Rollup::Parent(Selection::by_codes(
            c.path.extend(&sub_path),
            parent_attr,
            codes,
        )),
        _ => Rollup::Drop,
    }
}

/// Maps the selected instances of `attr` to the distinct values of the
/// parent-level attribute, returning the connecting sub-path (empty when
/// both levels live in one table) and the parent codes.
fn parent_codes(
    wh: &Warehouse,
    jidx: &JoinIndex,
    attr: ColRef,
    codes: &[u32],
    parent_attr: ColRef,
) -> Option<(JoinPath, Vec<u32>)> {
    let selected_rows = wh.column(attr).rows_with_codes(codes);
    let parent_col = wh.column(parent_attr);
    if parent_attr.table == attr.table {
        let set: BTreeSet<u32> = selected_rows
            .iter()
            .filter_map(|&r| parent_col.get_code(r))
            .collect();
        return Some((JoinPath::empty(), set.into_iter().collect()));
    }
    // Snowflake: levels in different tables; walk child → parent edges.
    let paths = paths_between(wh.schema(), attr.table, parent_attr.table, 4);
    let sub_path = paths.into_iter().next()?;
    let mapper = jidx.row_mapper(wh, attr.table, &sub_path);
    let set: BTreeSet<u32> = selected_rows
        .iter()
        .filter_map(|&r| mapper[r].and_then(|pr| parent_col.get_code(pr as usize)))
        .collect();
    Some((sub_path, set.into_iter().collect()))
}

/// Materializes one roll-up space per hitted constraint: the star net with
/// that constraint generalized (others unchanged). When the net has no
/// roll-uppable constraint at all, the full dataspace serves as the single
/// background space.
pub fn rollup_spaces(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Vec<Subspace> {
    rollup_spaces_with(wh, jidx, net, &ExecConfig::serial())
}

/// Builds the logical plan of the net with constraint `i` generalized:
/// the other constraints' selections unchanged, constraint `i` replaced
/// by its parent-level selection (or removed when it rolls up to ALL).
fn rolled_logical(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet, i: usize) -> LogicalPlan {
    let rolled = rollup_constraint(wh, jidx, &net.constraints[i]);
    let mut selections: Vec<Selection> = Vec::with_capacity(net.constraints.len());
    for (j, other) in net.constraints.iter().enumerate() {
        if j != i {
            selections.push(other.selection());
            continue;
        }
        match &rolled {
            Rollup::Drop => {} // constraint removed: dimension rolls up to ALL
            Rollup::Parent(sel) => selections.push(sel.clone()),
        }
    }
    LogicalPlan::from_selections(selections)
}

/// Like [`rollup_spaces`], but materializes the per-constraint roll-up
/// spaces across worker threads. The spaces are independent of each other,
/// so output order (one space per constraint, in constraint order) and
/// contents are identical for every thread count.
pub fn rollup_spaces_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    exec: &ExecConfig,
) -> Vec<Subspace> {
    // Documented panic: roll-ups of interpreter-produced nets are
    // well-formed, and this convenience entry point is not meant for
    // governed configs (those call `try_rollup_spaces_planned`).
    #[allow(clippy::expect_used)]
    try_rollup_spaces_planned(wh, jidx, net, &Planner::naive(), exec)
        .expect("roll-up selections evaluate on the fact table")
}

/// Fallible, planner-driven roll-up materialization: each rolled plan is
/// lowered by `planner` (shared parent-level constraints hit the
/// planner's semi-join cache) and the per-constraint spaces evaluate
/// across `exec`'s worker threads.
pub fn try_rollup_spaces_planned(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    planner: &Planner,
    exec: &ExecConfig,
) -> Result<Vec<Subspace>, KdapError> {
    let fact = wh.schema().fact_table();
    let indices: Vec<usize> = (0..net.constraints.len()).collect();
    // Each rolled plan executes serially inside its par_map worker —
    // without the outer obs handle, matching the coordinator-side-only
    // recording contract — but the governed context (deadline / cancel /
    // budget) must flow in or the plan steps would run unchecked.
    let mut inner = ExecConfig::serial();
    if let Some(ctx) = &exec.govern {
        inner = inner.with_govern(ctx.clone());
    }
    let results = par_map(exec, &indices, |_, &i| {
        let plan = planner.lower(wh, &rolled_logical(wh, jidx, net, i));
        execute_plan(wh, jidx, fact, &plan, planner.cache(), &inner)
    });
    let mut spaces = Vec::with_capacity(results.len());
    for rows in results {
        spaces.push(Subspace { rows: rows? });
    }
    if spaces.is_empty() {
        spaces.push(Subspace::full(wh));
    }
    Ok(spaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::subspace::materialize;
    use crate::testutil::ebiz_fixture;

    fn net_containing(fx: &crate::testutil::Fixture, query: &[&str], needle: &str) -> StarNet {
        generate_star_nets(&fx.wh, &fx.index, query, &GenConfig::default())
            .into_iter()
            .find(|n| n.display(&fx.wh).contains(needle))
            .expect("interpretation present")
    }

    #[test]
    fn city_rolls_up_to_state() {
        let fx = ebiz_fixture();
        let net = net_containing(&fx, &["columbus"], "STORE → LOC");
        let c = &net.constraints[0];
        match rollup_constraint(&fx.wh, &fx.jidx, c) {
            Rollup::Parent(sel) => {
                assert_eq!(sel.attr, fx.wh.col_ref("LOC", "State").unwrap());
                let dict = fx.wh.column(sel.attr).dict().unwrap();
                let kdap_query::Predicate::Codes(codes) = &sel.predicate else {
                    panic!("expected code selection");
                };
                let values: Vec<&str> = codes
                    .iter()
                    .map(|&c| dict.resolve(c).unwrap().as_ref())
                    .collect();
                assert_eq!(values, vec!["Ohio"]);
                // Path got one hop longer? No: State lives in the same
                // LOC table, so the path is unchanged.
                assert_eq!(sel.path, c.path);
            }
            Rollup::Drop => panic!("expected parent rollup"),
        }
    }

    #[test]
    fn product_name_rolls_up_to_group_across_tables() {
        let fx = ebiz_fixture();
        let net = net_containing(&fx, &["plasma", "tv"], "PROD.Name");
        let c = net
            .constraints
            .iter()
            .find(|c| c.group.attr == fx.wh.col_ref("PROD", "Name").unwrap())
            .unwrap();
        match rollup_constraint(&fx.wh, &fx.jidx, c) {
            Rollup::Parent(sel) => {
                assert_eq!(sel.attr, fx.wh.col_ref("PGROUP", "GroupName").unwrap());
                assert_eq!(sel.path.len(), c.path.len() + 1, "one extra hop");
            }
            Rollup::Drop => panic!("expected parent rollup"),
        }
    }

    #[test]
    fn top_level_hit_rolls_up_to_all() {
        let fx = ebiz_fixture();
        // PGROUP.GroupName is the top level of the Product hierarchy.
        let net = net_containing(&fx, &["lcd"], "PGROUP");
        let c = &net.constraints[0];
        assert!(matches!(
            rollup_constraint(&fx.wh, &fx.jidx, c),
            Rollup::Drop
        ));
    }

    #[test]
    fn non_level_attribute_rolls_up_to_all() {
        let fx = ebiz_fixture();
        // Customer names are not part of any hierarchy.
        let net = net_containing(&fx, &["alice"], "CUST.Name");
        let c = &net.constraints[0];
        assert!(matches!(
            rollup_constraint(&fx.wh, &fx.jidx, c),
            Rollup::Drop
        ));
    }

    #[test]
    fn rollup_space_contains_the_subspace() {
        let fx = ebiz_fixture();
        let net = net_containing(&fx, &["columbus"], "STORE → LOC");
        let sub = materialize(&fx.wh, &fx.jidx, &net);
        let spaces = rollup_spaces(&fx.wh, &fx.jidx, &net);
        assert_eq!(spaces.len(), 1);
        for row in sub.rows.iter() {
            assert!(spaces[0].rows.contains(row), "RUP ⊇ DS′");
        }
        // In the fixture, Columbus is the only Ohio city, so the rollup
        // space equals the subspace here — still a valid superset.
        assert!(spaces[0].len() >= sub.len());
    }

    #[test]
    fn dropped_constraint_yields_full_space() {
        let fx = ebiz_fixture();
        let net = net_containing(&fx, &["lcd"], "PGROUP");
        let spaces = rollup_spaces(&fx.wh, &fx.jidx, &net);
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].len(), fx.wh.fact_rows());
    }

    #[test]
    fn two_hitted_dimensions_give_two_rollup_spaces() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .unwrap();
        let spaces = rollup_spaces(&fx.wh, &fx.jidx, net);
        assert_eq!(spaces.len(), 2);
    }

    #[test]
    fn empty_net_falls_back_to_full_dataspace() {
        let fx = ebiz_fixture();
        let net = StarNet {
            constraints: vec![],
        };
        let spaces = rollup_spaces(&fx.wh, &fx.jidx, &net);
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].len(), fx.wh.fact_rows());
    }
}
