//! Candidate star-net generation (paper §4.2, Algorithm 1).
//!
//! A *star seed* picks one hit group per keyword (merged phrase groups
//! cover several keywords at once); a *star net* additionally fixes one
//! join path from each group's table to the fact table. Unlike
//! Discover-style candidate networks, every star net joins **through the
//! fact table**: dimension hit groups slice the subspace, fact-table hit
//! groups select fact points inside it.
//!
//! Two KDAP-specific rules from the paper are embodied here:
//! * *aliasing*: the same table reached via different join paths (buyer
//!   city vs. store city) yields distinct constraints, because a
//!   constraint is a `(group, path)` pair;
//! * *same-dimension merging*: two hit groups whose paths enter the same
//!   dimension produce intersection semantics on the fact table, and
//!   structurally identical star nets are deduplicated by canonical key.

use kdap_query::{
    fact_paths_by_table, ExecConfig, Fingerprint, JoinPath, LogicalPlan, QueryError, Selection,
    MAX_PATH_LEN,
};
use kdap_textindex::TextIndex;
use kdap_warehouse::{DimId, Warehouse};

use crate::hit::{build_hit_sets, HitConfig, HitGroup, HitSet};
use crate::numeric_hits::{numeric_groups, NumericConfig};
use crate::phrase::merged_group_pool;

/// One hit group applied along one join path — a star-net constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// The hit group being applied.
    pub group: HitGroup,
    /// The join path from the fact table to the group's table.
    pub path: JoinPath,
}

impl Constraint {
    /// The dimension this constraint slices (None for fact-table groups).
    pub fn dimension(&self, wh: &Warehouse) -> Option<DimId> {
        self.path.dimension(wh.schema())
    }

    /// The selection this constraint denotes on the fact table: hits OR
    /// within the group (dictionary codes), numeric groups select by
    /// value range (§7 future-work extension).
    pub fn selection(&self) -> Selection {
        match self.group.numeric {
            Some((lo, hi)) => Selection::by_range(self.path.clone(), self.group.attr, lo, hi),
            None => Selection::by_codes(self.path.clone(), self.group.attr, self.group.codes()),
        }
    }

    /// Canonical `(group, path)` identity of this constraint — equal
    /// fingerprints denote the same fact bitmap, across all nets.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of(&self.selection())
    }
}

/// Canonical form of a star net: sorted constraint fingerprints.
type CanonicalKey = Vec<Fingerprint>;

/// A candidate interpretation: a join expression through the fact table.
#[derive(Debug, Clone)]
pub struct StarNet {
    /// The net's constraints; conjunctive on the fact table.
    pub constraints: Vec<Constraint>,
}

impl StarNet {
    /// `|SN|`: the number of hit groups in the net.
    pub fn n_groups(&self) -> usize {
        self.constraints.len()
    }

    /// A stable, order-independent fingerprint of the net's constraints
    /// (used for deduplication and subspace caching).
    pub fn fingerprint(&self) -> String {
        format!("{:?}", self.canonical_key())
    }

    /// Canonical identity used for deduplication: the multiset of
    /// constraint fingerprints.
    fn canonical_key(&self) -> CanonicalKey {
        self.compile().canonical_key()
    }

    /// Compiles the net into a [`LogicalPlan`]: one node per constraint,
    /// keyed by canonical fingerprint, conjunctive on the fact table.
    pub fn compile(&self) -> LogicalPlan {
        LogicalPlan::from_selections(self.constraints.iter().map(|c| c.selection()).collect())
    }

    /// Human-readable rendering, e.g.
    /// `LOC/City/{Columbus} via ITEM → TRANS → STORE → LOC`.
    pub fn display(&self, wh: &Warehouse) -> String {
        let fact = wh.schema().fact_table();
        self.constraints
            .iter()
            .map(|c| {
                let values: Vec<String> = c
                    .group
                    .hits
                    .iter()
                    .take(3)
                    .map(|h| h.value.to_string())
                    .collect();
                let ellipsis = if c.group.hits.len() > 3 { ", …" } else { "" };
                format!(
                    "{}/{{{}{}}} via {}",
                    wh.col_name(c.group.attr),
                    values.join(" OR "),
                    ellipsis,
                    c.path.display(wh, fact)
                )
            })
            .collect::<Vec<_>>()
            .join("  ⋈  ")
    }
}

/// Generation limits and knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Hit-set construction limits and text-engine options.
    pub hit: HitConfig,
    /// Maximum join-path length explored in the schema graph.
    pub max_path_len: usize,
    /// Hard cap on produced star nets (guards exponential blowup; the
    /// ranked list shown to a user is far shorter anyway).
    pub max_star_nets: usize,
    /// Numeric/measure hit candidates (§7 future-work extension,
    /// disabled by default).
    pub numeric: NumericConfig,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            hit: HitConfig::default(),
            max_path_len: MAX_PATH_LEN,
            max_star_nets: 5_000,
            numeric: NumericConfig::default(),
        }
    }
}

/// Runs the full differentiate-phase generation: hit sets → phrase merge →
/// star seeds (exact keyword covers) → star nets (join-path products),
/// deduplicated. Scores are assigned separately by [`crate::rank`].
pub fn generate_star_nets(
    wh: &Warehouse,
    index: &TextIndex,
    keywords: &[&str],
    cfg: &GenConfig,
) -> Vec<StarNet> {
    // A serial ungoverned config cannot breach any limit.
    try_generate_star_nets(wh, index, keywords, cfg, &ExecConfig::serial()).unwrap_or_default()
}

/// Governable [`generate_star_nets`]: polls `exec`'s deadline and
/// cancellation token once per generated net, so a runaway join-path
/// product aborts mid-differentiate instead of running to the cap.
pub fn try_generate_star_nets(
    wh: &Warehouse,
    index: &TextIndex,
    keywords: &[&str],
    cfg: &GenConfig,
    exec: &ExecConfig,
) -> Result<Vec<StarNet>, QueryError> {
    let hit_sets = build_hit_sets(index, keywords, &cfg.hit);
    try_generate_from_hit_sets(wh, index, &hit_sets, cfg, exec)
}

/// Same as [`generate_star_nets`] but starting from prebuilt hit sets.
pub fn generate_from_hit_sets(
    wh: &Warehouse,
    index: &TextIndex,
    hit_sets: &[HitSet],
    cfg: &GenConfig,
) -> Vec<StarNet> {
    // A serial ungoverned config cannot breach any limit.
    try_generate_from_hit_sets(wh, index, hit_sets, cfg, &ExecConfig::serial()).unwrap_or_default()
}

/// Governable [`generate_from_hit_sets`].
pub fn try_generate_from_hit_sets(
    wh: &Warehouse,
    index: &TextIndex,
    hit_sets: &[HitSet],
    cfg: &GenConfig,
    exec: &ExecConfig,
) -> Result<Vec<StarNet>, QueryError> {
    let mut pool = merged_group_pool(index, hit_sets);
    if cfg.numeric.enabled {
        for (ki, hs) in hit_sets.iter().enumerate() {
            pool.extend(numeric_groups(wh, &hs.keyword, ki, &cfg.numeric));
        }
    }
    let pool = pool;

    // Keywords with no hits at all cannot constrain anything; they are
    // ignored rather than failing the whole query.
    let mut coverable: Vec<usize> = pool.iter().flat_map(|g| g.keywords.clone()).collect();
    coverable.sort_unstable();
    coverable.dedup();
    if coverable.is_empty() {
        return Ok(Vec::new());
    }

    // Enumerate star seeds: exact covers of the coverable keywords.
    let mut seeds: Vec<Vec<&HitGroup>> = Vec::new();
    let mut chosen: Vec<&HitGroup> = Vec::new();
    cover(&pool, &coverable, 0, &mut chosen, &mut seeds);

    // Expand each seed into star nets via the join-path product.
    let fact_paths = fact_paths_by_table(wh.schema(), cfg.max_path_len);
    let mut nets: Vec<StarNet> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    'seeds: for seed in seeds {
        let path_options: Option<Vec<&Vec<JoinPath>>> =
            seed.iter().map(|g| fact_paths.get(&g.attr.table)).collect();
        // A group on a table with no join path to the fact table cannot
        // form a star net (the net must go through the fact table).
        let Some(path_options) = path_options else {
            continue;
        };
        let mut indices = vec![0usize; seed.len()];
        loop {
            // One governance poll per candidate net: the join-path
            // product is where differentiate-phase time concentrates.
            exec.check_at("generate_star_nets", nets.len() as u64, 0)?;
            let net = StarNet {
                constraints: seed
                    .iter()
                    .enumerate()
                    .zip(&indices)
                    .map(|((gi, g), &pi)| Constraint {
                        group: (*g).clone(),
                        path: path_options[gi][pi].clone(),
                    })
                    .collect(),
            };
            if seen.insert(net.canonical_key()) {
                nets.push(net);
                if nets.len() >= cfg.max_star_nets {
                    break 'seeds;
                }
            }
            // Odometer increment over path choices.
            let mut i = 0;
            loop {
                if i == indices.len() {
                    break;
                }
                indices[i] += 1;
                if indices[i] < path_options[i].len() {
                    break;
                }
                indices[i] = 0;
                i += 1;
            }
            if i == indices.len() {
                break;
            }
        }
    }
    Ok(nets)
}

/// Backtracking exact cover: pick a group covering the first uncovered
/// keyword; groups may cover several consecutive keywords (phrases).
fn cover<'a>(
    pool: &'a [HitGroup],
    coverable: &[usize],
    next: usize,
    chosen: &mut Vec<&'a HitGroup>,
    out: &mut Vec<Vec<&'a HitGroup>>,
) {
    if next == coverable.len() {
        out.push(chosen.clone());
        return;
    }
    let kw = coverable[next];
    for g in pool {
        // The group must cover `kw` and must not touch already-covered or
        // non-coverable keywords out of order.
        if !g.keywords.contains(&kw) {
            continue;
        }
        if g.keywords.iter().any(|k| coverable[..next].contains(k)) {
            continue;
        }
        let advance = g
            .keywords
            .iter()
            .filter(|k| coverable[next..].contains(k))
            .count();
        chosen.push(g);
        cover(pool, coverable, next + advance, chosen, out);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ebiz_fixture;

    #[test]
    fn columbus_lcd_produces_expected_interpretation_count() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        // "columbus": city (3 paths: store/buyer/seller) + holiday (1 path)
        //   → 4 constraint options.
        // "lcd": product group name (1 path) → 1 option.
        // Product of options: 4 × 1 = 4 star nets.
        assert_eq!(nets.len(), 4);
        for net in &nets {
            assert_eq!(net.n_groups(), 2);
        }
    }

    #[test]
    fn aliasing_distinguishes_buyer_and_seller_paths() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        // City via store, buyer, seller + holiday = 4 interpretations.
        assert_eq!(nets.len(), 4);
        let rendered: Vec<String> = nets.iter().map(|n| n.display(&fx.wh)).collect();
        assert!(rendered.iter().any(|s| s.contains("(Buyer)")));
        assert!(rendered.iter().any(|s| s.contains("(Seller)")));
        assert!(rendered.iter().any(|s| s.contains("STORE")));
        assert!(rendered.iter().any(|s| s.contains("HOLIDAY")));
    }

    #[test]
    fn unmatched_keywords_are_ignored() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "zzzunknown"],
            &GenConfig::default(),
        );
        assert_eq!(nets.len(), 4, "same as plain columbus");
        let none = generate_star_nets(&fx.wh, &fx.index, &["zzzunknown"], &GenConfig::default());
        assert!(none.is_empty());
    }

    #[test]
    fn max_star_nets_caps_output() {
        let fx = ebiz_fixture();
        let cfg = GenConfig {
            max_star_nets: 2,
            ..GenConfig::default()
        };
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus", "lcd"], &cfg);
        assert_eq!(nets.len(), 2);
    }

    #[test]
    fn star_nets_are_deduplicated() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let mut keys: Vec<_> = nets.iter().map(|n| n.canonical_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), nets.len());
    }
}
