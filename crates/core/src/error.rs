//! Unified error type for the KDAP core layer.

use std::fmt;

use kdap_query::QueryError;
use kdap_warehouse::WarehouseError;

/// Errors surfaced by session construction and core-layer operations,
/// wrapping the storage- and query-layer error types.
#[derive(Debug)]
pub enum KdapError {
    /// An error from the warehouse layer.
    Warehouse(WarehouseError),
    /// An error from the query executor.
    Query(QueryError),
    /// The warehouse declares no measure to aggregate.
    NoMeasure,
    /// The requested measure is not declared by the warehouse.
    UnknownMeasure(String),
    /// The query ran past its deadline and was aborted cooperatively.
    Timeout {
        /// Pipeline stage that observed the breach (an obs span name).
        stage: &'static str,
        /// Wall-clock time spent before the deadline check fired.
        elapsed_ms: u64,
    },
    /// The query's cancellation token was triggered (e.g. REPL Ctrl-C).
    Cancelled {
        /// Pipeline stage that observed the cancellation.
        stage: &'static str,
    },
    /// The query charged more bytes against its memory budget than allowed.
    BudgetExceeded {
        /// Pipeline stage whose allocation breached the budget.
        stage: &'static str,
        /// The configured budget in bytes.
        budget_bytes: u64,
        /// Cumulative bytes charged when the breach was detected.
        charged_bytes: u64,
    },
    /// The keyword input contains no usable keywords (empty, or nothing
    /// but stopwords/punctuation).
    EmptyQuery,
    /// A request asked for interpretation `pick` but the ranking holds
    /// fewer entries (or none at all).
    NoInterpretation {
        /// The 1-based interpretation index the request asked for.
        pick: usize,
        /// How many interpretations the ranking actually produced.
        available: usize,
    },
}

impl fmt::Display for KdapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdapError::Warehouse(e) => write!(f, "warehouse error: {e}"),
            KdapError::Query(e) => write!(f, "query error: {e}"),
            KdapError::NoMeasure => write!(f, "warehouse declares no measure"),
            KdapError::UnknownMeasure(name) => write!(f, "unknown measure {name:?}"),
            KdapError::Timeout { stage, elapsed_ms } => {
                write!(f, "query timed out after {elapsed_ms} ms in `{stage}`")
            }
            KdapError::Cancelled { stage } => write!(f, "query cancelled in `{stage}`"),
            KdapError::BudgetExceeded {
                stage,
                budget_bytes,
                charged_bytes,
            } => write!(
                f,
                "query exceeded its memory budget in `{stage}` \
                 ({charged_bytes} bytes charged, {budget_bytes} allowed)"
            ),
            KdapError::EmptyQuery => {
                write!(f, "query contains no usable keywords")
            }
            KdapError::NoInterpretation { pick, available } => {
                if *available == 0 {
                    write!(f, "no interpretations found for the query")
                } else {
                    write!(
                        f,
                        "interpretation {pick} requested but only {available} available"
                    )
                }
            }
        }
    }
}

impl std::error::Error for KdapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KdapError::Warehouse(e) => Some(e),
            KdapError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WarehouseError> for KdapError {
    fn from(e: WarehouseError) -> Self {
        KdapError::Warehouse(e)
    }
}

impl From<QueryError> for KdapError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Governed { breach, stage, .. } => match breach {
                kdap_query::Breach::Timeout { elapsed_ms } => {
                    KdapError::Timeout { stage, elapsed_ms }
                }
                kdap_query::Breach::Cancelled => KdapError::Cancelled { stage },
                kdap_query::Breach::Budget {
                    budget_bytes,
                    charged_bytes,
                } => KdapError::BudgetExceeded {
                    stage,
                    budget_bytes,
                    charged_bytes,
                },
            },
            other => KdapError::Query(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_lower_layers() {
        let e: KdapError = QueryError::InvalidBucketCount.into();
        assert!(matches!(e, KdapError::Query(_)));
        assert!(e.to_string().contains("query error"));
        let e: KdapError = WarehouseError::NoFactTable.into();
        assert!(matches!(e, KdapError::Warehouse(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(KdapError::UnknownMeasure("X".into())
            .to_string()
            .contains("\"X\""));
    }
}
