//! Unified error type for the KDAP core layer.

use std::fmt;

use kdap_query::QueryError;
use kdap_warehouse::WarehouseError;

/// Errors surfaced by session construction and core-layer operations,
/// wrapping the storage- and query-layer error types.
#[derive(Debug)]
pub enum KdapError {
    /// An error from the warehouse layer.
    Warehouse(WarehouseError),
    /// An error from the query executor.
    Query(QueryError),
    /// The warehouse declares no measure to aggregate.
    NoMeasure,
    /// The requested measure is not declared by the warehouse.
    UnknownMeasure(String),
}

impl fmt::Display for KdapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdapError::Warehouse(e) => write!(f, "warehouse error: {e}"),
            KdapError::Query(e) => write!(f, "query error: {e}"),
            KdapError::NoMeasure => write!(f, "warehouse declares no measure"),
            KdapError::UnknownMeasure(name) => write!(f, "unknown measure {name:?}"),
        }
    }
}

impl std::error::Error for KdapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KdapError::Warehouse(e) => Some(e),
            KdapError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WarehouseError> for KdapError {
    fn from(e: WarehouseError) -> Self {
        KdapError::Warehouse(e)
    }
}

impl From<QueryError> for KdapError {
    fn from(e: QueryError) -> Self {
        KdapError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_lower_layers() {
        let e: KdapError = QueryError::InvalidBucketCount.into();
        assert!(matches!(e, KdapError::Query(_)));
        assert!(e.to_string().contains("query error"));
        let e: KdapError = WarehouseError::NoFactTable.into();
        assert!(matches!(e, KdapError::Warehouse(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(KdapError::UnknownMeasure("X".into())
            .to_string()
            .contains("\"X\""));
    }
}
