//! Subspace materialization: evaluating a star net into the fact-row set
//! DS′ it denotes, plus its aggregate.
//!
//! Every constraint of the star net is a hit group applied along a join
//! path; constraints AND together on the fact table (slice semantics),
//! while the hits inside one group OR together. Hit groups on the fact
//! table itself select fact points directly (§4.2).

use kdap_query::{
    aggregate_total_exec, par_map, AggFunc, ExecConfig, JoinIndex, RowSet, Selection,
};
use kdap_warehouse::{Measure, Warehouse};

use crate::interpret::StarNet;

/// A materialized sub-dataspace DS′.
#[derive(Debug, Clone)]
pub struct Subspace {
    /// The qualifying fact rows.
    pub rows: RowSet,
}

impl Subspace {
    /// The whole dataspace DS (every fact row).
    pub fn full(wh: &Warehouse) -> Self {
        Subspace {
            rows: RowSet::full(wh.fact_rows()),
        }
    }

    /// Number of qualifying fact points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no fact point qualifies.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregates the measure over the subspace.
    pub fn aggregate(&self, wh: &Warehouse, measure: &Measure, func: AggFunc) -> f64 {
        self.aggregate_exec(wh, measure, func, &ExecConfig::serial())
    }

    /// Aggregates the measure with an explicit execution configuration.
    pub fn aggregate_exec(
        &self,
        wh: &Warehouse,
        measure: &Measure,
        func: AggFunc,
        exec: &ExecConfig,
    ) -> f64 {
        aggregate_total_exec(wh, measure, &self.rows, func, exec)
    }
}

/// Builds the selection a constraint denotes on the fact table.
fn constraint_selection(c: &crate::interpret::Constraint) -> Selection {
    match c.group.numeric {
        // Future-work extension (§7): numeric/measure hit candidates
        // select by value range instead of dictionary codes.
        Some((lo, hi)) => Selection::by_range(c.path.clone(), c.group.attr, lo, hi),
        None => Selection::by_codes(c.path.clone(), c.group.attr, c.group.codes()),
    }
}

/// Materializes a star net into its subspace.
pub fn materialize(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Subspace {
    materialize_with(wh, jidx, net, &ExecConfig::serial())
}

/// Materializes a star net, evaluating constraints across worker threads.
///
/// Each hit-group constraint is evaluated independently; the resulting
/// fact bitmaps AND together, so the intersection order cannot change the
/// result and `threads = 1` is bit-for-bit identical to any other setting.
pub fn materialize_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    exec: &ExecConfig,
) -> Subspace {
    let fact = wh.schema().fact_table();
    let mut rows = RowSet::full(wh.fact_rows());
    if exec.is_serial() || net.constraints.len() < 2 {
        for c in &net.constraints {
            rows.intersect_with(&constraint_selection(c).eval(wh, jidx, fact));
        }
        return Subspace { rows };
    }
    let selections = par_map(exec, &net.constraints, |_, c| {
        constraint_selection(c).eval(wh, jidx, fact)
    });
    for sel in &selections {
        rows.intersect_with(sel);
    }
    Subspace { rows }
}

/// Materializes several star nets concurrently (one worker per net),
/// preserving input order. Used to build the top-k candidate subspaces of
/// the differentiate phase in parallel.
pub fn materialize_many(
    wh: &Warehouse,
    jidx: &JoinIndex,
    nets: &[&StarNet],
    exec: &ExecConfig,
) -> Vec<Subspace> {
    par_map(exec, nets, |_, net| materialize(wh, jidx, net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::rank::{rank_star_nets, RankMethod};
    use crate::testutil::ebiz_fixture;

    /// Helper: materialize the top-ranked interpretation of a query.
    fn top_subspace(query: &[&str]) -> (Subspace, f64) {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, query, &GenConfig::default());
        let ranked = rank_star_nets(nets, RankMethod::Standard);
        let sub = materialize(&fx.wh, &fx.jidx, &ranked[0].net);
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        let agg = sub.aggregate(&fx.wh, &measure, kdap_query::AggFunc::Sum);
        (sub, agg)
    }

    #[test]
    fn store_city_constraint_slices_fact_rows() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        // Find the store-path interpretation.
        let store_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .expect("store-path net exists");
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Transactions 1 and 3 happen in the Columbus store → items
        // 1,2,5,6 (fact rows 0,1,4,5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn holiday_interpretation_differs_from_city() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let holiday_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("HOLIDAY"))
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, holiday_net);
        // Only transaction 1 falls on Columbus Day → items 1,2.
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn conjunction_of_two_keywords() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "plasma"],
            &GenConfig::default(),
        );
        let store_net = nets
            .iter()
            .find(|n| {
                let d = n.display(&fx.wh);
                d.contains("STORE → LOC") && d.contains("Plasma")
            })
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Columbus-store items that are Plasma products: item 6 only
        // (fact row 5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn aggregation_over_subspace() {
        let (sub, agg) = top_subspace(&["seattle"]);
        // Seattle matches the store city (1 path, 1 hit) and Alice's
        // customer city (2 paths). The top-ranked net is deterministic;
        // whatever it is, the aggregate must equal the sum over its rows.
        assert!(!sub.is_empty());
        assert!(agg > 0.0);
    }

    #[test]
    fn parallel_materialization_matches_serial() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "plasma"],
            &GenConfig::default(),
        );
        for threads in [2usize, 4, 8] {
            let exec = kdap_query::ExecConfig::with_threads(threads);
            for net in &nets {
                let serial = materialize(&fx.wh, &fx.jidx, net);
                let parallel = materialize_with(&fx.wh, &fx.jidx, net, &exec);
                assert_eq!(
                    serial.rows.iter().collect::<Vec<_>>(),
                    parallel.rows.iter().collect::<Vec<_>>()
                );
            }
            let refs: Vec<&StarNet> = nets.iter().collect();
            let many = materialize_many(&fx.wh, &fx.jidx, &refs, &exec);
            assert_eq!(many.len(), nets.len());
            for (net, sub) in nets.iter().zip(&many) {
                let serial = materialize(&fx.wh, &fx.jidx, net);
                assert_eq!(
                    serial.rows.iter().collect::<Vec<_>>(),
                    sub.rows.iter().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn empty_net_denotes_whole_dataspace() {
        let fx = ebiz_fixture();
        let net = crate::interpret::StarNet {
            constraints: vec![],
        };
        let sub = materialize(&fx.wh, &fx.jidx, &net);
        assert_eq!(sub.len(), fx.wh.fact_rows());
        let full = Subspace::full(&fx.wh);
        assert_eq!(full.len(), 6);
    }
}
