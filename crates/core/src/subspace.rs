//! Subspace materialization: evaluating a star net into the fact-row set
//! DS′ it denotes, plus its aggregate.
//!
//! Every constraint of the star net is a hit group applied along a join
//! path; constraints AND together on the fact table (slice semantics),
//! while the hits inside one group OR together. Hit groups on the fact
//! table itself select fact points directly (§4.2).
//!
//! Star nets are not evaluated directly: they compile to a
//! [`LogicalPlan`](kdap_query::LogicalPlan) which a [`Planner`] lowers to
//! a physical plan (optionally reordered, fused, and cached). Batch
//! materialization ([`materialize_batch`]) deduplicates shared physical
//! steps across the whole candidate set, so each distinct `(group, path)`
//! constraint is evaluated exactly once no matter how many nets share it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use kdap_query::{
    aggregate_total_exec, execute_plan, execute_step_raw, par_map, AggFunc, ExecConfig, JoinIndex,
    PhysStep, PhysicalPlan, QueryError, RowSet, StepKey,
};
use kdap_warehouse::{Measure, Warehouse};

use crate::error::KdapError;
use crate::interpret::StarNet;
use crate::plan::Planner;

/// A materialized sub-dataspace DS′.
#[derive(Debug, Clone, PartialEq)]
pub struct Subspace {
    /// The qualifying fact rows.
    pub rows: RowSet,
}

impl Subspace {
    /// The whole dataspace DS (every fact row).
    pub fn full(wh: &Warehouse) -> Self {
        Subspace {
            rows: RowSet::full(wh.fact_rows()),
        }
    }

    /// Number of qualifying fact points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no fact point qualifies.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregates the measure over the subspace.
    pub fn aggregate(&self, wh: &Warehouse, measure: &Measure, func: AggFunc) -> f64 {
        // A serial ungoverned config cannot breach any limit.
        self.aggregate_exec(wh, measure, func, &ExecConfig::serial())
            .unwrap_or(f64::NAN)
    }

    /// Aggregates the measure with an explicit execution configuration.
    /// Fails only when `exec` carries governance limits that fire
    /// mid-scan.
    pub fn aggregate_exec(
        &self,
        wh: &Warehouse,
        measure: &Measure,
        func: AggFunc,
        exec: &ExecConfig,
    ) -> Result<f64, KdapError> {
        Ok(aggregate_total_exec(wh, measure, &self.rows, func, exec)?)
    }
}

/// Materializes a star net into its subspace.
///
/// Panics if a constraint is malformed (attribute off its path's target
/// table) — impossible for nets produced by the interpreter. Use
/// [`try_materialize_with`] or [`materialize_planned`] for a fallible
/// variant.
pub fn materialize(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Subspace {
    materialize_with(wh, jidx, net, &ExecConfig::serial())
}

/// Materializes a star net, evaluating constraints across worker threads.
///
/// Each hit-group constraint is evaluated independently; the resulting
/// fact bitmaps AND together, so the intersection order cannot change the
/// result and `threads = 1` is bit-for-bit identical to any other setting.
pub fn materialize_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    exec: &ExecConfig,
) -> Subspace {
    // Documented panic: interpreter-produced nets are well-formed, and
    // this convenience entry point is not meant for governed configs —
    // governed callers go through `materialize_planned`.
    #[allow(clippy::expect_used)]
    try_materialize_with(wh, jidx, net, exec)
        .expect("star-net constraints evaluate on the fact table")
}

/// Fallible [`materialize_with`]: evaluates the net through an
/// unoptimized plan (net order, no cache).
pub fn try_materialize_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    exec: &ExecConfig,
) -> Result<Subspace, KdapError> {
    materialize_planned(wh, jidx, net, &Planner::naive(), exec)
}

/// Materializes a star net through a [`Planner`]: the net compiles to a
/// logical plan, lowers to a physical plan (reordered / fused per the
/// planner's config), and executes through the planner's semi-join cache
/// when one is present.
pub fn materialize_planned(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    planner: &Planner,
    exec: &ExecConfig,
) -> Result<Subspace, KdapError> {
    let fact = wh.schema().fact_table();
    let plan = planner.plan(wh, net);
    let rows = execute_plan(wh, jidx, fact, &plan, planner.cache(), exec)?;
    Ok(Subspace { rows })
}

/// Materializes several star nets concurrently, preserving input order.
/// Used to build the top-k candidate subspaces of the differentiate phase
/// in parallel. Shared constraints are evaluated once (see
/// [`materialize_batch`]).
pub fn materialize_many(
    wh: &Warehouse,
    jidx: &JoinIndex,
    nets: &[&StarNet],
    exec: &ExecConfig,
) -> Vec<Subspace> {
    // Documented panic: see `materialize_with`.
    #[allow(clippy::expect_used)]
    materialize_batch(wh, jidx, nets, &Planner::naive(), exec)
        .expect("star-net constraints evaluate on the fact table")
}

/// Materializes a whole candidate set through one planner, evaluating
/// each distinct physical step exactly once.
///
/// All nets compile and lower first; the distinct steps across all plans
/// (by cache key, first-occurrence order) are evaluated across `exec`'s
/// worker threads — through the planner's semi-join cache when present,
/// so steps already cached by earlier batches are not re-evaluated
/// either. Each net's subspace is then assembled by intersecting its
/// steps' bitmaps.
pub fn materialize_batch(
    wh: &Warehouse,
    jidx: &JoinIndex,
    nets: &[&StarNet],
    planner: &Planner,
    exec: &ExecConfig,
) -> Result<Vec<Subspace>, KdapError> {
    let fact = wh.schema().fact_table();
    let plans: Vec<PhysicalPlan> = nets.iter().map(|net| planner.plan(wh, net)).collect();

    let mut seen: HashSet<StepKey> = HashSet::new();
    let mut distinct: Vec<&PhysStep> = Vec::new();
    for plan in &plans {
        for step in &plan.steps {
            if seen.insert(step.key()) {
                distinct.push(step);
            }
        }
    }

    let total = distinct.len() as u64;
    let timed_step = |i: usize, s: &&PhysStep| {
        exec.check_at("semijoin", i as u64, total)?;
        execute_step_raw(wh, jidx, fact, s, planner.cache())
    };
    let results: Vec<Result<(Arc<RowSet>, bool), QueryError>> =
        if exec.is_serial() || distinct.len() < 2 {
            distinct
                .iter()
                .enumerate()
                .map(|(i, s)| timed_step(i, s))
                .collect()
        } else {
            par_map(exec, &distinct, timed_step)
        };
    // Fresh (uncached) results are committed to the semi-join cache only
    // after every step of the batch succeeded: a query aborted by its
    // deadline, token, or budget leaves the cache exactly as it found it.
    let mut bitmaps: HashMap<StepKey, Arc<RowSet>> = HashMap::with_capacity(distinct.len());
    let mut fresh: Vec<(StepKey, Arc<RowSet>)> = Vec::new();
    for (step, result) in distinct.iter().zip(results) {
        let (rows, cache_hit) = result?;
        if !cache_hit {
            exec.charge("semijoin", rows.heap_bytes())?;
            fresh.push((step.key(), Arc::clone(&rows)));
        }
        bitmaps.insert(step.key(), rows);
    }
    if let Some(cache) = planner.cache() {
        for (key, rows) in fresh {
            cache.insert(key, rows);
        }
    }

    Ok(plans
        .iter()
        .map(|plan| {
            let mut rows = RowSet::full(wh.fact_rows());
            for step in &plan.steps {
                rows.intersect_with(&bitmaps[&step.key()]);
            }
            Subspace { rows }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::rank::{rank_star_nets, RankMethod};
    use crate::testutil::ebiz_fixture;

    /// Helper: materialize the top-ranked interpretation of a query.
    fn top_subspace(query: &[&str]) -> (Subspace, f64) {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, query, &GenConfig::default());
        let ranked = rank_star_nets(nets, RankMethod::Standard);
        let sub = materialize(&fx.wh, &fx.jidx, &ranked[0].net);
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        let agg = sub.aggregate(&fx.wh, &measure, kdap_query::AggFunc::Sum);
        (sub, agg)
    }

    #[test]
    fn store_city_constraint_slices_fact_rows() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        // Find the store-path interpretation.
        let store_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .expect("store-path net exists");
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Transactions 1 and 3 happen in the Columbus store → items
        // 1,2,5,6 (fact rows 0,1,4,5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn holiday_interpretation_differs_from_city() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let holiday_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("HOLIDAY"))
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, holiday_net);
        // Only transaction 1 falls on Columbus Day → items 1,2.
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn conjunction_of_two_keywords() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "plasma"],
            &GenConfig::default(),
        );
        let store_net = nets
            .iter()
            .find(|n| {
                let d = n.display(&fx.wh);
                d.contains("STORE → LOC") && d.contains("Plasma")
            })
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Columbus-store items that are Plasma products: item 6 only
        // (fact row 5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn aggregation_over_subspace() {
        let (sub, agg) = top_subspace(&["seattle"]);
        // Seattle matches the store city (1 path, 1 hit) and Alice's
        // customer city (2 paths). The top-ranked net is deterministic;
        // whatever it is, the aggregate must equal the sum over its rows.
        assert!(!sub.is_empty());
        assert!(agg > 0.0);
    }

    #[test]
    fn parallel_materialization_matches_serial() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "plasma"],
            &GenConfig::default(),
        );
        for threads in [2usize, 4, 8] {
            let exec = kdap_query::ExecConfig::with_threads(threads);
            for net in &nets {
                let serial = materialize(&fx.wh, &fx.jidx, net);
                let parallel = materialize_with(&fx.wh, &fx.jidx, net, &exec);
                assert_eq!(
                    serial.rows.iter().collect::<Vec<_>>(),
                    parallel.rows.iter().collect::<Vec<_>>()
                );
            }
            let refs: Vec<&StarNet> = nets.iter().collect();
            let many = materialize_many(&fx.wh, &fx.jidx, &refs, &exec);
            assert_eq!(many.len(), nets.len());
            for (net, sub) in nets.iter().zip(&many) {
                let serial = materialize(&fx.wh, &fx.jidx, net);
                assert_eq!(
                    serial.rows.iter().collect::<Vec<_>>(),
                    sub.rows.iter().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn empty_net_denotes_whole_dataspace() {
        let fx = ebiz_fixture();
        let net = crate::interpret::StarNet {
            constraints: vec![],
        };
        let sub = materialize(&fx.wh, &fx.jidx, &net);
        assert_eq!(sub.len(), fx.wh.fact_rows());
        let full = Subspace::full(&fx.wh);
        assert_eq!(full.len(), 6);
    }

    #[test]
    fn optimized_planner_matches_naive() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let planner = Planner::optimized();
        for net in &nets {
            let naive = materialize(&fx.wh, &fx.jidx, net);
            let planned =
                materialize_planned(&fx.wh, &fx.jidx, net, &planner, &ExecConfig::serial())
                    .unwrap();
            assert_eq!(naive, planned);
        }
    }

    #[test]
    fn batch_evaluates_each_distinct_constraint_once() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        // 4 nets sharing the single "lcd" constraint and 4 distinct
        // "columbus" constraints → 5 distinct steps for 8 constraint
        // instances.
        let refs: Vec<&StarNet> = nets.iter().collect();
        let planner = Planner::optimized();
        let subs =
            materialize_batch(&fx.wh, &fx.jidx, &refs, &planner, &ExecConfig::serial()).unwrap();
        assert_eq!(subs.len(), 4);
        let (hits, misses) = planner.cache_stats().unwrap();
        assert_eq!((hits, misses), (0, 5), "each distinct step missed once");
        for (net, sub) in nets.iter().zip(&subs) {
            assert_eq!(&materialize(&fx.wh, &fx.jidx, net), sub);
        }
        // A second batch over the same nets hits the cache for every step.
        materialize_batch(&fx.wh, &fx.jidx, &refs, &planner, &ExecConfig::serial()).unwrap();
        let (hits, misses) = planner.cache_stats().unwrap();
        assert_eq!((hits, misses), (5, 5));
    }
}
