//! Subspace materialization: evaluating a star net into the fact-row set
//! DS′ it denotes, plus its aggregate.
//!
//! Every constraint of the star net is a hit group applied along a join
//! path; constraints AND together on the fact table (slice semantics),
//! while the hits inside one group OR together. Hit groups on the fact
//! table itself select fact points directly (§4.2).

use kdap_query::{aggregate_total, AggFunc, JoinIndex, RowSet, Selection};
use kdap_warehouse::{Measure, Warehouse};

use crate::interpret::StarNet;

/// A materialized sub-dataspace DS′.
#[derive(Debug, Clone)]
pub struct Subspace {
    /// The qualifying fact rows.
    pub rows: RowSet,
}

impl Subspace {
    /// The whole dataspace DS (every fact row).
    pub fn full(wh: &Warehouse) -> Self {
        Subspace {
            rows: RowSet::full(wh.fact_rows()),
        }
    }

    /// Number of qualifying fact points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no fact point qualifies.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregates the measure over the subspace.
    pub fn aggregate(&self, wh: &Warehouse, measure: &Measure, func: AggFunc) -> f64 {
        aggregate_total(wh, measure, &self.rows, func)
    }
}

/// Materializes a star net into its subspace.
pub fn materialize(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Subspace {
    let fact = wh.schema().fact_table();
    let mut rows = RowSet::full(wh.fact_rows());
    for c in &net.constraints {
        let sel = match c.group.numeric {
            // Future-work extension (§7): numeric/measure hit candidates
            // select by value range instead of dictionary codes.
            Some((lo, hi)) => Selection::by_range(c.path.clone(), c.group.attr, lo, hi),
            None => Selection::by_codes(c.path.clone(), c.group.attr, c.group.codes()),
        };
        rows.intersect_with(&sel.eval(wh, jidx, fact));
    }
    Subspace { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::rank::{rank_star_nets, RankMethod};
    use crate::testutil::ebiz_fixture;

    /// Helper: materialize the top-ranked interpretation of a query.
    fn top_subspace(query: &[&str]) -> (Subspace, f64) {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, query, &GenConfig::default());
        let ranked = rank_star_nets(nets, RankMethod::Standard);
        let sub = materialize(&fx.wh, &fx.jidx, &ranked[0].net);
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        let agg = sub.aggregate(&fx.wh, &measure, kdap_query::AggFunc::Sum);
        (sub, agg)
    }

    #[test]
    fn store_city_constraint_slices_fact_rows() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        // Find the store-path interpretation.
        let store_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .expect("store-path net exists");
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Transactions 1 and 3 happen in the Columbus store → items
        // 1,2,5,6 (fact rows 0,1,4,5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1, 4, 5]);
    }

    #[test]
    fn holiday_interpretation_differs_from_city() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let holiday_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("HOLIDAY"))
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, holiday_net);
        // Only transaction 1 falls on Columbus Day → items 1,2.
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn conjunction_of_two_keywords() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "plasma"],
            &GenConfig::default(),
        );
        let store_net = nets
            .iter()
            .find(|n| {
                let d = n.display(&fx.wh);
                d.contains("STORE → LOC") && d.contains("Plasma")
            })
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, store_net);
        // Columbus-store items that are Plasma products: item 6 only
        // (fact row 5).
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn aggregation_over_subspace() {
        let (sub, agg) = top_subspace(&["seattle"]);
        // Seattle matches the store city (1 path, 1 hit) and Alice's
        // customer city (2 paths). The top-ranked net is deterministic;
        // whatever it is, the aggregate must equal the sum over its rows.
        assert!(!sub.is_empty());
        assert!(agg > 0.0);
    }

    #[test]
    fn empty_net_denotes_whole_dataspace() {
        let fx = ebiz_fixture();
        let net = crate::interpret::StarNet {
            constraints: vec![],
        };
        let sub = materialize(&fx.wh, &fx.jidx, &net);
        assert_eq!(sub.len(), fx.wh.fact_rows());
        let full = Subspace::full(&fx.wh);
        assert_eq!(full.len(), 6);
    }
}
