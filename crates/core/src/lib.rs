//! # kdap-core
//!
//! Keyword-Driven Analytical Processing (Wu, Sismanis, Reinwald — SIGMOD
//! 2007): keyword search meets OLAP aggregation.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod cache;
pub mod error;
pub mod explain;
pub mod facet;
pub mod governor;
pub mod hit;
pub mod interest;
pub mod interpret;
pub mod navigate;
pub mod numeric_hits;
pub mod phrase;
pub mod plan;
pub mod rank;
pub mod render;
pub mod rollup;
pub mod session;
pub mod subspace;

#[doc(hidden)]
pub mod testutil;

pub use api::{
    ApiError, InterpretationSummary, QueryOptions, QueryRequest, QueryResponse, Verb, WireFormat,
};
pub use cache::SubspaceCache;
pub use error::KdapError;
pub use explain::{
    explain, explain_planned, ConstraintPlan, ExploreReport, FacetKernelChoice, Plan,
};
pub use facet::{
    explore, explore_subspace, explore_subspace_planned, explore_subspace_with, explore_with,
    AnnealConfig, Exploration, FacetAttr, FacetConfig, FacetEntry, FacetKernel, FacetOrder,
    FacetPanel, MergeResult,
};
pub use governor::{record_breach, CancelToken, Governor};
pub use hit::{build_hit_sets, Hit, HitConfig, HitGroup, HitSet};
pub use interest::{combine_correlations, pearson, InterestMode};
pub use interpret::{generate_star_nets, try_generate_star_nets, Constraint, GenConfig, StarNet};
pub use navigate::{drill_down, remove_constraint, roll_up, slice};
pub use numeric_hits::{numeric_groups, NumericConfig};
pub use phrase::merged_group_pool;
pub use plan::Planner;
pub use rank::{rank_star_nets, score_star_net, RankMethod, RankedStarNet};
pub use render::{render_exploration, render_interpretations};
pub use rollup::{
    rollup_constraint, rollup_spaces, rollup_spaces_with, try_rollup_spaces_planned, Rollup,
};
pub use session::{split_query, Kdap, KdapBuilder, ProfileReport};
pub use subspace::{
    materialize, materialize_batch, materialize_many, materialize_planned, materialize_with,
    try_materialize_with, Subspace,
};

pub use kdap_query::kernel;
pub use kdap_query::{
    Breach, ContainerHistogram, ExecConfig, Fingerprint, KernelTier, LogicalPlan, MeasureVector,
    PhysicalPlan, PlannerConfig, QueryContext, SemijoinCache,
};

pub use kdap_obs::{CacheCounters, CacheOutcome, MetricsSnapshot, Obs, ProfileNode, QueryProfile};
