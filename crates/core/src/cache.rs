//! Subspace caching — toward the paper's closing future-work item (§7):
//! "aggregation over the sub-dataspace … can be quite expensive on
//! sizable data warehouses; we plan to … develop new specialized
//! techniques optimized for KDAP."
//!
//! Interactive sessions rematerialize the same subspaces constantly: the
//! user flips interestingness modes, drills down and back up, re-picks
//! interpretations. The cache keys materialized fact-row sets by the star
//! net's canonical fingerprint (order-independent constraint identity),
//! with LRU eviction, so a revisited subspace costs a hash lookup instead
//! of a semi-join cascade.

use std::collections::HashMap;

use parking_lot::Mutex;

use kdap_query::JoinIndex;
use kdap_warehouse::Warehouse;

use crate::interpret::StarNet;
use crate::subspace::{materialize, Subspace};

/// An LRU cache of materialized subspaces.
pub struct SubspaceCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, (Subspace, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SubspaceCache {
    /// Creates a cache holding at most `capacity` subspaces.
    pub fn new(capacity: usize) -> Self {
        SubspaceCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Materializes `net`, serving repeats from the cache.
    pub fn materialize(&self, wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Subspace {
        let key = net.fingerprint();
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some((sub, stamp)) = inner.map.get_mut(&key) {
                *stamp = clock;
                let sub = sub.clone();
                inner.hits += 1;
                return sub;
            }
            inner.misses += 1;
        }
        // Materialize outside the lock: concurrent sessions should not
        // serialize on the semi-join work.
        let sub = materialize(wh, jidx, net);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, (sub.clone(), clock));
        sub
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of cached subspaces.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached entries (e.g. after warehouse changes).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::testutil::ebiz_fixture;

    #[test]
    fn repeat_materializations_hit_the_cache() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(8);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let a = cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        let b = cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        assert_eq!(a.rows, b.rows);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_result_matches_direct_materialization() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(8);
        for net in generate_star_nets(&fx.wh, &fx.index, &["columbus", "lcd"], &GenConfig::default()) {
            let cached = cache.materialize(&fx.wh, &fx.jidx, &net);
            let direct = materialize(&fx.wh, &fx.jidx, &net);
            assert_eq!(cached.rows, direct.rows);
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(2);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        assert!(nets.len() >= 3);
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]); // miss
        cache.materialize(&fx.wh, &fx.jidx, &nets[1]); // miss
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]); // hit, refreshes 0
        cache.materialize(&fx.wh, &fx.jidx, &nets[2]); // miss, evicts 1
        cache.materialize(&fx.wh, &fx.jidx, &nets[1]); // miss again
        assert_eq!(cache.stats(), (1, 4));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_contents() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(4);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let net = &nets[0];
        let mut reversed = net.clone();
        reversed.constraints.reverse();
        assert_eq!(net.fingerprint(), reversed.fingerprint());
    }
}
