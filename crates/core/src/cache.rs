//! Subspace caching — toward the paper's closing future-work item (§7):
//! "aggregation over the sub-dataspace … can be quite expensive on
//! sizable data warehouses; we plan to … develop new specialized
//! techniques optimized for KDAP."
//!
//! Interactive sessions rematerialize the same subspaces constantly: the
//! user flips interestingness modes, drills down and back up, re-picks
//! interpretations. The cache keys materialized fact-row sets by the star
//! net's canonical fingerprint (order-independent constraint identity),
//! with LRU eviction, so a revisited subspace costs a hash lookup instead
//! of a semi-join cascade.
//!
//! The cache is sharded by key hash: each shard guards an independent LRU
//! map behind its own mutex, so concurrent sessions (or the parallel
//! differentiate phase warming several candidate subspaces at once) do not
//! contend on a single lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use kdap_obs::CacheCounters;
use kdap_query::{ExecConfig, JoinIndex};
use kdap_warehouse::Warehouse;

use crate::interpret::StarNet;
use crate::subspace::{materialize_with, Subspace};

/// Upper bound on the number of shards; small capacities use fewer so the
/// per-shard LRU never degenerates to zero slots.
const MAX_SHARDS: usize = 8;

/// A sharded LRU cache of materialized subspaces.
pub struct SubspaceCache {
    shards: Vec<Mutex<Inner>>,
    shard_capacity: usize,
    /// Shared LRU clock: stamps must be comparable *across* shards so
    /// eviction can pick the globally least recently used entry.
    clock: AtomicU64,
    evictions: AtomicU64,
}

struct Inner {
    map: HashMap<String, (Subspace, u64)>,
    hits: u64,
    misses: u64,
}

impl Inner {
    fn new() -> Self {
        Inner {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl SubspaceCache {
    /// Creates a cache holding at most `capacity` subspaces in total,
    /// spread over `min(capacity, 8)` shards.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = capacity.min(MAX_SHARDS);
        SubspaceCache {
            shards: (0..n_shards).map(|_| Mutex::new(Inner::new())).collect(),
            shard_capacity: capacity / n_shards,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn shard(&self, key: &str) -> &Mutex<Inner> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Materializes `net`, serving repeats from the cache.
    pub fn materialize(&self, wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Subspace {
        self.materialize_with(wh, jidx, net, &ExecConfig::serial())
    }

    /// Materializes `net` with an explicit execution configuration,
    /// serving repeats from the cache.
    pub fn materialize_with(
        &self,
        wh: &Warehouse,
        jidx: &JoinIndex,
        net: &StarNet,
        exec: &ExecConfig,
    ) -> Subspace {
        let key = net.fingerprint();
        if let Some(sub) = self.get(&key) {
            return sub;
        }
        // Materialize outside the lock: concurrent sessions should not
        // serialize on the semi-join work.
        let sub = materialize_with(wh, jidx, net, exec);
        self.insert(key, sub.clone());
        sub
    }

    /// Looks up a cached subspace by fingerprint, counting a hit or a
    /// miss and refreshing the entry's LRU stamp on a hit.
    pub fn get(&self, key: &str) -> Option<Subspace> {
        let clock = self.tick();
        let mut inner = self.shard(key).lock();
        if let Some((sub, stamp)) = inner.map.get_mut(key) {
            *stamp = clock;
            let sub = sub.clone();
            inner.hits += 1;
            Some(sub)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Stores a subspace under `key`, then evicts the globally least
    /// recently used entries while total occupancy exceeds capacity.
    ///
    /// Eviction is driven by *total* occupancy, not per-shard occupancy,
    /// so skewed key hashing cannot evict entries while the cache as a
    /// whole still has room. Locks are taken one shard at a time — never
    /// nested — so concurrent inserts cannot deadlock.
    pub fn insert(&self, key: String, sub: Subspace) {
        let clock = self.tick();
        self.shard(&key).lock().map.insert(key, (sub, clock));
        while self.len() > self.capacity() {
            // Scan for the entry with the smallest stamp across shards,
            // then re-lock its shard to remove it. A concurrent touch may
            // refresh or remove the victim in between; the removal is
            // then a no-op and the loop re-checks occupancy.
            let mut victim: Option<(usize, String, u64)> = None;
            for (idx, shard) in self.shards.iter().enumerate() {
                let inner = shard.lock();
                if let Some((k, (_, stamp))) = inner.map.iter().min_by_key(|(_, (_, s))| *s) {
                    if victim.as_ref().is_none_or(|(_, _, best)| *stamp < *best) {
                        victim = Some((idx, k.clone(), *stamp));
                    }
                }
            }
            match victim {
                Some((idx, k, _)) => {
                    if self.shards[idx].lock().map.remove(&k).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// `(hits, misses)` counters, summed over all shards.
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for shard in &self.shards {
            let inner = shard.lock();
            hits += inner.hits;
            misses += inner.misses;
        }
        (hits, misses)
    }

    /// Hit/miss/eviction counters. Evictions count LRU victims and
    /// entries dropped by [`SubspaceCache::clear`].
    pub fn counters(&self) -> CacheCounters {
        let (hits, misses) = self.stats();
        CacheCounters {
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached subspaces across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Container histogram over every cached subspace's row set — how the
    /// session's live subspaces compress (array/bitmap/run block counts).
    pub fn container_histogram(&self) -> kdap_query::ContainerHistogram {
        let mut h = kdap_query::ContainerHistogram::default();
        for shard in &self.shards {
            for (sub, _) in shard.lock().map.values() {
                h.merge(&sub.rows.container_histogram());
            }
        }
        h
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached entries (e.g. after warehouse changes); the
    /// dropped entries count as evictions.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.lock();
            self.evictions
                .fetch_add(inner.map.len() as u64, Ordering::Relaxed);
            inner.map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::testutil::ebiz_fixture;

    #[test]
    fn repeat_materializations_hit_the_cache() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(8);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let a = cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        let b = cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        assert_eq!(a.rows, b.rows);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_result_matches_direct_materialization() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(8);
        for net in generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        ) {
            let cached = cache.materialize(&fx.wh, &fx.jidx, &net);
            let direct = crate::subspace::materialize(&fx.wh, &fx.jidx, &net);
            assert_eq!(cached.rows, direct.rows);
        }
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        let fx = ebiz_fixture();
        // Capacity 1 forces a single shard with a single slot, making
        // eviction order deterministic regardless of key hashing.
        let cache = SubspaceCache::new(1);
        assert_eq!(cache.capacity(), 1);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        assert!(nets.len() >= 2);
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]); // miss
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]); // hit
        cache.materialize(&fx.wh, &fx.jidx, &nets[1]); // miss, evicts 0
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]); // miss again
        assert_eq!(cache.stats(), (1, 3));
        assert_eq!(cache.len(), 1);
        // Two LRU victims: net 0 (for net 1) and net 1 (for net 0 again).
        assert_eq!(cache.counters(), CacheCounters::new(1, 3, 2));
    }

    #[test]
    fn sharded_capacity_never_exceeds_requested_total() {
        for capacity in [1usize, 2, 5, 8, 10, 64] {
            let cache = SubspaceCache::new(capacity);
            assert!(cache.capacity() <= capacity, "capacity {capacity}");
            assert!(cache.capacity() >= 1);
        }
    }

    #[test]
    fn clear_resets_contents() {
        let fx = ebiz_fixture();
        let cache = SubspaceCache::new(4);
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        cache.materialize(&fx.wh, &fx.jidx, &nets[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let net = &nets[0];
        let mut reversed = net.clone();
        reversed.constraints.reverse();
        assert_eq!(net.fingerprint(), reversed.fingerprint());
    }

    #[test]
    fn concurrent_access_stays_consistent() {
        let fx = std::sync::Arc::new(ebiz_fixture());
        let cache = std::sync::Arc::new(SubspaceCache::new(4));
        let nets = std::sync::Arc::new(generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        ));
        std::thread::scope(|s| {
            for t in 0..4 {
                let fx = fx.clone();
                let cache = cache.clone();
                let nets = nets.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let net = &nets[(t + i) % nets.len()];
                        let cached = cache.materialize(&fx.wh, &fx.jidx, net);
                        let direct = crate::subspace::materialize(&fx.wh, &fx.jidx, net);
                        assert_eq!(cached.rows, direct.rows);
                    }
                });
            }
        });
        assert!(cache.len() <= cache.capacity());
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 4 * 50);
    }
}
