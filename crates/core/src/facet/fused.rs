//! The fused explore pipeline: single-pass vectorized facet aggregation.
//!
//! The per-facet pipeline issues one group-by kernel call per candidate
//! attribute per space, and each call re-scans the subspace bitmap,
//! re-derives the fact→dimension row mapper, and re-evaluates the measure
//! expression row by row. This module replaces all of that with a handful
//! of fused scans over session-materialized inputs:
//!
//! 1. **Scan A** over DS′: the total aggregate, every categorical
//!    candidate's group stats, and every numerical candidate's domain —
//!    one pass.
//! 2. **Scan B** over DS′ (only when numerical candidates exist): the
//!    per-basic-interval stats of every numerical candidate, using the
//!    bucketizers derived from scan A. The same stats answer both the
//!    aggregation series and the §5.2.1 occupancy filter.
//! 3. **One scan per roll-up space**: totals plus every candidate's group
//!    stats — shared by attribute scoring (Eq. 1) *and* instance ranking
//!    (Eq. 2), which the per-facet pipeline recomputed from scratch in
//!    its second stage.
//!
//! Candidate `(attr, path)` pairs are deduplicated into one spec each, the
//! measure is decoded once into a [`MeasureVector`], and row mappers are
//! shared `Arc`s from the session's `JoinIndex` memo. Scoring and ranking
//! run through the same helpers as the per-facet pipeline
//! ([`categorical_correlation`], [`numeric_worst_correlation`],
//! [`rank_instances_from`]), so the serial fused exploration is
//! bit-identical to the per-facet one (`tests/facet_equivalence.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use kdap_query::{
    multi_group_by_exec, AggFunc, Bucketizer, ExecConfig, FacetGroups, FacetSpec, JoinIndex,
    JoinPath, MeasureVector, DENSE_GROUP_LIMIT,
};
use kdap_warehouse::{AttrKind, ColRef, Warehouse};

use crate::error::KdapError;
use crate::explain::{ExploreReport, FacetKernelChoice};
use crate::facet::attr_rank::{
    assemble_ranked, categorical_correlation, collect_attr_tasks, numeric_worst_correlation,
    AttrTask, NumericSeries, RankedAttr,
};
use crate::facet::instance_rank::rank_instances_from;
use crate::facet::{numeric_entries, Exploration, FacetAttr, FacetConfig, FacetEntry, FacetPanel};
use crate::interpret::StarNet;
use crate::plan::Planner;
use crate::rollup::try_rollup_spaces_planned;
use crate::subspace::Subspace;

/// The fused-scan results of one deduplicated `(attr, path)` candidate.
enum SlotData {
    Categorical {
        /// `DOM(DS′, attr)` — sorted codes present in the subspace.
        dom: Vec<u32>,
        /// DS′ group-by map under `cfg.agg`.
        x_map: HashMap<u32, f64>,
        /// Per-roll-up group-by maps, aligned with the roll-up order.
        y_maps: Vec<HashMap<u32, f64>>,
        dense: bool,
        groups: usize,
    },
    Numerical {
        /// `None` when the attribute has no finite value in DS′ (the
        /// per-facet path's `Bucketizer::equal_width` returns `None`).
        series: Option<NumSlot>,
    },
}

struct NumSlot {
    buckets: Bucketizer,
    /// DS′ per-interval series under `cfg.agg`.
    x: Vec<f64>,
    /// DS′ per-interval COUNT series (§5.2.1 occupancy).
    occupancy: Vec<f64>,
    /// Per-roll-up per-interval series, aligned with the roll-up order.
    rup_ys: Vec<Vec<f64>>,
    groups: usize,
}

/// Runs the fused explore pipeline and reports its scan accounting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_fused(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    mv: &MeasureVector,
    cfg: &FacetConfig,
    exec: &ExecConfig,
    planner: &Planner,
) -> Result<(Exploration, ExploreReport), KdapError> {
    let schema = wh.schema();
    let fact = schema.fact_table();
    let obs = exec.obs.clone();
    let rups = {
        let _s = obs.span("explore.rollups");
        try_rollup_spaces_planned(wh, jidx, net, planner, exec)?
    };
    let n_rups = rups.len();

    // Hit codes per attribute (to pin hit instances).
    let mut hit_codes: HashMap<ColRef, HashSet<u32>> = HashMap::new();
    for c in &net.constraints {
        hit_codes
            .entry(c.group.attr)
            .or_default()
            .extend(c.group.codes());
    }

    let mut dims: Vec<&kdap_warehouse::Dimension> = schema.dimensions().iter().collect();
    dims.sort_by(|a, b| a.name.cmp(&b.name));
    let tasks: Vec<(usize, AttrTask)> = dims
        .iter()
        .enumerate()
        .flat_map(|(di, dim)| {
            collect_attr_tasks(wh, net, dim)
                .into_iter()
                .map(move |t| (di, t))
        })
        .collect();

    // Deduplicate tasks into one spec slot per (attr, path, kind): the
    // promoted copy of a hit attribute and its declared-candidate copy
    // aggregate identically, so they share one set of accumulators.
    let mut slot_of: HashMap<(ColRef, JoinPath, bool), usize> = HashMap::new();
    let mut slots: Vec<(ColRef, JoinPath, AttrKind)> = Vec::new();
    for (_, task) in &tasks {
        let key = (
            task.attr,
            task.path.clone(),
            task.kind == AttrKind::Numerical,
        );
        slot_of.entry(key).or_insert_with(|| {
            slots.push((task.attr, task.path.clone(), task.kind));
            slots.len() - 1
        });
    }
    let mappers: Vec<Arc<Vec<Option<u32>>>> = slots
        .iter()
        .map(|(_, path, _)| jidx.row_mapper(wh, fact, path))
        .collect();

    // Scan A over DS′: total + categorical groups + numerical domains.
    let mut specs_a: Vec<FacetSpec> = vec![FacetSpec::Total];
    let mut a_idx: Vec<usize> = Vec::with_capacity(slots.len());
    for (i, (attr, _, kind)) in slots.iter().enumerate() {
        a_idx.push(specs_a.len());
        specs_a.push(match kind {
            AttrKind::Categorical => FacetSpec::Categorical {
                attr: *attr,
                mapper: mappers[i].clone(),
            },
            AttrKind::Numerical => FacetSpec::NumericDomain {
                attr: *attr,
                mapper: mappers[i].clone(),
            },
        });
    }
    let groups_a = {
        let s = obs.span("explore.scan_a");
        s.rows_in(sub.len() as u64);
        s.note("specs", specs_a.len());
        multi_group_by_exec(wh, &specs_a, &sub.rows, mv, exec, DENSE_GROUP_LIMIT)?
    };
    let total_aggregate = groups_a[0].total(cfg.agg);

    // Scan B over DS′: bucketized numerical groups, with bucketizers
    // derived from the scan-A domains.
    let mut specs_b: Vec<FacetSpec> = Vec::new();
    let mut b_idx: Vec<Option<usize>> = vec![None; slots.len()];
    let mut bucketizers: Vec<Option<Bucketizer>> = vec![None; slots.len()];
    for (i, (attr, _, kind)) in slots.iter().enumerate() {
        if *kind == AttrKind::Numerical {
            if let Some(bz) = groups_a[a_idx[i]].bucketizer(cfg.n_basic_intervals) {
                b_idx[i] = Some(specs_b.len());
                specs_b.push(FacetSpec::Buckets {
                    attr: *attr,
                    mapper: mappers[i].clone(),
                    buckets: bz.clone(),
                });
                bucketizers[i] = Some(bz);
            }
        }
    }
    let groups_b = if specs_b.is_empty() {
        Vec::new()
    } else {
        let s = obs.span("explore.scan_b");
        s.rows_in(sub.len() as u64);
        s.note("specs", specs_b.len());
        multi_group_by_exec(wh, &specs_b, &sub.rows, mv, exec, DENSE_GROUP_LIMIT)?
    };

    // One fused scan per roll-up space: total + every live candidate.
    // Empty-domain categoricals and domain-less numericals are skipped —
    // their tasks fail scoring regardless of the roll-up series.
    let mut specs_r: Vec<FacetSpec> = vec![FacetSpec::Total];
    let mut r_idx: Vec<Option<usize>> = vec![None; slots.len()];
    for (i, (attr, _, kind)) in slots.iter().enumerate() {
        match kind {
            AttrKind::Categorical => {
                if groups_a[a_idx[i]].n_groups() > 0 {
                    r_idx[i] = Some(specs_r.len());
                    specs_r.push(FacetSpec::Categorical {
                        attr: *attr,
                        mapper: mappers[i].clone(),
                    });
                }
            }
            AttrKind::Numerical => {
                if let Some(bz) = &bucketizers[i] {
                    r_idx[i] = Some(specs_r.len());
                    specs_r.push(FacetSpec::Buckets {
                        attr: *attr,
                        mapper: mappers[i].clone(),
                        buckets: bz.clone(),
                    });
                }
            }
        }
    }
    let rup_results: Vec<Vec<FacetGroups>> = {
        let s = obs.span("explore.rollup_scans");
        s.note("rollups", n_rups);
        rups.iter()
            .map(|rup| multi_group_by_exec(wh, &specs_r, &rup.rows, mv, exec, DENSE_GROUP_LIMIT))
            .collect::<Result<_, _>>()?
    };
    let rup_totals: Vec<f64> = rup_results.iter().map(|g| g[0].total(cfg.agg)).collect();

    // Derive every slot's maps/series once; tasks and stage-2 ranking
    // both read them.
    let slot_data: Vec<SlotData> = slots
        .iter()
        .enumerate()
        .map(|(i, (_, _, kind))| match kind {
            AttrKind::Categorical => {
                let g = &groups_a[a_idx[i]];
                let y_maps = match r_idx[i] {
                    Some(ri) => rup_results.iter().map(|r| r[ri].to_map(cfg.agg)).collect(),
                    None => Vec::new(),
                };
                SlotData::Categorical {
                    dom: g.domain(),
                    x_map: g.to_map(cfg.agg),
                    y_maps,
                    dense: g.is_dense(),
                    groups: g.n_groups(),
                }
            }
            AttrKind::Numerical => SlotData::Numerical {
                series: b_idx[i].map(|bi| {
                    let g = &groups_b[bi];
                    // Infallible: b_idx[i] is Some only when a bucketizer
                    // was built, which also registered the roll-up spec.
                    #[allow(clippy::expect_used)]
                    let ri = r_idx[i].expect("bucketized slots scan every roll-up");
                    #[allow(clippy::expect_used)]
                    NumSlot {
                        buckets: bucketizers[i].clone().expect("bucketizer built"),
                        x: g.to_series(cfg.agg),
                        occupancy: g.to_series(AggFunc::Count),
                        rup_ys: rup_results
                            .iter()
                            .map(|r| r[ri].to_series(cfg.agg))
                            .collect(),
                        groups: g.n_groups(),
                    }
                }),
            },
        })
        .collect();

    // Stage 1: score every task from its slot's precomputed data — the
    // same correlation helpers the per-facet kernels feed.
    let score_span = obs.span("explore.score");
    let task_slots: Vec<usize> = tasks
        .iter()
        .map(|(_, t)| slot_of[&(t.attr, t.path.clone(), t.kind == AttrKind::Numerical)])
        .collect();
    let results: Vec<Option<RankedAttr>> = tasks
        .iter()
        .zip(&task_slots)
        .map(|((_, task), &si)| match &slot_data[si] {
            SlotData::Categorical {
                dom, x_map, y_maps, ..
            } => {
                if dom.is_empty() {
                    return None;
                }
                categorical_correlation(dom, x_map, y_maps).map(|correlation| RankedAttr {
                    attr: task.attr,
                    kind: task.kind,
                    path: task.path.clone(),
                    correlation,
                    score: cfg.mode.attr_score(correlation),
                    promoted: task.promoted,
                    numeric: None,
                })
            }
            SlotData::Numerical { series: None } => None,
            SlotData::Numerical { series: Some(ns) } => {
                numeric_worst_correlation(&ns.x, &ns.occupancy, &ns.rup_ys).map(
                    |(correlation, rup_series)| RankedAttr {
                        attr: task.attr,
                        kind: task.kind,
                        path: task.path.clone(),
                        correlation,
                        score: cfg.mode.attr_score(correlation),
                        promoted: task.promoted,
                        numeric: Some(NumericSeries {
                            bucketizer: ns.buckets.clone(),
                            ds: ns.x.clone(),
                            rup: rup_series,
                        }),
                    },
                )
            }
        })
        .collect();

    // Reassemble the per-dimension rankings and select the top-k
    // attributes — identical to the per-facet pipeline.
    let mut per_dim: Vec<(Vec<AttrTask>, Vec<Option<RankedAttr>>)> =
        (0..dims.len()).map(|_| (Vec::new(), Vec::new())).collect();
    for ((di, task), result) in tasks.iter().zip(results) {
        per_dim[*di].0.push(task.clone());
        per_dim[*di].1.push(result);
    }
    let mut selected: Vec<(usize, RankedAttr)> = Vec::new();
    for (di, (dim, (dim_tasks, dim_results))) in dims.iter().zip(per_dim).enumerate() {
        let ranked = assemble_ranked(dim, cfg, &dim_tasks, dim_results);
        for ra in ranked.into_iter().take(cfg.top_k_attrs) {
            selected.push((di, ra));
        }
    }
    score_span.rows_in(task_slots.len() as u64);
    score_span.rows_out(selected.len() as u64);
    drop(score_span);

    // Stage 2: entries of every selected attribute — pure math over the
    // scan results, no further scans (the per-facet pipeline re-scanned
    // DS′ and every roll-up space per selected attribute here).
    let entries_span = obs.span("explore.entries");
    let empty = HashSet::new();
    let mut panels: Vec<FacetPanel> = Vec::new();
    for (di, ra) in selected.iter() {
        let entries: Vec<FacetEntry> = match (&ra.kind, &ra.numeric) {
            (AttrKind::Categorical, _) => {
                let si = slot_of[&(ra.attr, ra.path.clone(), false)];
                let SlotData::Categorical {
                    dom, x_map, y_maps, ..
                } = &slot_data[si]
                else {
                    unreachable!("categorical tasks map to categorical slots")
                };
                let hits = hit_codes.get(&ra.attr).unwrap_or(&empty);
                let rup_data: Vec<(f64, &HashMap<u32, f64>)> =
                    rup_totals.iter().copied().zip(y_maps.iter()).collect();
                rank_instances_from(
                    wh,
                    ra.attr,
                    dom,
                    x_map,
                    total_aggregate,
                    &rup_data,
                    cfg,
                    hits,
                )
                .into_iter()
                .take(cfg.top_k_instances)
                .map(|ri| FacetEntry {
                    label: ri.label.to_string(),
                    aggregate: ri.aggregate,
                    score: ri.score,
                    is_hit: ri.is_hit,
                })
                .collect()
            }
            (AttrKind::Numerical, Some(series)) => numeric_entries(series, cfg),
            (AttrKind::Numerical, None) => Vec::new(),
        };
        let facet_attr = FacetAttr {
            attr: ra.attr,
            name: wh.col_name(ra.attr),
            kind: ra.kind,
            correlation: ra.correlation,
            score: ra.score,
            promoted: ra.promoted,
            entries,
        };
        let dimension = dims[*di].name.clone();
        match panels.last_mut() {
            Some(FacetPanel {
                dimension: d,
                attrs,
            }) if *d == dimension => attrs.push(facet_attr),
            _ => panels.push(FacetPanel {
                dimension,
                attrs: vec![facet_attr],
            }),
        }
    }

    entries_span.rows_out(panels.iter().map(|p| p.attrs.len() as u64).sum());
    drop(entries_span);

    let report = build_report(
        wh,
        &slots,
        &slot_data,
        &task_slots,
        &selected,
        n_rups,
        !specs_b.is_empty(),
    );

    Ok((
        Exploration {
            subspace_size: sub.len(),
            total_aggregate,
            panels,
        },
        report,
    ))
}

/// Scan accounting: what the fused pipeline did versus what the
/// per-facet pipeline would have done for the same exploration.
fn build_report(
    wh: &Warehouse,
    slots: &[(ColRef, JoinPath, AttrKind)],
    slot_data: &[SlotData],
    task_slots: &[usize],
    selected: &[(usize, RankedAttr)],
    n_rups: usize,
    scanned_buckets: bool,
) -> ExploreReport {
    // Per-facet cost, task by task (the old pipeline evaluated every
    // task, duplicates included): a categorical candidate paid a domain
    // projection, a subspace group-by, and one group-by per roll-up —
    // unless its domain was empty, where it stopped after the projection.
    // A numerical candidate paid a projection, two subspace bucket
    // group-bys (series + occupancy) and one per roll-up — or just the
    // projection when the domain was empty. Each selected categorical
    // attribute then paid a fresh projection, subspace total + group-by,
    // and a total + group-by per roll-up in stage 2.
    let mut scans_old = 1; // the subspace total aggregate
    for &si in task_slots {
        scans_old += match &slot_data[si] {
            SlotData::Categorical { dom, .. } if dom.is_empty() => 1,
            SlotData::Categorical { .. } => 2 + n_rups,
            SlotData::Numerical { series: None } => 1,
            SlotData::Numerical { series: Some(_) } => 3 + n_rups,
        };
    }
    for (_, ra) in selected {
        if ra.kind == AttrKind::Categorical {
            scans_old += 3 + 2 * n_rups;
        }
    }
    let scans_fused = 1 + usize::from(scanned_buckets) + n_rups;

    let facets = slots
        .iter()
        .zip(slot_data)
        .filter_map(|((attr, _, _), data)| match data {
            SlotData::Categorical { dense, groups, .. } => Some(FacetKernelChoice {
                attr: wh.col_name(*attr),
                kernel: if *dense { "dense" } else { "hash" }.to_string(),
                groups: *groups,
            }),
            SlotData::Numerical { series: Some(ns) } => Some(FacetKernelChoice {
                attr: wh.col_name(*attr),
                kernel: "buckets".to_string(),
                groups: ns.groups,
            }),
            SlotData::Numerical { series: None } => None,
        })
        .collect();

    ExploreReport {
        rollups: n_rups,
        candidates: task_slots.len(),
        scans_fused,
        scans_old,
        facets,
        subspace_cache: None,
        semijoin_cache: None,
        mapper_cache: None,
    }
}
