//! Automatic facet construction for sub-dataspaces (paper §5).
//!
//! After the user picks a star net, the explore phase aggregates the
//! subspace and dynamically builds a multi-faceted interface: per
//! dimension, the top-k most interesting group-by attributes, and within
//! each attribute the ranked instances (categorical) or merged numerical
//! ranges (Algorithm 2).

pub mod anneal;
pub mod attr_rank;
#[cfg(test)]
mod attr_rank_tests;
pub(crate) mod fused;
pub mod instance_rank;

use std::collections::HashSet;

use kdap_query::{par_map, AggFunc, ExecConfig, JoinIndex};
use kdap_warehouse::{AttrKind, ColRef, Measure, Warehouse};

use crate::error::KdapError;
use crate::facet::attr_rank::{assemble_ranked, collect_attr_tasks, evaluate_attr_task, AttrTask};
use crate::interest::InterestMode;
use crate::interpret::StarNet;
use crate::plan::Planner;
use crate::rollup::try_rollup_spaces_planned;
use crate::subspace::{materialize_planned, Subspace};

pub use anneal::{merge_intervals, merge_series, AnnealConfig, MergeResult};
pub use attr_rank::{path_for_attr, rank_dimension_attrs, NumericSeries, RankedAttr};
pub use instance_rank::{rank_instances, RankedInstance};

/// How the selected group-by attributes are ordered inside a panel —
/// the paper's §7 notes that fully dynamic organization "may become
/// inadequate whenever the users have a very concrete goal", where the
/// *consistency* of the interface matters and "a hybrid solution may be
/// better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FacetOrder {
    /// Interestingness-ranked (the paper's default behaviour).
    Dynamic,
    /// Schema declaration order — stable across queries, for users with
    /// concrete navigation goals.
    Consistent,
    /// Hybrid: the first `pinned` schema-declared attributes keep their
    /// stable position, the rest fill in by interestingness.
    Hybrid {
        /// How many declared candidates keep their stable slots.
        pinned: usize,
    },
}

/// Which group-by kernel drives the explore phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FacetKernel {
    /// One fused scan per space feeds the accumulators of every candidate
    /// facet at once (dense arrays under the cardinality cutoff, hash
    /// fallback above), over a measure vector decoded once and shared
    /// `Arc` row mappers. The default.
    #[default]
    Fused,
    /// One group-by kernel invocation per facet per space — the original
    /// pipeline, kept as the property-tested oracle and as the baseline
    /// for the `exp_explore` benchmark.
    PerFacet,
}

/// Knobs of the explore phase.
#[derive(Debug, Clone)]
pub struct FacetConfig {
    /// Surprise or bellwether interestingness.
    pub mode: InterestMode,
    /// Which group-by kernel runs the aggregation scans.
    pub kernel: FacetKernel,
    /// Attribute ordering policy within a panel (§7 hybrid extension).
    pub order: FacetOrder,
    /// Aggregation function applied to the measure.
    pub agg: AggFunc,
    /// Top-k group-by attributes shown per dimension.
    pub top_k_attrs: usize,
    /// Top-k instances shown per categorical attribute.
    pub top_k_instances: usize,
    /// Number of basic intervals for numerical domains (paper default 40,
    /// validated in §6.4).
    pub n_basic_intervals: usize,
    /// Number of merged display ranges `K`.
    pub display_intervals: usize,
    /// Algorithm 2 parameters (skew limit `L`, iterations `N`, seed).
    pub anneal: AnnealConfig,
}

impl Default for FacetConfig {
    fn default() -> Self {
        FacetConfig {
            mode: InterestMode::Surprise,
            kernel: FacetKernel::Fused,
            order: FacetOrder::Dynamic,
            agg: AggFunc::Sum,
            top_k_attrs: 3,
            top_k_instances: 8,
            n_basic_intervals: 40,
            display_intervals: 3,
            anneal: AnnealConfig::default(),
        }
    }
}

/// One entry (attribute instance or numeric range) of a facet.
#[derive(Debug, Clone, PartialEq)]
pub struct FacetEntry {
    /// Display label: an attribute instance or a numeric range.
    pub label: String,
    /// Aggregation value of the entry's partition within DS′.
    pub aggregate: f64,
    /// Instance interestingness (Eq. 2 based); 0 for numeric ranges,
    /// which keep their natural order.
    pub score: f64,
    /// True when the entry carries one of the query's hits.
    pub is_hit: bool,
}

/// One selected group-by attribute with its displayed entries.
#[derive(Debug, Clone, PartialEq)]
pub struct FacetAttr {
    /// The group-by attribute.
    pub attr: ColRef,
    /// Its `Table.Column` display name.
    pub name: String,
    /// Categorical or numerical.
    pub kind: AttrKind,
    /// Worst-case correlation against the roll-up spaces (Eq. 1 input).
    pub correlation: f64,
    /// Interestingness under the configured mode.
    pub score: f64,
    /// True for hit-group attributes (always shown, §5.2.1).
    pub promoted: bool,
    /// Ranked instances or merged numeric ranges.
    pub entries: Vec<FacetEntry>,
}

/// The facet panel of one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct FacetPanel {
    /// Dimension name.
    pub dimension: String,
    /// The top-k selected attributes, in display order.
    pub attrs: Vec<FacetAttr>,
}

/// The explore-phase output for a chosen star net.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Number of qualifying fact points in DS′.
    pub subspace_size: usize,
    /// Aggregate of the measure over DS′.
    pub total_aggregate: f64,
    /// One panel per dimension, in static (alphabetical) dimension order
    /// (§5.1 assumes a static order over dimensions).
    pub panels: Vec<FacetPanel>,
}

/// Runs the complete explore phase for `net`.
pub fn explore(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    measure: &Measure,
    cfg: &FacetConfig,
) -> Result<Exploration, KdapError> {
    explore_with(wh, jidx, net, measure, cfg, &ExecConfig::serial())
}

/// Runs the complete explore phase with an explicit execution
/// configuration.
pub fn explore_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    measure: &Measure,
    cfg: &FacetConfig,
    exec: &ExecConfig,
) -> Result<Exploration, KdapError> {
    let planner = Planner::naive();
    let sub = materialize_planned(wh, jidx, net, &planner, exec)?;
    explore_subspace_planned(wh, jidx, net, &sub, measure, cfg, exec, &planner)
}

/// Explore phase over an already-materialized subspace.
pub fn explore_subspace(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    measure: &Measure,
    cfg: &FacetConfig,
) -> Result<Exploration, KdapError> {
    explore_subspace_with(wh, jidx, net, sub, measure, cfg, &ExecConfig::serial())
}

/// Explore phase over an already-materialized subspace, fanning the
/// independent pieces of work out over `exec`'s worker threads.
///
/// Three stages parallelize: the per-constraint roll-up spaces, the
/// attribute scoring tasks (flattened across all dimensions), and the
/// per-attribute entry construction. Every task is a pure function of its
/// inputs and results are reassembled in task order, so the output is
/// identical for every thread count — `threads = 1` runs the exact serial
/// pipeline.
#[allow(clippy::too_many_arguments)]
pub fn explore_subspace_with(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    measure: &Measure,
    cfg: &FacetConfig,
    exec: &ExecConfig,
) -> Result<Exploration, KdapError> {
    explore_subspace_planned(wh, jidx, net, sub, measure, cfg, exec, &Planner::naive())
}

/// [`explore_subspace_with`] with an explicit [`Planner`]: the roll-up
/// spaces are compiled and executed through it, sharing its semi-join
/// cache with the differentiate phase that materialized the subspace.
///
/// Dispatches on [`FacetConfig::kernel`]: the fused single-pass pipeline
/// (default) or the per-facet oracle. Both produce the same
/// [`Exploration`] — the kernels are scan-for-scan equivalent and the
/// fused serial path is bit-identical to the per-facet serial path
/// (property-tested in `tests/facet_equivalence.rs`).
#[allow(clippy::too_many_arguments)]
pub fn explore_subspace_planned(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    measure: &Measure,
    cfg: &FacetConfig,
    exec: &ExecConfig,
    planner: &Planner,
) -> Result<Exploration, KdapError> {
    match cfg.kernel {
        FacetKernel::PerFacet => explore_per_facet(wh, jidx, net, sub, measure, cfg, exec, planner),
        FacetKernel::Fused => {
            let mv = kdap_query::MeasureVector::build(wh, measure);
            fused::explore_fused(wh, jidx, net, sub, &mv, cfg, exec, planner).map(|(ex, _)| ex)
        }
    }
}

/// The original explore pipeline: one group-by kernel invocation per
/// facet per space. Kept verbatim as the oracle the fused pipeline is
/// equivalence-tested against.
#[allow(clippy::too_many_arguments)]
fn explore_per_facet(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    measure: &Measure,
    cfg: &FacetConfig,
    exec: &ExecConfig,
    planner: &Planner,
) -> Result<Exploration, KdapError> {
    let schema = wh.schema();
    let rups = try_rollup_spaces_planned(wh, jidx, net, planner, exec)?;
    let total_aggregate = sub.aggregate_exec(wh, measure, cfg.agg, exec)?;

    // Hit codes per attribute (to pin hit instances).
    let mut hit_codes: std::collections::HashMap<ColRef, HashSet<u32>> =
        std::collections::HashMap::new();
    for c in &net.constraints {
        hit_codes
            .entry(c.group.attr)
            .or_default()
            .extend(c.group.codes());
    }

    let mut dims: Vec<&kdap_warehouse::Dimension> = schema.dimensions().iter().collect();
    dims.sort_by(|a, b| a.name.cmp(&b.name));

    // Stage 1: score every group-by candidate of every dimension. The
    // tasks flatten into one pool so narrow dimensions don't leave
    // workers idle while a wide one finishes.
    let tasks: Vec<(usize, AttrTask)> = dims
        .iter()
        .enumerate()
        .flat_map(|(di, dim)| {
            collect_attr_tasks(wh, net, dim)
                .into_iter()
                .map(move |t| (di, t))
        })
        .collect();
    let results = par_map(exec, &tasks, |_, (_, task)| {
        evaluate_attr_task(wh, jidx, sub, &rups, measure, cfg, task)
    });

    // Reassemble the per-dimension rankings (tasks are grouped by
    // dimension in task order) and select the top-k attributes.
    let mut per_dim: Vec<(Vec<AttrTask>, Vec<Option<RankedAttr>>)> =
        (0..dims.len()).map(|_| (Vec::new(), Vec::new())).collect();
    for ((di, task), result) in tasks.into_iter().zip(results) {
        per_dim[di].0.push(task);
        per_dim[di].1.push(result);
    }
    let mut selected: Vec<(usize, RankedAttr)> = Vec::new();
    for (di, (dim, (dim_tasks, dim_results))) in dims.iter().zip(per_dim).enumerate() {
        let ranked = assemble_ranked(dim, cfg, &dim_tasks, dim_results);
        for ra in ranked.into_iter().take(cfg.top_k_attrs) {
            selected.push((di, ra));
        }
    }

    // Stage 2: build the entries of every selected attribute (instance
    // ranking for categorical, Algorithm 2 merging for numerical).
    let entry_lists = par_map(exec, &selected, |_, (_, ra)| {
        match (&ra.kind, &ra.numeric) {
            (AttrKind::Categorical, _) => {
                let empty = HashSet::new();
                let hits = hit_codes.get(&ra.attr).unwrap_or(&empty);
                rank_instances(wh, jidx, sub, &rups, &ra.path, ra.attr, measure, cfg, hits)
                    .into_iter()
                    .take(cfg.top_k_instances)
                    .map(|ri| FacetEntry {
                        label: ri.label.to_string(),
                        aggregate: ri.aggregate,
                        score: ri.score,
                        is_hit: ri.is_hit,
                    })
                    .collect()
            }
            (AttrKind::Numerical, Some(series)) => numeric_entries(series, cfg),
            (AttrKind::Numerical, None) => Vec::new(),
        }
    });

    let mut panels = Vec::new();
    for ((di, ra), entries) in selected.into_iter().zip(entry_lists) {
        let facet_attr = FacetAttr {
            attr: ra.attr,
            name: wh.col_name(ra.attr),
            kind: ra.kind,
            correlation: ra.correlation,
            score: ra.score,
            promoted: ra.promoted,
            entries,
        };
        let dimension = dims[di].name.clone();
        match panels.last_mut() {
            Some(FacetPanel {
                dimension: d,
                attrs,
            }) if *d == dimension => attrs.push(facet_attr),
            _ => panels.push(FacetPanel {
                dimension,
                attrs: vec![facet_attr],
            }),
        }
    }

    Ok(Exploration {
        subspace_size: sub.len(),
        total_aggregate,
        panels,
    })
}

/// Merges the basic intervals of a numerical attribute into display
/// ranges (Algorithm 2) and renders them as facet entries in natural
/// order.
pub(crate) fn numeric_entries(series: &NumericSeries, cfg: &FacetConfig) -> Vec<FacetEntry> {
    let mut anneal_cfg = cfg.anneal.clone();
    anneal_cfg.target_intervals = cfg.display_intervals;
    let merged = merge_intervals(&series.ds, &series.rup, &anneal_cfg);
    let m = series.ds.len();
    merged
        .ranges(m)
        .into_iter()
        .filter(|(s, e)| e > s)
        .map(|(s, e)| {
            let (lo, _) = series.bucketizer.bounds(s);
            let (_, hi) = series.bucketizer.bounds(e - 1);
            FacetEntry {
                label: format!("{} – {}", fmt_num(lo), fmt_num(hi)),
                aggregate: series.ds[s..e].iter().sum(),
                score: 0.0,
                is_hit: false,
            }
        })
        .collect()
}

fn fmt_num(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::testutil::ebiz_fixture;

    fn explore_query(query: &[&str], needle: &str, cfg: &FacetConfig) -> Exploration {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, query, &GenConfig::default());
        let net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains(needle))
            .expect("net found");
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        explore(&fx.wh, &fx.jidx, net, &measure, cfg).unwrap()
    }

    #[test]
    fn exploration_reports_subspace_and_total() {
        let ex = explore_query(&["columbus"], "STORE → LOC", &FacetConfig::default());
        // Columbus-store items: rows 0,1,4,5 → revenue 1000+800+900+1300.
        assert_eq!(ex.subspace_size, 4);
        assert_eq!(ex.total_aggregate, 4000.0);
    }

    #[test]
    fn panels_are_in_alphabetical_dimension_order() {
        let ex = explore_query(&["columbus"], "STORE → LOC", &FacetConfig::default());
        let names: Vec<&str> = ex.panels.iter().map(|p| p.dimension.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.contains(&"Product"));
        assert!(names.contains(&"Store"));
    }

    #[test]
    fn hit_attribute_is_promoted_in_its_dimension() {
        let ex = explore_query(&["columbus"], "STORE → LOC", &FacetConfig::default());
        let store_panel = ex.panels.iter().find(|p| p.dimension == "Store").unwrap();
        assert!(store_panel.attrs[0].promoted);
        assert_eq!(store_panel.attrs[0].name, "LOC.City");
        // The hit instance is pinned first and flagged.
        let first = &store_panel.attrs[0].entries[0];
        assert_eq!(first.label, "Columbus");
        assert!(first.is_hit);
    }

    #[test]
    fn categorical_entries_carry_subspace_aggregates() {
        let ex = explore_query(&["columbus"], "STORE → LOC", &FacetConfig::default());
        let product = ex.panels.iter().find(|p| p.dimension == "Product").unwrap();
        let group_attr = product
            .attrs
            .iter()
            .find(|a| a.name == "PGROUP.GroupName")
            .expect("group-name facet present");
        let total: f64 = group_attr.entries.iter().map(|e| e.aggregate).sum();
        // Partitions of DS′ sum to the DS′ total.
        assert_eq!(total, ex.total_aggregate);
    }

    #[test]
    fn numeric_attribute_produces_merged_ranges() {
        let cfg = FacetConfig {
            top_k_attrs: 5,
            n_basic_intervals: 10,
            display_intervals: 2,
            ..FacetConfig::default()
        };
        let ex = explore_query(&["columbus"], "STORE → LOC", &cfg);
        let product = ex.panels.iter().find(|p| p.dimension == "Product").unwrap();
        let price = product
            .attrs
            .iter()
            .find(|a| a.name == "PROD.ListPrice")
            .expect("numeric facet present");
        assert_eq!(price.kind, AttrKind::Numerical);
        assert!(!price.entries.is_empty());
        assert!(price.entries.len() <= 2);
        // Range aggregates also sum to the subspace total.
        let total: f64 = price.entries.iter().map(|e| e.aggregate).sum();
        assert_eq!(total, ex.total_aggregate);
        // Labels look like "lo – hi".
        assert!(price.entries[0].label.contains('–'));
    }

    #[test]
    fn consistent_order_follows_schema_declaration() {
        let cfg = FacetConfig {
            top_k_attrs: 10,
            order: FacetOrder::Consistent,
            ..FacetConfig::default()
        };
        let ex = explore_query(&["columbus"], "STORE → LOC", &cfg);
        let product = ex.panels.iter().find(|p| p.dimension == "Product").unwrap();
        // Non-promoted attrs appear in groupby-candidate declaration
        // order: GroupName, Name, ListPrice (the fixture's Product dim).
        let non_promoted: Vec<&str> = product
            .attrs
            .iter()
            .filter(|a| !a.promoted)
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(
            non_promoted,
            vec!["PGROUP.GroupName", "PROD.Name", "PROD.ListPrice"]
        );
    }

    #[test]
    fn hybrid_order_pins_leading_attributes() {
        let cfg = FacetConfig {
            top_k_attrs: 10,
            order: FacetOrder::Hybrid { pinned: 1 },
            ..FacetConfig::default()
        };
        let ex = explore_query(&["columbus"], "STORE → LOC", &cfg);
        let product = ex.panels.iter().find(|p| p.dimension == "Product").unwrap();
        let non_promoted: Vec<&str> = product
            .attrs
            .iter()
            .filter(|a| !a.promoted)
            .map(|a| a.name.as_str())
            .collect();
        // First declared candidate is pinned; the rest are dynamic.
        assert_eq!(non_promoted[0], "PGROUP.GroupName");
    }

    #[test]
    fn top_k_limits_attribute_count() {
        let cfg = FacetConfig {
            top_k_attrs: 1,
            ..FacetConfig::default()
        };
        let ex = explore_query(&["columbus"], "STORE → LOC", &cfg);
        for p in &ex.panels {
            assert!(p.attrs.len() <= 1, "panel {} too wide", p.dimension);
        }
    }

    #[test]
    fn bellwether_mode_flips_attribute_ordering() {
        let cfg_s = FacetConfig {
            top_k_attrs: 10,
            ..FacetConfig::default()
        };
        let mut cfg_b = cfg_s.clone();
        cfg_b.mode = InterestMode::Bellwether;
        let ex_s = explore_query(&["columbus"], "STORE → LOC", &cfg_s);
        let ex_b = explore_query(&["columbus"], "STORE → LOC", &cfg_b);
        // Scores are negated between the two modes for the same attr.
        let find = |ex: &Exploration, name: &str| -> f64 {
            ex.panels
                .iter()
                .flat_map(|p| p.attrs.iter())
                .find(|a| a.name == name)
                .map(|a| a.score)
                .unwrap()
        };
        let s = find(&ex_s, "PGROUP.GroupName");
        let b = find(&ex_b, "PGROUP.GroupName");
        assert!((s + b).abs() < 1e-12);
    }

    #[test]
    fn customer_dimension_uses_constraint_consistent_path() {
        // Constrain on buyer city: the Customer facet should follow the
        // buyer path, not the seller path.
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["seattle"], &GenConfig::default());
        let buyer_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("(Buyer)"))
            .unwrap();
        let dim = fx.wh.schema().dimension_by_name("Customer").unwrap();
        let loc = fx.wh.table_id("LOC").unwrap();
        let path = path_for_attr(&fx.wh, buyer_net, dim, loc).unwrap();
        assert!(path
            .display(&fx.wh, fx.wh.schema().fact_table())
            .contains("(Buyer)"));
    }
}
