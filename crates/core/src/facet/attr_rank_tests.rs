//! Direct tests of the group-by attribute ranking (§5.2) — the facet
//! integration tests in `facet::mod` cover the pipeline; these pin the
//! ranking mechanics in isolation.
#![cfg(test)]

use kdap_query::paths_between;
use kdap_warehouse::AttrKind;

use crate::facet::{path_for_attr, rank_dimension_attrs, FacetConfig};
use crate::interest::InterestMode;
use crate::interpret::{generate_star_nets, GenConfig, StarNet};
use crate::rollup::rollup_spaces;
use crate::subspace::materialize;
use crate::testutil::{ebiz_fixture, Fixture};

fn store_net(fx: &Fixture) -> StarNet {
    generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default())
        .into_iter()
        .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
        .unwrap()
}

fn ranked_for_dim(
    fx: &Fixture,
    net: &StarNet,
    dim_name: &str,
    cfg: &FacetConfig,
) -> Vec<crate::facet::RankedAttr> {
    let sub = materialize(&fx.wh, &fx.jidx, net);
    let rups = rollup_spaces(&fx.wh, &fx.jidx, net);
    let dim = fx.wh.schema().dimension_by_name(dim_name).unwrap();
    let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
    rank_dimension_attrs(&fx.wh, &fx.jidx, net, &sub, &rups, dim, &measure, cfg)
}

#[test]
fn scores_equal_mode_applied_correlation() {
    let fx = ebiz_fixture();
    let net = store_net(&fx);
    let cfg = FacetConfig::default();
    for ra in ranked_for_dim(&fx, &net, "Product", &cfg) {
        assert!((ra.score - InterestMode::Surprise.attr_score(ra.correlation)).abs() < 1e-12);
        // Floating-point: |corr| may exceed 1 by an ulp.
        assert!(ra.correlation.abs() <= 1.0 + 1e-12, "{}", ra.correlation);
    }
}

#[test]
fn numeric_candidates_carry_series_for_the_merge_phase() {
    let fx = ebiz_fixture();
    let net = store_net(&fx);
    let cfg = FacetConfig {
        n_basic_intervals: 12,
        ..FacetConfig::default()
    };
    let ranked = ranked_for_dim(&fx, &net, "Product", &cfg);
    let price = ranked
        .iter()
        .find(|ra| ra.kind == AttrKind::Numerical)
        .expect("ListPrice candidate present");
    let series = price.numeric.as_ref().expect("series kept");
    assert_eq!(series.ds.len(), 12);
    assert_eq!(series.rup.len(), 12);
    assert_eq!(series.bucketizer.n_buckets(), 12);
    // Basic-interval sums cover the whole subspace aggregate.
    let sub = materialize(&fx.wh, &fx.jidx, &net);
    let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
    let total = sub.aggregate(&fx.wh, &measure, kdap_query::AggFunc::Sum);
    let sum: f64 = series.ds.iter().sum();
    assert!((sum - total).abs() < 1e-9);
}

#[test]
fn categorical_candidates_have_no_series() {
    let fx = ebiz_fixture();
    let net = store_net(&fx);
    let ranked = ranked_for_dim(&fx, &net, "Product", &FacetConfig::default());
    for ra in ranked.iter().filter(|r| r.kind == AttrKind::Categorical) {
        assert!(ra.numeric.is_none());
    }
}

#[test]
fn path_for_attr_rejects_foreign_dimension_routes() {
    // LOC is shared by Store and Customer; asking for a Store-dimension
    // path must never return a Buyer/Seller route.
    let fx = ebiz_fixture();
    let net = store_net(&fx);
    let store_dim = fx.wh.schema().dimension_by_name("Store").unwrap();
    let loc = fx.wh.table_id("LOC").unwrap();
    let p = path_for_attr(&fx.wh, &net, store_dim, loc).unwrap();
    let d = p.display(&fx.wh, fx.wh.schema().fact_table());
    assert!(d.contains("STORE"), "{d}");
    assert!(!d.contains("ACCT"), "{d}");
}

#[test]
fn path_for_attr_unreachable_table_is_none() {
    let fx = ebiz_fixture();
    let net = store_net(&fx);
    // The Time dimension never reaches PROD.
    let time_dim = fx.wh.schema().dimension_by_name("Time").unwrap();
    let prod = fx.wh.table_id("PROD").unwrap();
    assert!(path_for_attr(&fx.wh, &net, time_dim, prod).is_none());
}

#[test]
fn unconstrained_dimension_prefers_shortest_path() {
    let fx = ebiz_fixture();
    // No constraints at all: Customer paths to LOC have length 4 via both
    // roles; the deterministic pick must still be stable.
    let net = StarNet {
        constraints: vec![],
    };
    let cust_dim = fx.wh.schema().dimension_by_name("Customer").unwrap();
    let loc = fx.wh.table_id("LOC").unwrap();
    let a = path_for_attr(&fx.wh, &net, cust_dim, loc).unwrap();
    let b = path_for_attr(&fx.wh, &net, cust_dim, loc).unwrap();
    assert_eq!(a, b, "deterministic");
    let all = paths_between(fx.wh.schema(), fx.wh.schema().fact_table(), loc, 8);
    assert!(all.contains(&a));
}

#[test]
fn promoted_attr_uses_the_constraint_path() {
    let fx = ebiz_fixture();
    // Constrain via the Buyer path, then rank Customer facets: the
    // promoted City attribute must ride the Buyer path, not Seller's.
    let net = generate_star_nets(&fx.wh, &fx.index, &["seattle"], &GenConfig::default())
        .into_iter()
        .find(|n| n.display(&fx.wh).contains("(Buyer)"))
        .unwrap();
    let ranked = ranked_for_dim(&fx, &net, "Customer", &FacetConfig::default());
    let promoted = ranked
        .iter()
        .find(|r| r.promoted)
        .expect("hit attr promoted");
    let d = promoted.path.display(&fx.wh, fx.wh.schema().fact_table());
    assert!(d.contains("(Buyer)"), "{d}");
}
