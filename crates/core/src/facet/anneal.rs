//! Numerical domain partitioning by simulated annealing (paper §5.3.2,
//! Algorithm 2).
//!
//! Given the `m` *basic intervals* computed during attribute ranking
//! (aggregation series over DS′ and RUP(DS′)), merge adjacent intervals
//! into `K` display ranges such that
//!
//! 1. `K` is small enough for human browsing,
//! 2. no merged range spans more than `L×` the basic intervals of the
//!    smallest range (skew constraint), and
//! 3. the correlation computed over the merged series stays as close as
//!    possible to the correlation over the basic intervals.
//!
//! The algorithm starts from equal-width splitting; each step proposes a
//! neighbor (one split point moved by one basic interval), keeps it as the
//! best-so-far when it shrinks the correlation error, and randomly accepts
//! it as the current state to escape local optima — exactly Algorithm 2 as
//! printed. The whole search runs on in-memory arrays and never touches
//! the storage engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::interest::pearson;

/// Tuning parameters for Algorithm 2.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Target number of merged ranges `K`.
    pub target_intervals: usize,
    /// Skew limit `L`: largest range ≤ `L ×` smallest range (in basic
    /// intervals).
    pub skew_limit: f64,
    /// Iteration count `N`.
    pub iterations: usize,
    /// Probability of accepting a proposed neighbor as the *current*
    /// state (Algorithm 2 line 14, `RANDOM() > some constant` with
    /// constant = 1 − accept_prob).
    pub accept_prob: f64,
    /// RNG seed — runs are deterministic for a given seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            target_intervals: 5,
            skew_limit: 4.0,
            iterations: 500,
            accept_prob: 0.5,
            seed: 0x5EED,
        }
    }
}

/// Result of the interval merge.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// `K−1` split positions: range `r` covers basic intervals
    /// `[splits[r−1], splits[r])` (with sentinels 0 and `m`).
    pub splits: Vec<usize>,
    /// |corr(merged) − corr(basic)| of the best scheme found.
    pub error: f64,
    /// Correlation over the basic intervals (the reference value).
    pub base_corr: f64,
    /// Best error after each iteration (drives the Fig. 7 convergence
    /// curves).
    pub history: Vec<f64>,
}

impl MergeResult {
    /// Ranges as `(start, end)` basic-interval index pairs.
    pub fn ranges(&self, m: usize) -> Vec<(usize, usize)> {
        let mut bounds = Vec::with_capacity(self.splits.len() + 2);
        bounds.push(0);
        bounds.extend_from_slice(&self.splits);
        bounds.push(m);
        bounds.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

/// Sums `series` over the ranges defined by `splits`.
pub fn merge_series(series: &[f64], splits: &[usize]) -> Vec<f64> {
    let mut out = Vec::with_capacity(splits.len() + 1);
    let mut start = 0usize;
    for &s in splits.iter().chain(std::iter::once(&series.len())) {
        out.push(series[start..s].iter().sum());
        start = s;
    }
    out
}

fn satisfies_skew(splits: &[usize], m: usize, l: f64) -> bool {
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut start = 0usize;
    for &s in splits.iter().chain(std::iter::once(&m)) {
        let len = s - start;
        min_len = min_len.min(len);
        max_len = max_len.max(len);
        start = s;
    }
    min_len > 0 && (max_len as f64) <= l * (min_len as f64)
}

fn scheme_error(x: &[f64], y: &[f64], splits: &[usize], base_corr: f64) -> f64 {
    let corr = pearson(&merge_series(x, splits), &merge_series(y, splits));
    (corr - base_corr).abs()
}

/// Runs Algorithm 2 on the basic-interval series `x` (DS′) and `y`
/// (RUP(DS′)).
///
/// Panics when the series lengths differ. When `m ≤ K` the basic
/// intervals are returned unmerged with zero error.
pub fn merge_intervals(x: &[f64], y: &[f64], cfg: &AnnealConfig) -> MergeResult {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let m = x.len();
    let k = cfg.target_intervals.max(1);
    let base_corr = pearson(x, y);
    if m <= k {
        return MergeResult {
            splits: (1..m).collect(),
            error: 0.0,
            base_corr,
            history: vec![0.0; cfg.iterations],
        };
    }

    // Line 3: equal-width initial splitting.
    let init: Vec<usize> = (1..k).map(|i| i * m / k).collect();
    let mut csp = init.clone();
    let mut bsp = init;
    let mut best_err = scheme_error(x, y, &bsp, base_corr);
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for _ in 0..cfg.iterations {
        // Line 7: a valid neighbor of CSP — one split point nudged by one
        // basic interval. A few proposals are tried; when the constraint
        // rejects all of them the iteration is a no-op.
        let mut temp: Option<Vec<usize>> = None;
        for _attempt in 0..16 {
            let mut cand = csp.clone();
            let i = rng.gen_range(0..cand.len());
            let delta: isize = if rng.gen_bool(0.5) { 1 } else { -1 };
            let lo = if i == 0 { 0 } else { cand[i - 1] };
            let hi = if i + 1 == cand.len() { m } else { cand[i + 1] };
            let moved = cand[i] as isize + delta;
            if moved <= lo as isize || moved >= hi as isize {
                continue;
            }
            cand[i] = moved as usize;
            if satisfies_skew(&cand, m, cfg.skew_limit) {
                temp = Some(cand);
                break;
            }
        }
        if let Some(temp) = temp {
            let a = scheme_error(x, y, &temp, base_corr);
            // Lines 11–13: keep the best scheme seen.
            if a < best_err {
                best_err = a;
                bsp = temp.clone();
            }
            // Line 14: random acceptance into the current state.
            if rng.gen::<f64>() < cfg.accept_prob {
                csp = temp;
            }
        }
        history.push(best_err);
    }

    MergeResult {
        splits: bsp,
        error: best_err,
        base_corr,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_series(m: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..m).map(|i| 2.0 * i as f64 + 1.0).collect();
        (x, y)
    }

    #[test]
    fn merge_series_sums_segments() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(merge_series(&s, &[2, 4]), vec![3.0, 7.0, 5.0]);
        assert_eq!(merge_series(&s, &[]), vec![15.0]);
    }

    #[test]
    fn skew_constraint_checks_extremes() {
        // Segments of 1, 1, 8 over m=10: 8 > 3×1.
        assert!(!satisfies_skew(&[1, 2], 10, 3.0));
        // Segments 3, 3, 4: fine for L=2.
        assert!(satisfies_skew(&[3, 6], 10, 2.0));
    }

    #[test]
    fn perfectly_correlated_series_stay_perfect() {
        let (x, y) = linear_series(40);
        let r = merge_intervals(&x, &y, &AnnealConfig::default());
        assert!((r.base_corr - 1.0).abs() < 1e-9);
        // Any merge of a linear pair stays perfectly correlated.
        assert!(r.error < 1e-9);
    }

    #[test]
    fn error_history_is_monotone_nonincreasing() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 37) % 23) as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 17) % 19) as f64).collect();
        let r = merge_intervals(&x, &y, &AnnealConfig::default());
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
        assert_eq!(r.history.len(), 500);
    }

    #[test]
    fn annealing_improves_on_equal_width_start() {
        // A deliberately lumpy pair where equal-width splitting distorts
        // the correlation.
        let x: Vec<f64> = (0..50)
            .map(|i| if i % 7 == 0 { 50.0 } else { i as f64 })
            .collect();
        let y: Vec<f64> = (0..50)
            .map(|i| if i % 11 == 0 { 80.0 } else { (50 - i) as f64 })
            .collect();
        let base = pearson(&x, &y);
        let init: Vec<usize> = (1..5).map(|i| i * 50 / 5).collect();
        let initial_err = scheme_error(&x, &y, &init, base);
        let cfg = AnnealConfig {
            iterations: 1000,
            ..AnnealConfig::default()
        };
        let r = merge_intervals(&x, &y, &cfg);
        assert!(r.error <= initial_err);
        assert!(r.error < initial_err, "should strictly improve here");
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let x: Vec<f64> = (0..40).map(|i| ((i * 13) % 11) as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| ((i * 7) % 13) as f64).collect();
        let cfg = AnnealConfig::default();
        let a = merge_intervals(&x, &y, &cfg);
        let b = merge_intervals(&x, &y, &cfg);
        assert_eq!(a.splits, b.splits);
        assert_eq!(a.error, b.error);
    }

    #[test]
    fn splits_respect_skew_constraint() {
        let x: Vec<f64> = (0..40).map(|i| (i as f64).sin().abs() * 10.0).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64).cos().abs() * 10.0).collect();
        let cfg = AnnealConfig {
            skew_limit: 2.0,
            ..AnnealConfig::default()
        };
        let r = merge_intervals(&x, &y, &cfg);
        assert!(satisfies_skew(&r.splits, 40, 2.0));
    }

    #[test]
    fn tiny_domains_pass_through() {
        let r = merge_intervals(&[1.0, 2.0], &[2.0, 3.0], &AnnealConfig::default());
        assert_eq!(r.splits, vec![1]);
        assert_eq!(r.error, 0.0);
        assert_eq!(r.ranges(2), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn ranges_partition_the_domain() {
        let (x, y) = linear_series(37);
        let cfg = AnnealConfig {
            target_intervals: 6,
            ..AnnealConfig::default()
        };
        let r = merge_intervals(&x, &y, &cfg);
        let ranges = r.ranges(37);
        assert_eq!(ranges.len(), 6);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 37);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
