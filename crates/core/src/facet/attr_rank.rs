//! Group-by attribute ranking via roll-up partitioning (paper §5.2).
//!
//! Each candidate attribute partitions both DS′ and RUP(DS′); the two
//! aggregation series are compared by Pearson correlation (Eq. 1). Only
//! segments that exist in DS′ participate (`PAR(RUP(DS′), attr)` is
//! restricted to `DOM(DS′, attr)`). With several roll-up spaces the worst
//! (lowest) correlation is kept. Hit-group attributes of the dimension are
//! *promoted*: always shown, independent of their score (§5.2.1).

use std::collections::HashMap;

use kdap_query::{
    group_by_buckets, group_by_categorical, paths_between, project_categorical, project_numeric,
    Bucketizer, JoinIndex, JoinPath,
};
use kdap_warehouse::{AttrKind, ColRef, Dimension, Measure, Warehouse};

use crate::facet::FacetConfig;
use crate::interest::{combine_correlations, pearson};
use crate::interpret::StarNet;
use crate::subspace::Subspace;

/// Basic-interval series of a numerical candidate, kept for the display
/// merge phase (Algorithm 2 runs on these without further DBMS access).
#[derive(Debug, Clone)]
pub struct NumericSeries {
    /// The basic-interval partitioning of the domain.
    pub bucketizer: Bucketizer,
    /// Aggregation per basic interval over DS′.
    pub ds: Vec<f64>,
    /// Aggregation per basic interval over the worst-correlated RUP space.
    pub rup: Vec<f64>,
}

/// One ranked group-by candidate.
#[derive(Debug, Clone)]
pub struct RankedAttr {
    /// The candidate attribute.
    pub attr: ColRef,
    /// Categorical or numerical.
    pub kind: AttrKind,
    /// The join path used to reach the attribute from the fact table.
    pub path: JoinPath,
    /// Combined (worst-case) correlation against the roll-up spaces.
    pub correlation: f64,
    /// Interestingness under the configured mode.
    pub score: f64,
    /// True for hit-group attributes, which are always selected.
    pub promoted: bool,
    /// Present for numerical candidates.
    pub numeric: Option<NumericSeries>,
}

/// Chooses the join path used to evaluate an attribute of `dim`.
///
/// Paths are restricted to those entering `dim` (so a Customer-dimension
/// attribute on the shared LOC table is not reached through the Store
/// join). When the star net already constrains this dimension, the path
/// sharing the longest prefix with that constraint is preferred — a
/// buyer-city constraint makes buyer-side facets, not seller-side ones.
pub fn path_for_attr(
    wh: &Warehouse,
    net: &StarNet,
    dim: &Dimension,
    attr_table: kdap_warehouse::TableId,
) -> Option<JoinPath> {
    let schema = wh.schema();
    let fact = schema.fact_table();
    let mut paths: Vec<JoinPath> =
        paths_between(schema, fact, attr_table, kdap_query::MAX_PATH_LEN)
            .into_iter()
            .filter(|p| p.dimension(schema) == Some(dim.id) || (p.is_empty() && attr_table == fact))
            .collect();
    if paths.is_empty() {
        return None;
    }
    let constraint_paths: Vec<&JoinPath> = net
        .constraints
        .iter()
        .filter(|c| c.path.dimension(schema) == Some(dim.id))
        .map(|c| &c.path)
        .collect();
    if !constraint_paths.is_empty() {
        paths.sort_by_key(|p| {
            let best_shared = constraint_paths
                .iter()
                .map(|cp| shared_prefix(p, cp))
                .max()
                .unwrap_or(0);
            (std::cmp::Reverse(best_shared), p.len())
        });
    } else {
        paths.sort_by_key(|p| p.len());
    }
    paths.into_iter().next()
}

fn shared_prefix(a: &JoinPath, b: &JoinPath) -> usize {
    a.edges()
        .iter()
        .zip(b.edges())
        .take_while(|(x, y)| x == y)
        .count()
}

/// One attribute-evaluation unit of work: a promoted (hit) attribute with
/// the constraint's own path, or a declared group-by candidate with its
/// chosen path. Tasks are collected up front so the explore phase can
/// score them across worker threads; evaluation is a pure function of the
/// task, so the assembled ranking is identical for every thread count.
#[derive(Debug, Clone)]
pub(crate) struct AttrTask {
    pub attr: ColRef,
    pub kind: AttrKind,
    pub path: JoinPath,
    pub promoted: bool,
}

/// Collects the evaluation tasks of one dimension: promoted hit
/// attributes first (constraint paths), then declared candidates in
/// schema order (preferred paths). Duplicates are resolved at assembly.
pub(crate) fn collect_attr_tasks(wh: &Warehouse, net: &StarNet, dim: &Dimension) -> Vec<AttrTask> {
    let schema = wh.schema();
    let fact = schema.fact_table();
    let mut tasks = Vec::new();
    for c in &net.constraints {
        if c.path.dimension(schema) == Some(dim.id) {
            let kind = dim
                .groupby_candidates
                .iter()
                .find(|g| g.attr == c.group.attr)
                .map(|g| g.kind)
                .unwrap_or(AttrKind::Categorical);
            tasks.push(AttrTask {
                attr: c.group.attr,
                kind,
                path: c.path.clone(),
                promoted: true,
            });
        }
    }
    for cand in &dim.groupby_candidates {
        let Some(path) = path_for_attr(wh, net, dim, cand.attr.table) else {
            continue;
        };
        debug_assert_eq!(path.target_table(schema, fact), cand.attr.table);
        tasks.push(AttrTask {
            attr: cand.attr,
            kind: cand.kind,
            path,
            promoted: false,
        });
    }
    tasks
}

/// Scores one task against the roll-up spaces. Pure: no shared mutable
/// state, safe to run from any worker thread.
pub(crate) fn evaluate_attr_task(
    wh: &Warehouse,
    jidx: &JoinIndex,
    sub: &Subspace,
    rups: &[Subspace],
    measure: &Measure,
    cfg: &FacetConfig,
    task: &AttrTask,
) -> Option<RankedAttr> {
    let scored = match task.kind {
        AttrKind::Categorical => {
            score_categorical(wh, jidx, sub, rups, &task.path, task.attr, measure, cfg)
                .map(|corr| (corr, None))
        }
        AttrKind::Numerical => {
            score_numerical(wh, jidx, sub, rups, &task.path, task.attr, measure, cfg)
                .map(|(corr, series)| (corr, Some(series)))
        }
    };
    scored.map(|(correlation, numeric)| RankedAttr {
        attr: task.attr,
        kind: task.kind,
        path: task.path.clone(),
        correlation,
        score: cfg.mode.attr_score(correlation),
        promoted: task.promoted,
        numeric,
    })
}

/// Assembles evaluated tasks into the final per-dimension ranking:
/// first successful evaluation per attribute wins (promoted tasks come
/// first in task order), then the configured ordering policy applies.
pub(crate) fn assemble_ranked(
    dim: &Dimension,
    cfg: &FacetConfig,
    tasks: &[AttrTask],
    results: Vec<Option<RankedAttr>>,
) -> Vec<RankedAttr> {
    let mut out: Vec<RankedAttr> = Vec::new();
    let mut covered: Vec<ColRef> = Vec::new();
    for (task, result) in tasks.iter().zip(results) {
        if covered.contains(&task.attr) {
            continue;
        }
        if let Some(r) = result {
            covered.push(task.attr);
            out.push(r);
        }
    }
    sort_ranked(dim, cfg, &mut out);
    out
}

/// Ranks the group-by candidates of one dimension against the roll-up
/// spaces. Promoted (hit) attributes come first; the rest are ordered by
/// descending interestingness.
#[allow(clippy::too_many_arguments)]
pub fn rank_dimension_attrs(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    sub: &Subspace,
    rups: &[Subspace],
    dim: &Dimension,
    measure: &Measure,
    cfg: &FacetConfig,
) -> Vec<RankedAttr> {
    let tasks = collect_attr_tasks(wh, net, dim);
    let results: Vec<Option<RankedAttr>> = tasks
        .iter()
        .map(|t| evaluate_attr_task(wh, jidx, sub, rups, measure, cfg, t))
        .collect();
    assemble_ranked(dim, cfg, &tasks, results)
}

/// Sorts a ranking in place: promoted first (they anchor navigation),
/// then by the configured ordering policy (§7: dynamic / consistent /
/// hybrid).
fn sort_ranked(dim: &Dimension, cfg: &FacetConfig, out: &mut [RankedAttr]) {
    let declared_pos = |attr: ColRef| -> usize {
        dim.groupby_candidates
            .iter()
            .position(|g| g.attr == attr)
            .unwrap_or(usize::MAX)
    };
    match cfg.order {
        crate::facet::FacetOrder::Dynamic => out.sort_by(|a, b| {
            b.promoted.cmp(&a.promoted).then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        }),
        crate::facet::FacetOrder::Consistent => out.sort_by(|a, b| {
            b.promoted
                .cmp(&a.promoted)
                .then(declared_pos(a.attr).cmp(&declared_pos(b.attr)))
        }),
        crate::facet::FacetOrder::Hybrid { pinned } => out.sort_by(|a, b| {
            let key = |r: &RankedAttr| {
                let pos = declared_pos(r.attr);
                // Pinned attributes stay in declaration order ahead of
                // the dynamic tail.
                (if pos < pinned { pos } else { pinned }, pos < pinned)
            };
            b.promoted.cmp(&a.promoted).then_with(|| {
                let (ka, pa) = key(a);
                let (kb, pb) = key(b);
                ka.cmp(&kb).then(pb.cmp(&pa)).then_with(|| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            })
        }),
    }
}

/// The Eq. 1 correlation of one categorical attribute from precomputed
/// group-by maps: the DS′ and RUP series are built over `DOM(DS′, attr)`
/// only (segments absent from DS′ are not compared) and combined to the
/// worst case. Shared by the per-facet kernels (which compute the maps
/// with one scan each) and the fused kernel (which reads them out of a
/// single scan).
pub(crate) fn categorical_correlation(
    dom: &[u32],
    x_map: &HashMap<u32, f64>,
    y_maps: &[HashMap<u32, f64>],
) -> Option<f64> {
    let x: Vec<f64> = dom.iter().map(|c| *x_map.get(c).unwrap_or(&0.0)).collect();
    let corrs = y_maps.iter().map(|y_map| {
        // Restrict to DOM(DS′, attr) — segments absent from DS′ are not
        // compared.
        let y: Vec<f64> = dom.iter().map(|c| *y_map.get(c).unwrap_or(&0.0)).collect();
        pearson(&x, &y)
    });
    combine_correlations(corrs)
}

/// The worst (lowest) correlation of one bucketized numerical attribute
/// from precomputed per-interval series, restricted to intervals occupied
/// in DS′ (§5.2.1). Returns the correlation together with the full series
/// of the worst roll-up space (the display merge needs it).
pub(crate) fn numeric_worst_correlation(
    x: &[f64],
    occupancy: &[f64],
    rup_ys: &[Vec<f64>],
) -> Option<(f64, Vec<f64>)> {
    // §5.2.1: correlate only over basic intervals that exist in DS′
    // (occupied by at least one subspace fact).
    let occupied: Vec<usize> = occupancy
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0.0)
        .map(|(i, _)| i)
        .collect();
    let xs: Vec<f64> = occupied.iter().map(|&i| x[i]).collect();
    let mut worst: Option<(f64, &Vec<f64>)> = None;
    for y in rup_ys {
        let ys: Vec<f64> = occupied.iter().map(|&i| y[i]).collect();
        let corr = pearson(&xs, &ys);
        if worst.as_ref().is_none_or(|(w, _)| corr < *w) {
            worst = Some((corr, y));
        }
    }
    worst.map(|(corr, y)| (corr, y.clone()))
}

#[allow(clippy::too_many_arguments)]
fn score_categorical(
    wh: &Warehouse,
    jidx: &JoinIndex,
    sub: &Subspace,
    rups: &[Subspace],
    path: &JoinPath,
    attr: ColRef,
    measure: &Measure,
    cfg: &FacetConfig,
) -> Option<f64> {
    let fact = wh.schema().fact_table();
    let dom = project_categorical(wh, jidx, fact, path, attr, &sub.rows);
    if dom.is_empty() {
        return None;
    }
    let x_map = group_by_categorical(wh, jidx, fact, path, attr, &sub.rows, measure, cfg.agg);
    let y_maps: Vec<HashMap<u32, f64>> = rups
        .iter()
        .map(|rup| group_by_categorical(wh, jidx, fact, path, attr, &rup.rows, measure, cfg.agg))
        .collect();
    categorical_correlation(&dom, &x_map, &y_maps)
}

#[allow(clippy::too_many_arguments)]
fn score_numerical(
    wh: &Warehouse,
    jidx: &JoinIndex,
    sub: &Subspace,
    rups: &[Subspace],
    path: &JoinPath,
    attr: ColRef,
    measure: &Measure,
    cfg: &FacetConfig,
) -> Option<(f64, NumericSeries)> {
    let fact = wh.schema().fact_table();
    let values = project_numeric(wh, jidx, fact, path, attr, &sub.rows);
    let bucketizer = Bucketizer::equal_width(values, cfg.n_basic_intervals)?;
    let x = group_by_buckets(
        wh,
        jidx,
        fact,
        path,
        attr,
        &sub.rows,
        measure,
        cfg.agg,
        &bucketizer,
    );
    let occupancy = group_by_buckets(
        wh,
        jidx,
        fact,
        path,
        attr,
        &sub.rows,
        measure,
        kdap_query::AggFunc::Count,
        &bucketizer,
    );
    let rup_ys: Vec<Vec<f64>> = rups
        .iter()
        .map(|rup| {
            group_by_buckets(
                wh,
                jidx,
                fact,
                path,
                attr,
                &rup.rows,
                measure,
                cfg.agg,
                &bucketizer,
            )
        })
        .collect();
    let (corr, rup_series) = numeric_worst_correlation(&x, &occupancy, &rup_ys)?;
    Some((
        corr,
        NumericSeries {
            bucketizer,
            ds: x,
            rup: rup_series,
        },
    ))
}
