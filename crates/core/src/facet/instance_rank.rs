//! Attribute-instance ranking within a chosen group-by attribute
//! (paper §5.3.1, Eq. 2).
//!
//! The intra-attribute score of category `cat` is the deviation of its
//! share of the subspace aggregate from its share of the roll-up
//! aggregate:
//!
//! ```text
//! SCORE(cat) = G(DS′|cat) / G(DS′)  −  G(RUP|cat) / G(RUP)
//! ```
//!
//! With several roll-up spaces, the deviation of largest magnitude is
//! kept. Instances that carry query hits are pinned first — the user
//! started from them and needs them for navigation (paper §6.2, the
//! "Mountain Bikes" entry).

use std::collections::HashSet;
use std::sync::Arc;

use kdap_query::{aggregate_total, group_by_categorical, project_categorical, JoinIndex, JoinPath};
use kdap_warehouse::{ColRef, Measure, Warehouse};

use crate::facet::FacetConfig;
use crate::subspace::Subspace;

/// One ranked attribute instance.
#[derive(Debug, Clone)]
pub struct RankedInstance {
    /// Dictionary code of the instance.
    pub code: u32,
    /// The instance's text.
    pub label: Arc<str>,
    /// Aggregate of the instance's partition within DS′.
    pub aggregate: f64,
    /// `G(DS′|cat)/G(DS′)`.
    pub share: f64,
    /// The Eq. 2 deviation (worst case over roll-up spaces).
    pub deviation: f64,
    /// Mode-dependent ranking key.
    pub score: f64,
    /// True when the instance is one of the query's hits.
    pub is_hit: bool,
}

/// Ranks the instances of one categorical attribute.
#[allow(clippy::too_many_arguments)]
pub fn rank_instances(
    wh: &Warehouse,
    jidx: &JoinIndex,
    sub: &Subspace,
    rups: &[Subspace],
    path: &JoinPath,
    attr: ColRef,
    measure: &Measure,
    cfg: &FacetConfig,
    hit_codes: &HashSet<u32>,
) -> Vec<RankedInstance> {
    let fact = wh.schema().fact_table();
    let dom = project_categorical(wh, jidx, fact, path, attr, &sub.rows);
    if dom.is_empty() {
        return Vec::new();
    }
    let g_ds = aggregate_total(wh, measure, &sub.rows, cfg.agg);
    let x_map = group_by_categorical(wh, jidx, fact, path, attr, &sub.rows, measure, cfg.agg);

    // Per roll-up space: total and per-category aggregates.
    let rup_data: Vec<(f64, std::collections::HashMap<u32, f64>)> = rups
        .iter()
        .map(|rup| {
            (
                aggregate_total(wh, measure, &rup.rows, cfg.agg),
                group_by_categorical(wh, jidx, fact, path, attr, &rup.rows, measure, cfg.agg),
            )
        })
        .collect();
    let rup_refs: Vec<(f64, &std::collections::HashMap<u32, f64>)> =
        rup_data.iter().map(|(g, m)| (*g, m)).collect();
    rank_instances_from(wh, attr, &dom, &x_map, g_ds, &rup_refs, cfg, hit_codes)
}

/// The pure Eq. 2 ranking over precomputed aggregates: `dom`, the DS′
/// group-by map, the DS′ total, and per-roll-up `(total, group-by map)`
/// pairs. [`rank_instances`] computes those inputs with per-facet kernel
/// calls; the fused explore pipeline reads them out of its single scans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_instances_from(
    wh: &Warehouse,
    attr: ColRef,
    dom: &[u32],
    x_map: &std::collections::HashMap<u32, f64>,
    g_ds: f64,
    rup_data: &[(f64, &std::collections::HashMap<u32, f64>)],
    cfg: &FacetConfig,
    hit_codes: &HashSet<u32>,
) -> Vec<RankedInstance> {
    if dom.is_empty() {
        return Vec::new();
    }
    // Infallible: callers pass attributes of kind Categorical, which are
    // dictionary-encoded by construction in the warehouse.
    #[allow(clippy::expect_used)]
    let dict = wh
        .column(attr)
        .dict()
        .expect("categorical attr is a string");
    let mut out: Vec<RankedInstance> = dom
        .iter()
        .map(|&code| {
            let g_cat = *x_map.get(&code).unwrap_or(&0.0);
            let share = if g_ds.abs() > f64::EPSILON {
                g_cat / g_ds
            } else {
                0.0
            };
            // Worst-case (largest-magnitude) deviation across roll-ups.
            let deviation = rup_data
                .iter()
                .map(|(g_rup, y_map)| {
                    let rup_share = if g_rup.abs() > f64::EPSILON {
                        y_map.get(&code).unwrap_or(&0.0) / g_rup
                    } else {
                        0.0
                    };
                    share - rup_share
                })
                .fold(0.0f64, |acc, d| if d.abs() > acc.abs() { d } else { acc });
            RankedInstance {
                code,
                label: dict
                    .resolve(code)
                    .cloned()
                    .unwrap_or_else(|| Arc::from("?")),
                aggregate: g_cat,
                share,
                deviation,
                score: cfg.mode.instance_score(deviation),
                is_hit: hit_codes.contains(&code),
            }
        })
        .collect();

    out.sort_by(|a, b| {
        b.is_hit
            .cmp(&a.is_hit)
            .then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.code.cmp(&b.code))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::InterestMode;
    use crate::interpret::{generate_star_nets, GenConfig, StarNet};
    use crate::rollup::rollup_spaces;
    use crate::subspace::materialize;
    use crate::testutil::{ebiz_fixture, Fixture};

    fn setup(
        fx: &Fixture,
    ) -> (
        StarNet,
        crate::subspace::Subspace,
        Vec<crate::subspace::Subspace>,
    ) {
        let net = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default())
            .into_iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .unwrap();
        let sub = materialize(&fx.wh, &fx.jidx, &net);
        let rups = rollup_spaces(&fx.wh, &fx.jidx, &net);
        (net, sub, rups)
    }

    fn rank(fx: &Fixture, mode: InterestMode, hit_codes: &HashSet<u32>) -> Vec<RankedInstance> {
        let (_, sub, rups) = setup(fx);
        let attr = fx.wh.col_ref("PGROUP", "GroupName").unwrap();
        let fact = fx.wh.schema().fact_table();
        let path = kdap_query::paths_between(fx.wh.schema(), fact, attr.table, 8).remove(0);
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        let cfg = crate::facet::FacetConfig {
            mode,
            ..crate::facet::FacetConfig::default()
        };
        rank_instances(
            &fx.wh, &fx.jidx, &sub, &rups, &path, attr, &measure, &cfg, hit_codes,
        )
    }

    #[test]
    fn shares_sum_to_one_over_the_domain() {
        let fx = ebiz_fixture();
        let ranked = rank(&fx, InterestMode::Surprise, &HashSet::new());
        assert!(!ranked.is_empty());
        let total_share: f64 = ranked.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9, "got {total_share}");
    }

    #[test]
    fn eq2_deviation_is_share_minus_rollup_share() {
        let fx = ebiz_fixture();
        // The Columbus-store net rolls up city→state (Ohio), which in the
        // fixture is the same subspace — every deviation is exactly 0.
        let ranked = rank(&fx, InterestMode::Surprise, &HashSet::new());
        for r in &ranked {
            assert!(r.deviation.abs() < 1e-12, "{}: {}", r.label, r.deviation);
        }
    }

    #[test]
    fn hit_instances_are_pinned_first() {
        let fx = ebiz_fixture();
        let attr = fx.wh.col_ref("PGROUP", "GroupName").unwrap();
        let plasma = fx
            .wh
            .column(attr)
            .dict()
            .unwrap()
            .code_of("Plasma Displays")
            .unwrap();
        let hits: HashSet<u32> = [plasma].into_iter().collect();
        let ranked = rank(&fx, InterestMode::Surprise, &hits);
        assert_eq!(ranked[0].label.as_ref(), "Plasma Displays");
        assert!(ranked[0].is_hit);
        assert!(ranked[1..].iter().all(|r| !r.is_hit));
    }

    #[test]
    fn modes_invert_the_ordering_key() {
        let fx = ebiz_fixture();
        let s = rank(&fx, InterestMode::Surprise, &HashSet::new());
        let b = rank(&fx, InterestMode::Bellwether, &HashSet::new());
        for (x, y) in s.iter().zip(&b) {
            // Same deviations, negated ranking keys.
            let y2 = b.iter().find(|r| r.code == x.code).unwrap();
            assert!((x.score + y2.score).abs() < 1e-12);
            let _ = y;
        }
    }

    #[test]
    fn empty_subspace_yields_no_instances() {
        let fx = ebiz_fixture();
        let attr = fx.wh.col_ref("PGROUP", "GroupName").unwrap();
        let fact = fx.wh.schema().fact_table();
        let path = kdap_query::paths_between(fx.wh.schema(), fact, attr.table, 8).remove(0);
        let measure = fx.wh.schema().measure_by_name("Revenue").unwrap().clone();
        let empty = crate::subspace::Subspace {
            rows: kdap_query::RowSet::empty(fx.wh.fact_rows()),
        };
        let cfg = crate::facet::FacetConfig::default();
        let ranked = rank_instances(
            &fx.wh,
            &fx.jidx,
            &empty,
            &[],
            &path,
            attr,
            &measure,
            &cfg,
            &HashSet::new(),
        );
        assert!(ranked.is_empty());
    }
}
