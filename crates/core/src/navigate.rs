//! OLAP navigation over star nets: drill-down, roll-up, and slicing.
//!
//! The paper's facets "enable seamless incorporation of existing OLAP
//! navigational operations — each attribute instance may serve as an
//! entry point for drill-down operations to more detailed subspaces"
//! (§3). These helpers derive a new star net from an existing one, so a
//! UI (or the examples) can walk the aggregation space without going back
//! through keyword interpretation.

use std::sync::Arc;

use kdap_query::{JoinIndex, JoinPath};
use kdap_warehouse::{ColRef, Warehouse};

use crate::hit::{Hit, HitGroup};
use crate::interpret::{Constraint, StarNet};
use crate::rollup::{rollup_constraint, Rollup};

/// Builds a synthetic constraint for navigation (score 1.0 — navigation
/// constraints are exact selections, not fuzzy matches).
fn nav_constraint(wh: &Warehouse, attr: ColRef, path: JoinPath, codes: Vec<u32>) -> Constraint {
    let dict = wh.column(attr).dict();
    Constraint {
        group: HitGroup {
            attr,
            hits: codes
                .iter()
                .map(|&code| Hit {
                    code,
                    value: dict
                        .and_then(|d| d.resolve(code).cloned())
                        .unwrap_or_else(|| Arc::from("?")),
                    score: 1.0,
                })
                .collect(),
            keywords: Vec::new(),
            numeric: None,
        },
        path,
    }
}

/// Drill-down: narrows the subspace to the fact points whose `attr`
/// (reached via `path`) carries one of `codes`.
///
/// When the net already constrains the same `(attr, path)`, the existing
/// constraint is *replaced* — drilling from the "Bikes" category facet
/// into "Mountain Bikes" must not AND the two into an empty slice of
/// incomparable levels; picking an instance of the displayed facet always
/// means "focus on exactly this".
pub fn drill_down(
    wh: &Warehouse,
    net: &StarNet,
    attr: ColRef,
    path: &JoinPath,
    codes: Vec<u32>,
) -> StarNet {
    let mut constraints: Vec<Constraint> = net
        .constraints
        .iter()
        .filter(|c| !(c.group.attr == attr && &c.path == path))
        .cloned()
        .collect();
    constraints.push(nav_constraint(wh, attr, path.clone(), codes));
    StarNet { constraints }
}

/// Roll-up: generalizes the `idx`-th constraint one hierarchy level
/// (Subcategory = Mountain Bikes → Category = Bikes), or removes it when
/// it is already at the top. Returns `None` when `idx` is out of range.
pub fn roll_up(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet, idx: usize) -> Option<StarNet> {
    let c = net.constraints.get(idx)?;
    let rolled = rollup_constraint(wh, jidx, c);
    let mut constraints = Vec::with_capacity(net.constraints.len());
    for (j, other) in net.constraints.iter().enumerate() {
        if j != idx {
            constraints.push(other.clone());
            continue;
        }
        match &rolled {
            Rollup::Drop => {}
            Rollup::Parent(sel) => {
                let kdap_query::Predicate::Codes(codes) = &sel.predicate else {
                    unreachable!("rollup_constraint emits code selections");
                };
                constraints.push(nav_constraint(
                    wh,
                    sel.attr,
                    sel.path.clone(),
                    codes.clone(),
                ))
            }
        }
    }
    Some(StarNet { constraints })
}

/// Slice: adds an extra conjunctive constraint without touching existing
/// ones (the classic slice-dice operation on a new dimension).
pub fn slice(
    wh: &Warehouse,
    net: &StarNet,
    attr: ColRef,
    path: &JoinPath,
    codes: Vec<u32>,
) -> StarNet {
    let mut constraints = net.constraints.clone();
    constraints.push(nav_constraint(wh, attr, path.clone(), codes));
    StarNet { constraints }
}

/// Removes the `idx`-th constraint entirely (navigating back out of a
/// slice). Returns `None` when out of range.
pub fn remove_constraint(net: &StarNet, idx: usize) -> Option<StarNet> {
    if idx >= net.constraints.len() {
        return None;
    }
    let mut constraints = net.constraints.clone();
    constraints.remove(idx);
    Some(StarNet { constraints })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::subspace::materialize;
    use crate::testutil::ebiz_fixture;

    fn store_net(fx: &crate::testutil::Fixture) -> StarNet {
        generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default())
            .into_iter()
            .find(|n| n.display(&fx.wh).contains("STORE → LOC"))
            .unwrap()
    }

    #[test]
    fn drill_down_shrinks_the_subspace() {
        let fx = ebiz_fixture();
        let net = store_net(&fx);
        let before = materialize(&fx.wh, &fx.jidx, &net);
        // Drill into the "LCD Projectors" product group.
        let attr = fx.wh.col_ref("PGROUP", "GroupName").unwrap();
        let code = fx
            .wh
            .column(attr)
            .dict()
            .unwrap()
            .code_of("LCD Projectors")
            .unwrap();
        let path =
            kdap_query::paths_between(fx.wh.schema(), fx.wh.schema().fact_table(), attr.table, 8)
                .remove(0);
        let drilled = drill_down(&fx.wh, &net, attr, &path, vec![code]);
        let after = materialize(&fx.wh, &fx.jidx, &drilled);
        assert!(after.len() < before.len());
        assert!(!after.is_empty());
        for row in after.rows.iter() {
            assert!(before.rows.contains(row), "drill-down is a refinement");
        }
    }

    #[test]
    fn drill_down_replaces_same_attribute_constraint() {
        let fx = ebiz_fixture();
        let net = store_net(&fx);
        let attr = net.constraints[0].group.attr;
        let path = net.constraints[0].path.clone();
        let seattle = fx
            .wh
            .column(attr)
            .dict()
            .unwrap()
            .code_of("Seattle")
            .unwrap();
        let moved = drill_down(&fx.wh, &net, attr, &path, vec![seattle]);
        // Still one constraint (replaced, not stacked).
        assert_eq!(moved.n_groups(), 1);
        let sub = materialize(&fx.wh, &fx.jidx, &moved);
        assert!(!sub.is_empty(), "Columbus→Seattle refocus is non-empty");
    }

    #[test]
    fn roll_up_enlarges_the_subspace() {
        let fx = ebiz_fixture();
        let net = store_net(&fx);
        let before = materialize(&fx.wh, &fx.jidx, &net);
        let rolled = roll_up(&fx.wh, &fx.jidx, &net, 0).unwrap();
        let after = materialize(&fx.wh, &fx.jidx, &rolled);
        assert!(after.len() >= before.len());
        // City rolled up to State: the constraint survives at parent level.
        assert_eq!(rolled.n_groups(), 1);
        assert_eq!(
            rolled.constraints[0].group.attr,
            fx.wh.col_ref("LOC", "State").unwrap()
        );
        assert!(roll_up(&fx.wh, &fx.jidx, &net, 9).is_none());
    }

    #[test]
    fn roll_up_at_top_level_drops_the_constraint() {
        let fx = ebiz_fixture();
        let net = generate_star_nets(&fx.wh, &fx.index, &["lcd"], &GenConfig::default())
            .into_iter()
            .find(|n| n.display(&fx.wh).contains("PGROUP"))
            .unwrap();
        let rolled = roll_up(&fx.wh, &fx.jidx, &net, 0).unwrap();
        assert_eq!(rolled.n_groups(), 0);
        let sub = materialize(&fx.wh, &fx.jidx, &rolled);
        assert_eq!(sub.len(), fx.wh.fact_rows(), "rolled up to ALL");
    }

    #[test]
    fn slice_and_remove_are_inverses() {
        let fx = ebiz_fixture();
        let net = store_net(&fx);
        let attr = fx.wh.col_ref("HOLIDAY", "Event").unwrap();
        let code = fx
            .wh
            .column(attr)
            .dict()
            .unwrap()
            .code_of("Columbus Day")
            .unwrap();
        let path =
            kdap_query::paths_between(fx.wh.schema(), fx.wh.schema().fact_table(), attr.table, 8)
                .remove(0);
        let sliced = slice(&fx.wh, &net, attr, &path, vec![code]);
        assert_eq!(sliced.n_groups(), net.n_groups() + 1);
        let sub_sliced = materialize(&fx.wh, &fx.jidx, &sliced);
        let sub_orig = materialize(&fx.wh, &fx.jidx, &net);
        assert!(sub_sliced.len() <= sub_orig.len());
        let back = remove_constraint(&sliced, sliced.n_groups() - 1).unwrap();
        assert_eq!(materialize(&fx.wh, &fx.jidx, &back).rows, sub_orig.rows);
        assert!(remove_constraint(&net, 99).is_none());
    }
}
