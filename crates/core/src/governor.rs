//! Session-facing query governance: cancellation tokens, governed
//! execution contexts, and breach bookkeeping.
//!
//! The mechanics live in [`kdap_query::QueryContext`] — a per-query
//! deadline, a cooperative cancellation flag, and a cumulative memory
//! budget polled by every chunked kernel. This module supplies the
//! session-level glue: a clonable [`CancelToken`] the REPL (or any
//! embedder) can trip from a signal handler, construction of a fresh
//! governed context per query, and recording of breaches into the obs
//! metrics registry (`governor.timeouts`, `governor.cancellations`,
//! `governor.budget_exceeded`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kdap_obs::Obs;
use kdap_query::QueryContext;

use crate::error::KdapError;

/// Obs counter bumped when a query aborts on its deadline.
pub const CTR_TIMEOUTS: &str = "governor.timeouts";
/// Obs counter bumped when a query aborts on its cancellation token.
pub const CTR_CANCELLATIONS: &str = "governor.cancellations";
/// Obs counter bumped when a query aborts on its memory budget.
pub const CTR_BUDGET_EXCEEDED: &str = "governor.budget_exceeded";

/// A clonable cancellation handle shared between a running query and
/// whoever may want to stop it (REPL signal handler, another thread).
///
/// `cancel()` is a single atomic store, safe to call from a Unix signal
/// handler. Kernels observe it cooperatively at chunk granularity, so a
/// cancelled query unwinds with [`KdapError::Cancelled`] within one
/// chunk of work rather than at an arbitrary instruction.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every query governed by this token.
    /// Async-signal-safe: one relaxed atomic store, no allocation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Re-arms the token after a cancelled query has unwound, so the
    /// next query starts uncancelled.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// True once `cancel()` has been called (and `reset()` has not).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw shared flag, for wiring into a [`QueryContext`].
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// True when a clone of this token lives outside its session — i.e.
    /// an embedder (REPL, another thread) could trip it mid-query, so
    /// queries must poll it even with no deadline or budget set.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.flag) > 1
    }
}

/// Session-level governance limits, applied to each query individually:
/// the deadline clock restarts at every `interpret`/`explore` call.
#[derive(Debug, Clone, Default)]
pub struct Governor {
    /// Per-query wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Per-query memory budget in bytes, charged by accumulator and
    /// bitmap allocations.
    pub memory_budget: Option<u64>,
    /// Cancellation token shared across all queries of the session.
    pub cancel: CancelToken,
}

impl Governor {
    /// True when no limit is configured — queries run ungoverned and
    /// kernels skip even the per-chunk branch.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.memory_budget.is_none()
    }

    /// A fresh per-query context carrying these limits. Called once at
    /// the top of each governed query so deadlines measure per-query
    /// time, not session lifetime.
    pub fn fresh_context(&self) -> Arc<QueryContext> {
        Arc::new(QueryContext::new(
            self.deadline,
            self.memory_budget,
            self.cancel.flag(),
        ))
    }
}

/// Records a governance breach in the obs metrics registry. Non-breach
/// errors pass through untouched; call this exactly once on the error
/// path of a governed query.
pub fn record_breach(obs: &Obs, err: &KdapError) {
    match err {
        KdapError::Timeout { .. } => obs.inc(CTR_TIMEOUTS, 1),
        KdapError::Cancelled { .. } => obs.inc(CTR_CANCELLATIONS, 1),
        KdapError::BudgetExceeded { .. } => obs.inc(CTR_BUDGET_EXCEEDED, 1),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled(), "clones share the flag");
        t.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn governor_builds_fresh_contexts() {
        let g = Governor {
            deadline: Some(Duration::from_secs(5)),
            memory_budget: Some(1 << 20),
            cancel: CancelToken::new(),
        };
        assert!(!g.is_unlimited());
        let ctx = g.fresh_context();
        assert!(ctx.check("stage").is_ok());
        g.cancel.cancel();
        assert!(ctx.check("stage").is_err(), "token is shared with context");
        g.cancel.reset();
        // A second context starts with a fresh deadline clock.
        assert!(g.fresh_context().check("stage").is_ok());
    }

    #[test]
    fn breaches_are_counted() {
        let obs = Obs::enabled();
        record_breach(
            &obs,
            &KdapError::Timeout {
                stage: "explore",
                elapsed_ms: 7,
            },
        );
        record_breach(&obs, &KdapError::Cancelled { stage: "semijoin" });
        record_breach(
            &obs,
            &KdapError::BudgetExceeded {
                stage: "multi_group_by",
                budget_bytes: 10,
                charged_bytes: 20,
            },
        );
        record_breach(&obs, &KdapError::NoMeasure);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters.get(CTR_TIMEOUTS), Some(&1));
        assert_eq!(snap.counters.get(CTR_CANCELLATIONS), Some(&1));
        assert_eq!(snap.counters.get(CTR_BUDGET_EXCEEDED), Some(&1));
    }
}
