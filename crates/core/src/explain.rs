//! EXPLAIN for star nets: the optimized physical plan with per-step
//! estimated vs. actual cardinalities, cache hits, and join-plan
//! description, so analysts (and the `kdap` console) can see *why* a
//! subspace has the size it does before paying for facet construction.
//!
//! The plan is produced by the same [`Planner`] that executes queries:
//! the entries appear in chosen execution order (most selective first
//! when reordering is on), fused fact-local predicates collapse into one
//! entry, and steps served from the session's semi-join cache are marked.

use kdap_obs::CacheCounters;
use kdap_query::{execute_plan_traced, ExecConfig, JoinIndex, Predicate};
use kdap_warehouse::Warehouse;

use crate::error::KdapError;
use crate::interpret::StarNet;
use crate::plan::Planner;

/// The evaluated plan of one physical step (one constraint, or several
/// fused fact-local constraints).
#[derive(Debug, Clone)]
pub struct ConstraintPlan {
    /// `Table.Attr` of the hit group(s); fused steps join names with `∧`.
    pub attr: String,
    /// The join path walked, with role labels.
    pub path: String,
    /// Number of hit instances in the group (`|HG|`), summed when fused.
    pub n_hits: usize,
    /// Fact rows this step alone selects.
    pub fact_rows: usize,
    /// `fact_rows / |fact table|`.
    pub selectivity: f64,
    /// True when the step carries a numeric-range constraint (§7
    /// extension).
    pub numeric: bool,
    /// The optimizer's estimated fact-row count (equals `fact_rows` only
    /// by luck; the gap is the estimation error).
    pub est_rows: usize,
    /// True when the step's bitmap came from the semi-join cache.
    pub cache_hit: bool,
    /// Number of logical constraints this step covers (>1 when fact-local
    /// predicates were fused into one scan).
    pub fused: usize,
}

/// The evaluated plan of a star net.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-step evaluations, in chosen execution order.
    pub constraints: Vec<ConstraintPlan>,
    /// Fact rows after intersecting all steps.
    pub subspace_size: usize,
    /// `subspace_size / |fact table|`.
    pub combined_selectivity: f64,
    /// Ratio between the most selective single step and the
    /// intersection — how much the conjunction tightened the slice.
    pub intersection_gain: f64,
}

/// Evaluates the net through a fresh fully-optimized [`Planner`].
///
/// Panics on malformed constraints (impossible for interpreter-produced
/// nets); use [`explain_planned`] to explain through a session's planner
/// and see its cache hits.
pub fn explain(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Plan {
    // Documented panic (see doc comment above); the serial ungoverned
    // config cannot breach any governance limit.
    #[allow(clippy::expect_used)]
    explain_planned(wh, jidx, net, &Planner::optimized(), &ExecConfig::serial())
        .expect("star-net constraints evaluate on the fact table")
}

/// Compiles, optimizes, and executes the net through `planner`, tracing
/// each physical step.
pub fn explain_planned(
    wh: &Warehouse,
    jidx: &JoinIndex,
    net: &StarNet,
    planner: &Planner,
    exec: &ExecConfig,
) -> Result<Plan, KdapError> {
    let fact = wh.schema().fact_table();
    let n_fact = wh.fact_rows().max(1);
    let plan = planner.plan(wh, net);
    let (rows, traces) = execute_plan_traced(wh, jidx, fact, &plan, planner.cache(), exec)?;
    let mut constraints = Vec::with_capacity(plan.steps.len());
    for (step, trace) in plan.steps.iter().zip(&traces) {
        let nodes = step.nodes();
        let attr = nodes
            .iter()
            .map(|n| wh.col_name(n.selection.attr))
            .collect::<Vec<_>>()
            .join(" ∧ ");
        let n_hits = nodes
            .iter()
            .map(|n| match &n.selection.predicate {
                Predicate::Codes(codes) => codes.len(),
                Predicate::Range { .. } => 1,
            })
            .sum();
        let numeric = nodes
            .iter()
            .any(|n| matches!(n.selection.predicate, Predicate::Range { .. }));
        constraints.push(ConstraintPlan {
            attr,
            path: nodes[0].selection.path.display(wh, fact),
            n_hits,
            fact_rows: trace.actual_rows,
            selectivity: trace.actual_rows as f64 / n_fact as f64,
            numeric,
            est_rows: trace.est_rows,
            cache_hit: trace.cache_hit,
            fused: trace.fused,
        });
    }
    let best_single = constraints
        .iter()
        .map(|c| c.fact_rows)
        .min()
        .unwrap_or(wh.fact_rows());
    let subspace_size = rows.len();
    Ok(Plan {
        constraints,
        subspace_size,
        combined_selectivity: subspace_size as f64 / n_fact as f64,
        intersection_gain: if subspace_size == 0 {
            f64::INFINITY
        } else {
            best_single as f64 / subspace_size as f64
        },
    })
}

/// Kernel choice and observed group count of one fused facet spec.
#[derive(Debug, Clone)]
pub struct FacetKernelChoice {
    /// `Table.Attr` display name of the candidate.
    pub attr: String,
    /// `dense` (accumulator array sized by dictionary cardinality),
    /// `hash` (cardinality above the dense cutoff), or `buckets`
    /// (bucketized numerical domain).
    pub kernel: String,
    /// Non-empty groups observed in the subspace.
    pub groups: usize,
}

/// Instrumentation of one fused explore run: how many row-set scans the
/// single-pass pipeline performed versus what the per-facet pipeline
/// would have paid for the same exploration, plus the dense-vs-hash
/// kernel choice per deduplicated facet spec. Produced by
/// [`Kdap::explain_explore`](crate::Kdap::explain_explore).
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Roll-up spaces of the star net (one per constraint; one full
    /// space when the net is unconstrained).
    pub rollups: usize,
    /// Attribute-evaluation tasks scored (duplicates share one spec).
    pub candidates: usize,
    /// Row-set scans the fused pipeline performed.
    pub scans_fused: usize,
    /// Row-set scans the per-facet pipeline performs for the same
    /// exploration (its actual early-exits accounted).
    pub scans_old: usize,
    /// Kernel choice per deduplicated facet spec, in evaluation order.
    pub facets: Vec<FacetKernelChoice>,
    /// Session subspace-cache counters at report time, when the session
    /// caches subspaces.
    pub subspace_cache: Option<CacheCounters>,
    /// Session semi-join-cache counters at report time, when the planner
    /// caches step bitmaps.
    pub semijoin_cache: Option<CacheCounters>,
    /// Row-mapper-cache counters of the session's join index.
    pub mapper_cache: Option<CacheCounters>,
}

impl ExploreReport {
    /// Scans avoided by fusing.
    pub fn scans_saved(&self) -> usize {
        self.scans_old.saturating_sub(self.scans_fused)
    }

    /// Human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = format!(
            "explore: {} candidates × {} roll-up space(s) → {} fused scans (per-facet: {}, saved {})\n",
            self.candidates,
            self.rollups,
            self.scans_fused,
            self.scans_old,
            self.scans_saved(),
        );
        for f in &self.facets {
            out.push_str(&format!(
                "      {:<30} {:>7} kernel · {} group(s)\n",
                f.attr, f.kernel, f.groups
            ));
        }
        let caches: [(&str, &Option<CacheCounters>); 3] = [
            ("subspace cache", &self.subspace_cache),
            ("semi-join cache", &self.semijoin_cache),
            ("row-mapper cache", &self.mapper_cache),
        ];
        for (name, counters) in caches {
            if let Some(c) = counters {
                out.push_str(&format!(
                    "      {:<16} {} hit(s) / {} miss(es) / {} eviction(s)\n",
                    name, c.hits, c.misses, c.evictions
                ));
            }
        }
        out
    }
}

impl Plan {
    /// Human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.constraints.iter().enumerate() {
            out.push_str(&format!(
                "({}) {}{}{}  [{} hits] → {} fact rows ({:.2}% of facts, est {}){}\n      via {}\n",
                i + 1,
                c.attr,
                if c.numeric { " (numeric range)" } else { "" },
                if c.fused > 1 {
                    format!(" [fused ×{}]", c.fused)
                } else {
                    String::new()
                },
                c.n_hits,
                c.fact_rows,
                100.0 * c.selectivity,
                c.est_rows,
                if c.cache_hit { "  [cache hit]" } else { "" },
                c.path,
            ));
        }
        out.push_str(&format!(
            "∩  subspace: {} fact rows ({:.2}%), {}× tighter than the best single constraint\n",
            self.subspace_size,
            100.0 * self.combined_selectivity,
            if self.intersection_gain.is_finite() {
                format!("{:.1}", self.intersection_gain)
            } else {
                "∞".to_string()
            },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::subspace::materialize;
    use crate::testutil::ebiz_fixture;

    #[test]
    fn plan_matches_materialization() {
        let fx = ebiz_fixture();
        for net in generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        ) {
            let plan = explain(&fx.wh, &fx.jidx, &net);
            let sub = materialize(&fx.wh, &fx.jidx, &net);
            assert_eq!(plan.subspace_size, sub.len());
            // Every logical constraint is covered by exactly one step.
            let covered: usize = plan.constraints.iter().map(|c| c.fused).sum();
            assert_eq!(covered, net.n_groups());
            // The intersection can never exceed any single step.
            for c in &plan.constraints {
                assert!(plan.subspace_size <= c.fact_rows);
            }
        }
    }

    #[test]
    fn selectivities_are_fractions_of_fact_table() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let plan = explain(&fx.wh, &fx.jidx, &nets[0]);
        for c in &plan.constraints {
            assert!((0.0..=1.0).contains(&c.selectivity));
            assert_eq!(c.selectivity, c.fact_rows as f64 / fx.wh.fact_rows() as f64);
        }
    }

    #[test]
    fn render_mentions_every_constraint_and_the_intersection() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(
            &fx.wh,
            &fx.index,
            &["columbus", "lcd"],
            &GenConfig::default(),
        );
        let net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE"))
            .unwrap();
        let plan = explain(&fx.wh, &fx.jidx, net);
        let text = plan.render();
        assert!(text.contains("(1)"));
        assert!(text.contains("(2)"));
        assert!(text.contains("subspace:"));
        assert!(text.contains("via"));
        assert!(text.contains("est "));
    }

    #[test]
    fn empty_net_plan_is_full_dataspace() {
        let fx = ebiz_fixture();
        let plan = explain(
            &fx.wh,
            &fx.jidx,
            &StarNet {
                constraints: vec![],
            },
        );
        assert_eq!(plan.subspace_size, fx.wh.fact_rows());
        assert_eq!(plan.combined_selectivity, 1.0);
    }

    #[test]
    fn session_planner_reports_cache_hits() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let planner = Planner::optimized();
        let first =
            explain_planned(&fx.wh, &fx.jidx, &nets[0], &planner, &ExecConfig::serial()).unwrap();
        assert!(first.constraints.iter().all(|c| !c.cache_hit));
        let second =
            explain_planned(&fx.wh, &fx.jidx, &nets[0], &planner, &ExecConfig::serial()).unwrap();
        assert!(second.constraints.iter().all(|c| c.cache_hit));
        assert_eq!(first.subspace_size, second.subspace_size);
    }
}
