//! EXPLAIN for star nets: per-constraint selectivity and join-plan
//! description, so analysts (and the `kdap` console) can see *why* a
//! subspace has the size it does before paying for facet construction.

use kdap_query::{JoinIndex, Predicate, RowSet, Selection};
use kdap_warehouse::Warehouse;

use crate::interpret::StarNet;

/// The evaluated plan of one constraint.
#[derive(Debug, Clone)]
pub struct ConstraintPlan {
    /// `Table.Attr` of the hit group.
    pub attr: String,
    /// The join path walked, with role labels.
    pub path: String,
    /// Number of hit instances in the group (`|HG|`).
    pub n_hits: usize,
    /// Fact rows this constraint alone selects.
    pub fact_rows: usize,
    /// `fact_rows / |fact table|`.
    pub selectivity: f64,
    /// True for numeric-range constraints (§7 extension).
    pub numeric: bool,
}

/// The evaluated plan of a star net.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-constraint evaluations, in star-net order.
    pub constraints: Vec<ConstraintPlan>,
    /// Fact rows after intersecting all constraints.
    pub subspace_size: usize,
    /// `subspace_size / |fact table|`.
    pub combined_selectivity: f64,
    /// Ratio between the most selective single constraint and the
    /// intersection — how much the conjunction tightened the slice.
    pub intersection_gain: f64,
}

/// Evaluates each constraint independently, then their conjunction.
pub fn explain(wh: &Warehouse, jidx: &JoinIndex, net: &StarNet) -> Plan {
    let fact = wh.schema().fact_table();
    let n_fact = wh.fact_rows().max(1);
    let mut combined = RowSet::full(wh.fact_rows());
    let mut constraints = Vec::with_capacity(net.constraints.len());
    for c in &net.constraints {
        let sel = match c.group.numeric {
            Some((lo, hi)) => Selection::by_range(c.path.clone(), c.group.attr, lo, hi),
            None => Selection::by_codes(c.path.clone(), c.group.attr, c.group.codes()),
        };
        let rows = sel.eval(wh, jidx, fact);
        combined.intersect_with(&rows);
        constraints.push(ConstraintPlan {
            attr: wh.col_name(c.group.attr),
            path: c.path.display(wh, fact),
            n_hits: c.group.len(),
            fact_rows: rows.len(),
            selectivity: rows.len() as f64 / n_fact as f64,
            numeric: matches!(sel.predicate, Predicate::Range { .. }),
        });
    }
    let best_single = constraints
        .iter()
        .map(|c| c.fact_rows)
        .min()
        .unwrap_or(wh.fact_rows());
    let subspace_size = combined.len();
    Plan {
        constraints,
        subspace_size,
        combined_selectivity: subspace_size as f64 / n_fact as f64,
        intersection_gain: if subspace_size == 0 {
            f64::INFINITY
        } else {
            best_single as f64 / subspace_size as f64
        },
    }
}

impl Plan {
    /// Human-readable rendering for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.constraints.iter().enumerate() {
            out.push_str(&format!(
                "({}) {}{}  [{} hits] → {} fact rows ({:.2}% of facts)\n      via {}\n",
                i + 1,
                c.attr,
                if c.numeric { " (numeric range)" } else { "" },
                c.n_hits,
                c.fact_rows,
                100.0 * c.selectivity,
                c.path,
            ));
        }
        out.push_str(&format!(
            "∩  subspace: {} fact rows ({:.2}%), {}× tighter than the best single constraint\n",
            self.subspace_size,
            100.0 * self.combined_selectivity,
            if self.intersection_gain.is_finite() {
                format!("{:.1}", self.intersection_gain)
            } else {
                "∞".to_string()
            },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::subspace::materialize;
    use crate::testutil::ebiz_fixture;

    #[test]
    fn plan_matches_materialization() {
        let fx = ebiz_fixture();
        for net in generate_star_nets(&fx.wh, &fx.index, &["columbus", "lcd"], &GenConfig::default())
        {
            let plan = explain(&fx.wh, &fx.jidx, &net);
            let sub = materialize(&fx.wh, &fx.jidx, &net);
            assert_eq!(plan.subspace_size, sub.len());
            assert_eq!(plan.constraints.len(), net.n_groups());
            // The intersection can never exceed any single constraint.
            for c in &plan.constraints {
                assert!(plan.subspace_size <= c.fact_rows);
            }
        }
    }

    #[test]
    fn selectivities_are_fractions_of_fact_table() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus"], &GenConfig::default());
        let plan = explain(&fx.wh, &fx.jidx, &nets[0]);
        for c in &plan.constraints {
            assert!((0.0..=1.0).contains(&c.selectivity));
            assert_eq!(
                c.selectivity,
                c.fact_rows as f64 / fx.wh.fact_rows() as f64
            );
        }
    }

    #[test]
    fn render_mentions_every_constraint_and_the_intersection() {
        let fx = ebiz_fixture();
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus", "lcd"], &GenConfig::default());
        let net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("STORE"))
            .unwrap();
        let plan = explain(&fx.wh, &fx.jidx, net);
        let text = plan.render();
        assert!(text.contains("(1)"));
        assert!(text.contains("(2)"));
        assert!(text.contains("subspace:"));
        assert!(text.contains("via"));
    }

    #[test]
    fn empty_net_plan_is_full_dataspace() {
        let fx = ebiz_fixture();
        let plan = explain(&fx.wh, &fx.jidx, &StarNet { constraints: vec![] });
        assert_eq!(plan.subspace_size, fx.wh.fact_rows());
        assert_eq!(plan.combined_selectivity, 1.0);
    }
}
