//! Hit sets and hit groups (paper §4.2).
//!
//! For each keyword `kᵢ` the system probes the full-text index to obtain
//! the *hit set* `Hᵢ`; each hit is an attribute instance `(table, attr,
//! value)` with a relevance score. Hits from the same attribute domain
//! form a *hit group* `HGᵢᵏ` — the unit from which star seeds are drawn.

use std::collections::BTreeMap;
use std::sync::Arc;

use kdap_textindex::{SearchOptions, TextIndex};
use kdap_warehouse::ColRef;

/// One matched attribute instance.
#[derive(Debug, Clone)]
pub struct Hit {
    /// Dictionary code of the instance within its column.
    pub code: u32,
    /// The instance's text.
    pub value: Arc<str>,
    /// `Sim(h.val, q)` from the text engine, in `(0, 1]`.
    pub score: f64,
}

/// All hits of one keyword drawn from one attribute domain.
#[derive(Debug, Clone)]
pub struct HitGroup {
    /// The attribute domain `(R, Attr)`.
    pub attr: ColRef,
    /// Matched instances, sorted by descending score.
    pub hits: Vec<Hit>,
    /// Indices of the query keywords this group covers. A freshly built
    /// group covers exactly one keyword; phrase merging (§4.3) produces
    /// groups covering several.
    pub keywords: Vec<usize>,
    /// Numeric-range semantics (paper §7 future work: measure/numeric
    /// attributes as hit candidates). When set, the group selects rows
    /// whose numeric attribute value lies in `[lo, hi]` and `hits`
    /// carries a single display entry.
    pub numeric: Option<(f64, f64)>,
}

impl HitGroup {
    /// Sum of hit scores (the numerator of the per-group ranking term).
    pub fn score_sum(&self) -> f64 {
        self.hits.iter().map(|h| h.score).sum()
    }

    /// Number of hits `|HG|`.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when the group has no hits.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The dictionary codes of all hits.
    pub fn codes(&self) -> Vec<u32> {
        self.hits.iter().map(|h| h.code).collect()
    }
}

/// The hit set of one keyword: its hit groups, one per matched attribute
/// domain.
#[derive(Debug, Clone)]
pub struct HitSet {
    /// The keyword this hit set belongs to.
    pub keyword: String,
    /// One group per matched attribute domain.
    pub groups: Vec<HitGroup>,
}

/// Limits applied while building hit sets.
#[derive(Debug, Clone)]
pub struct HitConfig {
    /// Text-engine options (stemming is always on; prefix matching and its
    /// penalty are configured here).
    pub search: SearchOptions,
    /// Hits scoring below this are dropped.
    pub min_score: f64,
    /// At most this many hits are kept per keyword (strongest first).
    pub max_hits_per_keyword: usize,
}

impl Default for HitConfig {
    fn default() -> Self {
        HitConfig {
            search: SearchOptions::default(),
            min_score: 0.05,
            max_hits_per_keyword: 2000,
        }
    }
}

/// Probes the index for every keyword and organizes hits into hit groups
/// (Algorithm 1, lines 2–4).
pub fn build_hit_sets(index: &TextIndex, keywords: &[&str], cfg: &HitConfig) -> Vec<HitSet> {
    keywords
        .iter()
        .enumerate()
        .map(|(ki, kw)| {
            let hits = index.search_keyword(kw, &cfg.search);
            let mut by_attr: BTreeMap<ColRef, Vec<Hit>> = BTreeMap::new();
            for sh in hits
                .iter()
                .filter(|h| h.score >= cfg.min_score)
                .take(cfg.max_hits_per_keyword)
            {
                let meta = index.doc(sh.doc);
                by_attr.entry(meta.attr).or_default().push(Hit {
                    code: meta.code,
                    value: meta.text.clone(),
                    score: sh.score,
                });
            }
            let groups = by_attr
                .into_iter()
                .map(|(attr, hits)| HitGroup {
                    attr,
                    hits,
                    keywords: vec![ki],
                    numeric: None,
                })
                .collect();
            HitSet {
                keyword: (*kw).to_string(),
                groups,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_warehouse::TableId;

    fn attr(t: u32, c: u32) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    fn index() -> TextIndex {
        TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("Columbus")),
            (attr(1, 0), 0, Arc::from("Columbus Day")),
            (attr(2, 0), 0, Arc::from("LCD Projectors")),
            (attr(2, 0), 1, Arc::from("Flat Panel(LCD)")),
            (attr(3, 0), 0, Arc::from("LCD TVs")),
        ])
    }

    #[test]
    fn hits_grouped_by_attribute_domain() {
        let sets = build_hit_sets(&index(), &["columbus", "lcd"], &HitConfig::default());
        assert_eq!(sets.len(), 2);
        // "columbus" hits the city attr and the holiday attr → 2 groups.
        assert_eq!(sets[0].groups.len(), 2);
        // "lcd" hits two instances of attr(2,0) (one group) + attr(3,0).
        assert_eq!(sets[1].groups.len(), 2);
        let lcd_group = sets[1]
            .groups
            .iter()
            .find(|g| g.attr == attr(2, 0))
            .unwrap();
        assert_eq!(lcd_group.len(), 2);
        assert_eq!(lcd_group.keywords, vec![1]);
    }

    #[test]
    fn min_score_filters_weak_hits() {
        let cfg = HitConfig {
            min_score: 0.99,
            ..HitConfig::default()
        };
        let sets = build_hit_sets(&index(), &["lcd"], &cfg);
        // No exact single-token "LCD" document exists, so every hit is
        // below 0.99 and gets filtered.
        assert!(sets[0].groups.is_empty());
    }

    #[test]
    fn max_hits_caps_group_sizes() {
        let cfg = HitConfig {
            max_hits_per_keyword: 1,
            ..HitConfig::default()
        };
        let sets = build_hit_sets(&index(), &["lcd"], &cfg);
        let total: usize = sets[0].groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn unknown_keyword_gives_empty_hit_set() {
        let sets = build_hit_sets(&index(), &["zzz"], &HitConfig::default());
        assert_eq!(sets.len(), 1);
        assert!(sets[0].groups.is_empty());
    }

    #[test]
    fn group_score_sum_and_codes() {
        let g = HitGroup {
            attr: attr(0, 0),
            hits: vec![
                Hit {
                    code: 3,
                    value: Arc::from("a"),
                    score: 0.5,
                },
                Hit {
                    code: 7,
                    value: Arc::from("b"),
                    score: 0.25,
                },
            ],
            keywords: vec![0],
            numeric: None,
        };
        assert_eq!(g.score_sum(), 0.75);
        assert_eq!(g.codes(), vec![3, 7]);
        assert_eq!(g.len(), 2);
    }
}
