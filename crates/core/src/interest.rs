//! Interestingness measures (paper §5, Eq. 1).
//!
//! Interestingness is application-specific; the paper instantiates two:
//! * **Surprise** — exceptions/surprises: a partition is interesting when
//!   its aggregation series *deviates* from the roll-up space series
//!   (score = −correlation, Sarawagi-style discovery-driven exploration);
//! * **Bellwether** — local regions whose aggregates track the larger
//!   region (score = +correlation, after Chen et al., VLDB'06).

/// The two OLAP applications the paper demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterestMode {
    /// Rank dissimilar (surprising) partitions high: score = −corr.
    Surprise,
    /// Rank correlated (bellwether) partitions high: score = +corr.
    Bellwether,
}

impl InterestMode {
    /// Converts a correlation into an attribute interestingness score
    /// (Eq. 1 negates the correlation for the surprise application).
    pub fn attr_score(&self, correlation: f64) -> f64 {
        match self {
            InterestMode::Surprise => -correlation,
            InterestMode::Bellwether => correlation,
        }
    }

    /// Converts an instance deviation (Eq. 2) into an instance ranking
    /// key: surprise surfaces the most deviant instances, bellwether the
    /// most proportional ones.
    pub fn instance_score(&self, deviation: f64) -> f64 {
        match self {
            InterestMode::Surprise => deviation.abs(),
            InterestMode::Bellwether => -deviation.abs(),
        }
    }
}

/// Pearson correlation of two equal-length series.
///
/// Returns 0.0 for degenerate inputs (length < 2, or zero variance in
/// either series): a constant series neither confirms nor contradicts the
/// background trend, so it is treated as neutral.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "series length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = x[i] - mean_x;
        let dy = y[i] - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return 0.0;
    }
    // Clamp the floating-point ulp overshoot so callers can rely on the
    // mathematical range.
    (cov / (var_x.sqrt() * var_y.sqrt())).clamp(-1.0, 1.0)
}

/// Combines the correlations obtained against multiple roll-up spaces
/// (§5.2.1): the *worst* (lowest) correlation is kept, "so that the most
/// dissimilar case can be captured".
pub fn combine_correlations(corrs: impl IntoIterator<Item = f64>) -> Option<f64> {
    corrs.into_iter().fold(None, |acc, c| {
        Some(match acc {
            None => c,
            Some(a) => a.min(c),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_series_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.5);
    }

    #[test]
    fn degenerate_series_are_neutral() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn surprise_negates_bellwether_keeps() {
        assert_eq!(InterestMode::Surprise.attr_score(0.8), -0.8);
        assert_eq!(InterestMode::Bellwether.attr_score(0.8), 0.8);
    }

    #[test]
    fn instance_scores_order_by_deviation() {
        let s = InterestMode::Surprise;
        assert!(s.instance_score(-0.4) > s.instance_score(0.1));
        let b = InterestMode::Bellwether;
        assert!(b.instance_score(0.0) > b.instance_score(0.5));
    }

    #[test]
    fn combination_takes_worst_case() {
        assert_eq!(combine_correlations([0.9, -0.2, 0.5]), Some(-0.2));
        assert_eq!(combine_correlations([]), None);
    }
}
