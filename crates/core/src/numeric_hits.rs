//! Numeric keywords as hit candidates — the paper's first future-work
//! item (§7): "our current model does not consider measure attributes as
//! hit candidates; it is interesting to investigate how we can
//! incorporate such measure in the KDAP model."
//!
//! When enabled, a keyword that parses as a number ("2450", "80000")
//! produces one additional hit group per *numerical* attribute domain
//! whose data actually contains that value: the declared numerical
//! group-by candidates of every dimension, plus the fact table's measure
//! columns. The group carries range semantics (`numeric = Some((v, v))`)
//! and competes with textual interpretations in the ordinary ranking —
//! "2001" can be the calendar-year label *or* a price point, and the user
//! disambiguates exactly like any other interpretation.
//!
//! Disabled by default so the base system matches the paper's published
//! model; the `exp_numeric` experiment and dedicated tests turn it on.

use std::sync::Arc;

use kdap_warehouse::{ColRef, MeasureExpr, Warehouse};

use crate::hit::{Hit, HitGroup};

/// Configuration of the numeric-hit extension.
#[derive(Debug, Clone)]
pub struct NumericConfig {
    /// Master switch (off by default — §7 extension).
    pub enabled: bool,
    /// Score assigned to a numeric hit. Numbers are weaker evidence than
    /// text matches (every warehouse is full of numbers), so the default
    /// sits below an exact text match.
    pub score: f64,
    /// Relative tolerance for value equality.
    pub tolerance: f64,
}

impl Default for NumericConfig {
    fn default() -> Self {
        NumericConfig {
            enabled: false,
            score: 0.75,
            tolerance: 1e-9,
        }
    }
}

/// Builds numeric hit groups for one keyword (empty unless the keyword is
/// a finite number present in some numerical domain).
pub fn numeric_groups(
    wh: &Warehouse,
    keyword: &str,
    keyword_idx: usize,
    cfg: &NumericConfig,
) -> Vec<HitGroup> {
    if !cfg.enabled {
        return Vec::new();
    }
    let Ok(v) = keyword.trim().parse::<f64>() else {
        return Vec::new();
    };
    if !v.is_finite() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for attr in numeric_attr_candidates(wh) {
        if domain_contains(wh, attr, v, cfg.tolerance) {
            out.push(HitGroup {
                attr,
                hits: vec![Hit {
                    code: 0,
                    value: Arc::from(keyword.trim()),
                    score: cfg.score,
                }],
                keywords: vec![keyword_idx],
                numeric: Some((v, v)),
            });
        }
    }
    out
}

/// The numerical attribute domains eligible as hit candidates: declared
/// numerical group-by candidates plus measure source columns.
fn numeric_attr_candidates(wh: &Warehouse) -> Vec<ColRef> {
    let schema = wh.schema();
    let mut attrs: Vec<ColRef> = schema
        .dimensions()
        .iter()
        .flat_map(|d| d.groupby_candidates.iter())
        .filter(|g| g.kind == kdap_warehouse::AttrKind::Numerical)
        .map(|g| g.attr)
        .collect();
    for m in schema.measures() {
        match &m.expr {
            MeasureExpr::Column(c) => attrs.push(*c),
            MeasureExpr::Product(a, b) => {
                attrs.push(*a);
                attrs.push(*b);
            }
        }
    }
    attrs.sort();
    attrs.dedup();
    attrs
}

fn domain_contains(wh: &Warehouse, attr: ColRef, v: f64, tol: f64) -> bool {
    let col = wh.column(attr);
    let eps = tol * v.abs().max(1.0);
    (0..col.len()).any(|r| {
        col.get_float(r)
            .map(|x| (x - v).abs() <= eps)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpret::{generate_star_nets, GenConfig};
    use crate::subspace::materialize;
    use crate::testutil::ebiz_fixture;

    fn enabled() -> NumericConfig {
        NumericConfig {
            enabled: true,
            ..NumericConfig::default()
        }
    }

    #[test]
    fn disabled_by_default_produces_nothing() {
        let fx = ebiz_fixture();
        assert!(numeric_groups(&fx.wh, "850", 0, &NumericConfig::default()).is_empty());
        let nets = generate_star_nets(&fx.wh, &fx.index, &["850"], &GenConfig::default());
        assert!(nets.is_empty());
    }

    #[test]
    fn price_keyword_matches_list_price_domain() {
        let fx = ebiz_fixture();
        let groups = numeric_groups(&fx.wh, "850", 0, &enabled());
        let price = fx.wh.col_ref("PROD", "ListPrice").unwrap();
        assert!(groups.iter().any(|g| g.attr == price));
        // 850 also appears in ITEM.UnitPrice? Fixture prices: 500, 800,
        // 700, 450, 900, 650 — no. Income: 50000, 80000 — no.
        let unit_price = fx.wh.col_ref("ITEM", "UnitPrice").unwrap();
        assert!(!groups.iter().any(|g| g.attr == unit_price));
        for g in &groups {
            assert_eq!(g.numeric, Some((850.0, 850.0)));
            assert_eq!(g.hits.len(), 1);
        }
    }

    #[test]
    fn non_numeric_and_absent_values_produce_nothing() {
        let fx = ebiz_fixture();
        assert!(numeric_groups(&fx.wh, "columbus", 0, &enabled()).is_empty());
        assert!(numeric_groups(&fx.wh, "123456789", 0, &enabled()).is_empty());
        assert!(numeric_groups(&fx.wh, "inf", 0, &enabled()).is_empty());
    }

    #[test]
    fn numeric_interpretation_materializes_correctly() {
        let fx = ebiz_fixture();
        let cfg = GenConfig {
            numeric: enabled(),
            ..GenConfig::default()
        };
        let nets = generate_star_nets(&fx.wh, &fx.index, &["850"], &cfg);
        assert!(!nets.is_empty());
        let price_net = nets
            .iter()
            .find(|n| n.display(&fx.wh).contains("ListPrice"))
            .expect("ListPrice interpretation");
        let sub = materialize(&fx.wh, &fx.jidx, price_net);
        // Product 2 ("Projector X100", ListPrice 850) appears in fact
        // rows 1 and 4.
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn numeric_and_text_keywords_combine() {
        let fx = ebiz_fixture();
        let cfg = GenConfig {
            numeric: enabled(),
            ..GenConfig::default()
        };
        let nets = generate_star_nets(&fx.wh, &fx.index, &["columbus", "850"], &cfg);
        let combined = nets.iter().find(|n| {
            let d = n.display(&fx.wh);
            d.contains("Columbus") && d.contains("ListPrice") && d.contains("STORE")
        });
        assert!(combined.is_some(), "city × price interpretation exists");
        let sub = materialize(&fx.wh, &fx.jidx, combined.unwrap());
        // Columbus-store facts {0,1,4,5} ∩ price-850 facts {1,4}.
        assert_eq!(sub.rows.iter().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn measure_columns_are_candidates() {
        let fx = ebiz_fixture();
        let groups = numeric_groups(&fx.wh, "900", 0, &enabled());
        let unit_price = fx.wh.col_ref("ITEM", "UnitPrice").unwrap();
        // 900 is a UnitPrice value (fact row 4) → the measure source
        // column is hit; its constraint sits directly on the fact table.
        assert!(groups.iter().any(|g| g.attr == unit_price));
    }
}
