//! Star-net ranking (paper §4.4).
//!
//! The standard score is
//!
//! ```text
//!                Σ_HG  [ Σ_h Sim(h.val, q)  /  (|HG| · (1 + ln|HG|)) ]
//! SCORE(SN, q) = ─────────────────────────────────────────────────────
//!                                     |SN|²
//! ```
//!
//! Two normalizations are ablated exactly as in the paper's Figure 4:
//! * *group-size* normalization, `|HG| · (1 + ln|HG|)`, penalizing
//!   attribute domains with many matched instances ("California Street"
//!   addresses vs. the state California);
//! * *group-number* normalization, `|SN|²`, prioritizing star nets where
//!   multiple keywords fall in the same attribute instance ("San Jose" as
//!   one city beats "San Antonio" + first-name "Jose").
//!
//! The baseline method averages the raw text-engine scores (Hristidis et
//! al., VLDB'03 style).

use crate::interpret::StarNet;

/// Ranking methods evaluated in the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankMethod {
    /// Full formula with both normalizations.
    Standard,
    /// Group-number normalization disabled: the `|SN|²` divisor is
    /// removed entirely (plain sum of group terms), so star nets with more
    /// groups are no longer penalized.
    NoGroupNumberNorm,
    /// Group-size normalization disabled: the per-group term is the plain
    /// average `Σ Sim / |HG|` without the `(1 + ln|HG|)` factor.
    NoGroupSizeNorm,
    /// Raw text-engine scores, directly averaged over all hits.
    Baseline,
}

impl RankMethod {
    /// All four methods, in the order the experiment reports them.
    pub const ALL: [RankMethod; 4] = [
        RankMethod::Standard,
        RankMethod::NoGroupNumberNorm,
        RankMethod::NoGroupSizeNorm,
        RankMethod::Baseline,
    ];

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            RankMethod::Standard => "standard",
            RankMethod::NoGroupNumberNorm => "no-group-number-norm",
            RankMethod::NoGroupSizeNorm => "no-group-size-norm",
            RankMethod::Baseline => "baseline",
        }
    }
}

/// Scores one star net under the chosen method.
pub fn score_star_net(net: &StarNet, method: RankMethod) -> f64 {
    let n_groups = net.n_groups();
    if n_groups == 0 {
        return 0.0;
    }
    match method {
        RankMethod::Standard | RankMethod::NoGroupNumberNorm | RankMethod::NoGroupSizeNorm => {
            let group_sum: f64 = net
                .constraints
                .iter()
                .map(|c| {
                    let sum = c.group.score_sum();
                    let size = c.group.len() as f64;
                    if size == 0.0 {
                        return 0.0;
                    }
                    match method {
                        RankMethod::NoGroupSizeNorm => sum / size,
                        _ => sum / (size * (1.0 + size.ln())),
                    }
                })
                .sum();
            match method {
                RankMethod::NoGroupNumberNorm => group_sum,
                _ => group_sum / (n_groups * n_groups) as f64,
            }
        }
        RankMethod::Baseline => {
            let (sum, count) = net.constraints.iter().fold((0.0, 0usize), |(s, c), con| {
                (s + con.group.score_sum(), c + con.group.len())
            });
            if count == 0 {
                0.0
            } else {
                sum / count as f64
            }
        }
    }
}

/// A star net with its score under some method.
#[derive(Debug, Clone)]
pub struct RankedStarNet {
    /// The interpretation.
    pub net: StarNet,
    /// Its score under the chosen ranking method.
    pub score: f64,
}

/// Scores and sorts star nets (descending; deterministic tie-break on the
/// rendered constraint count and generation order).
pub fn rank_star_nets(nets: Vec<StarNet>, method: RankMethod) -> Vec<RankedStarNet> {
    let mut ranked: Vec<RankedStarNet> = nets
        .into_iter()
        .map(|net| RankedStarNet {
            score: score_star_net(&net, method),
            net,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.net.n_groups().cmp(&b.net.n_groups()))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hit::{Hit, HitGroup};
    use crate::interpret::Constraint;
    use kdap_query::JoinPath;
    use kdap_warehouse::{ColRef, TableId};
    use std::sync::Arc;

    fn group(attr_col: u32, scores: &[f64]) -> HitGroup {
        HitGroup {
            attr: ColRef::new(TableId(0), attr_col),
            hits: scores
                .iter()
                .enumerate()
                .map(|(i, &s)| Hit {
                    code: i as u32,
                    value: Arc::from("v"),
                    score: s,
                })
                .collect(),
            keywords: vec![0],
            numeric: None,
        }
    }

    fn net(groups: Vec<HitGroup>) -> StarNet {
        StarNet {
            constraints: groups
                .into_iter()
                .map(|g| Constraint {
                    group: g,
                    path: JoinPath::empty(),
                })
                .collect(),
        }
    }

    #[test]
    fn standard_formula_matches_hand_computation() {
        // One group, two hits 0.8 and 0.4: term = 1.2 / (2·(1+ln2)),
        // |SN|² = 1.
        let n = net(vec![group(0, &[0.8, 0.4])]);
        let expected = 1.2 / (2.0 * (1.0 + 2.0f64.ln()));
        assert!((score_star_net(&n, RankMethod::Standard) - expected).abs() < 1e-12);
    }

    #[test]
    fn group_number_norm_prefers_fewer_groups() {
        // Same total similarity mass: one group with score 1.0 vs two
        // groups with 0.5 each (all singleton groups).
        let single = net(vec![group(0, &[1.0])]);
        let double = net(vec![group(0, &[0.5]), group(1, &[0.5])]);
        let s1 = score_star_net(&single, RankMethod::Standard);
        let s2 = score_star_net(&double, RankMethod::Standard);
        assert!(s1 > s2, "{s1} vs {s2}");
        // Without the |SN|² normalization the two tie.
        let s1 = score_star_net(&single, RankMethod::NoGroupNumberNorm);
        let s2 = score_star_net(&double, RankMethod::NoGroupNumberNorm);
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn group_size_norm_penalizes_bushy_groups() {
        // "California" the state (1 hit, 0.9) vs 10 street addresses each
        // scoring 0.9.
        let state = net(vec![group(0, &[0.9])]);
        let streets = net(vec![group(1, &[0.9; 10])]);
        let s_state = score_star_net(&state, RankMethod::Standard);
        let s_streets = score_star_net(&streets, RankMethod::Standard);
        assert!(s_state > s_streets);
        // Disabled: both are plain averages → tie.
        let s_state = score_star_net(&state, RankMethod::NoGroupSizeNorm);
        let s_streets = score_star_net(&streets, RankMethod::NoGroupSizeNorm);
        assert!((s_state - s_streets).abs() < 1e-12);
    }

    #[test]
    fn baseline_is_plain_average() {
        let n = net(vec![group(0, &[0.8, 0.4]), group(1, &[0.6])]);
        let s = score_star_net(&n, RankMethod::Baseline);
        assert!((s - (0.8 + 0.4 + 0.6) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_net_scores_zero() {
        let n = net(vec![]);
        for m in RankMethod::ALL {
            assert_eq!(score_star_net(&n, m), 0.0);
        }
    }

    #[test]
    fn ranking_sorts_descending() {
        let nets = vec![
            net(vec![group(0, &[0.2])]),
            net(vec![group(0, &[0.9])]),
            net(vec![group(0, &[0.5])]),
        ];
        let ranked = rank_star_nets(nets, RankMethod::Standard);
        assert!(ranked[0].score >= ranked[1].score);
        assert!(ranked[1].score >= ranked[2].score);
    }

    #[test]
    fn phrase_merge_outranks_split_interpretation() {
        // "San Jose" as one city instance (score 1.0) vs
        // "San Antonio"(0.55) + "Jose"(0.7) as two groups.
        let merged = net(vec![group(0, &[1.0])]);
        let split = net(vec![group(0, &[0.55]), group(1, &[0.7])]);
        assert!(
            score_star_net(&merged, RankMethod::Standard)
                > score_star_net(&split, RankMethod::Standard)
        );
    }
}
