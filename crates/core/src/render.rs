//! Plain-text rendering of explorations and interpretation lists — the
//! multi-faceted "screen" of Figure 1, for terminals, logs and tests.

use kdap_warehouse::Warehouse;

use crate::facet::Exploration;
use crate::rank::RankedStarNet;

/// Renders a ranked interpretation list, one per line:
/// `#1 [0.5000] <star net>`.
pub fn render_interpretations(wh: &Warehouse, ranked: &[RankedStarNet], limit: usize) -> String {
    let mut out = String::new();
    for (i, r) in ranked.iter().take(limit).enumerate() {
        out.push_str(&format!(
            "#{:<3} [{:.4}] {}\n",
            i + 1,
            r.score,
            r.net.display(wh)
        ));
    }
    if ranked.len() > limit {
        out.push_str(&format!("… and {} more\n", ranked.len() - limit));
    }
    out
}

/// Renders the facet panels of an exploration as an indented outline.
///
/// ```text
/// subspace: 49 facts · total 92732.91
/// [Product]
///   * DimProductSubcategory.ProductSubcategoryName  (score -0.000, hit)
///       Mountain Bikes ←                          92732.91
/// ```
pub fn render_exploration(ex: &Exploration) -> String {
    let mut out = format!(
        "subspace: {} facts · total {}\n",
        ex.subspace_size,
        fmt_agg(ex.total_aggregate)
    );
    for panel in &ex.panels {
        out.push_str(&format!("[{}]\n", panel.dimension));
        for attr in &panel.attrs {
            out.push_str(&format!(
                "  {} {}  (score {:+.3}{})\n",
                if attr.promoted { '*' } else { '-' },
                attr.name,
                attr.score,
                if attr.promoted { ", hit" } else { "" }
            ));
            for e in &attr.entries {
                out.push_str(&format!(
                    "      {:<30} {:>14}{}\n",
                    e.label,
                    fmt_agg(e.aggregate),
                    if e.is_hit { " ←" } else { "" }
                ));
            }
        }
    }
    out
}

/// Formats an aggregate value; the empty-set aggregate of MIN/MAX/AVG is
/// NaN (no defined value) and renders as `∅` rather than a fake number.
fn fmt_agg(v: f64) -> String {
    if v.is_nan() {
        "∅".to_string()
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::rank_star_nets;
    use crate::session::Kdap;
    use crate::testutil::ebiz_fixture;

    fn session() -> Kdap {
        Kdap::builder(ebiz_fixture().wh).build().unwrap()
    }

    #[test]
    fn interpretation_list_is_numbered_and_limited() {
        let kdap = session();
        let ranked = kdap.interpret("columbus");
        let text = render_interpretations(kdap.warehouse(), &ranked, 2);
        assert!(text.starts_with("#1  "));
        assert!(text.contains("#2  "));
        assert!(!text.contains("#3  "));
        assert!(text.contains("… and 2 more"));
        let all = render_interpretations(kdap.warehouse(), &ranked, 10);
        assert!(!all.contains("more"));
    }

    #[test]
    fn exploration_outline_shows_hits_and_totals() {
        let kdap = session();
        let ranked = kdap.interpret("columbus");
        let ex = kdap.explore(&ranked[0].net).unwrap();
        let text = render_exploration(&ex);
        assert!(text.starts_with(&format!("subspace: {} facts", ex.subspace_size)));
        assert!(text.contains("[Store]") || text.contains("[Customer]"));
        assert!(text.contains('*'), "promoted marker present");
        assert!(text.contains('←'), "hit marker present");
    }

    #[test]
    fn undefined_aggregates_render_as_empty_set() {
        assert_eq!(fmt_agg(f64::NAN), "∅");
        assert_eq!(fmt_agg(42.0), "42.00");
        let ex = Exploration {
            subspace_size: 0,
            total_aggregate: f64::NAN,
            panels: vec![],
        };
        assert!(render_exploration(&ex).contains("total ∅"));
    }

    #[test]
    fn empty_inputs_render_cleanly() {
        let kdap = session();
        assert_eq!(render_interpretations(kdap.warehouse(), &[], 5), "");
        let ranked = rank_star_nets(vec![], crate::rank::RankMethod::Standard);
        assert!(ranked.is_empty());
    }
}
