//! The unified request/response layer every KDAP frontend speaks.
//!
//! Historically the CLI, the REPL and the examples each hand-rolled
//! their own option plumbing and result rendering. This module is the
//! single typed surface instead: a [`QueryRequest`] names the operation
//! ([`Verb`]), the keywords and every per-request option
//! ([`QueryOptions`] — ranking, facets, governance); [`Kdap::run`]
//! executes it; the [`QueryResponse`] carries the full result
//! (interpretations, exploration, plan/report text, profile) plus
//! wire encoders. [`ApiError`] maps engine errors onto HTTP-style
//! status codes for the server.
//!
//! Everything is serde-free: request bodies decode through the small
//! JSON parser in [`json`], responses encode by hand into JSON or CSV
//! ([`WireFormat`]). Non-finite aggregates (the empty-set MIN/MAX/AVG is
//! NaN) encode as JSON `null` and as an empty CSV field.
//!
//! [`Kdap::run`]: crate::session::Kdap::run

pub mod json;

use std::fmt;

use kdap_obs::QueryProfile;
use kdap_query::AggFunc;

use crate::error::KdapError;
use crate::facet::{Exploration, FacetConfig, FacetOrder};
use crate::interest::InterestMode;
use crate::rank::{RankMethod, RankedStarNet};

use self::json::{json_num, json_string, Json};

/// The four query operations of the `/v1/{tenant}/…` surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Differentiate phase only: ranked interpretations of the keywords.
    Differentiate,
    /// Differentiate, then explore the picked interpretation.
    Explore,
    /// Differentiate + explore under the profiler; the response carries
    /// the per-stage timing tree.
    Profile,
    /// Differentiate, then EXPLAIN the picked interpretation: physical
    /// plan and fused-scan accounting alongside the exploration.
    Explain,
}

impl Verb {
    /// All verbs, in route-declaration order.
    pub const ALL: [Verb; 4] = [
        Verb::Differentiate,
        Verb::Explore,
        Verb::Profile,
        Verb::Explain,
    ];

    /// The verb's path segment / wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verb::Differentiate => "differentiate",
            Verb::Explore => "explore",
            Verb::Profile => "profile",
            Verb::Explain => "explain",
        }
    }

    /// Parses a path segment into a verb.
    pub fn parse(s: &str) -> Option<Verb> {
        Verb::ALL.into_iter().find(|v| v.as_str() == s)
    }
}

impl fmt::Display for Verb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-request option overrides. Every field is optional; `None` means
/// "use the session's configured default". Frontends never touch
/// [`FacetConfig`]/[`RankMethod`] plumbing directly — they fill this in
/// and hand it to [`Kdap::run`] (or
/// [`Kdap::explore_with_options`] for net-level navigation).
///
/// [`Kdap::run`]: crate::session::Kdap::run
/// [`Kdap::explore_with_options`]: crate::session::Kdap::explore_with_options
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// Star-net ranking method (`standard`, `no-group-number-norm`,
    /// `no-group-size-norm`, `baseline`).
    pub rank: Option<RankMethod>,
    /// Interestingness mode (`surprise`, `bellwether`).
    pub mode: Option<InterestMode>,
    /// Facet ordering (`dynamic`, `consistent`, `hybrid:<pinned>`).
    pub order: Option<FacetOrder>,
    /// Aggregation function (`sum`, `count`, `avg`, `min`, `max`).
    pub agg: Option<AggFunc>,
    /// Top-k group-by attributes per dimension panel.
    pub top_k_attrs: Option<usize>,
    /// Top-k instances per categorical facet.
    pub top_k_instances: Option<usize>,
    /// Per-request wall-clock deadline in milliseconds. `0` is an
    /// already-expired deadline: the query aborts at its first
    /// governance check (useful for admission tests).
    pub timeout_ms: Option<u64>,
    /// Per-request memory budget in bytes.
    pub budget_bytes: Option<u64>,
}

impl QueryOptions {
    /// `base` with this request's facet overrides applied.
    pub fn apply_facet(&self, mut base: FacetConfig) -> FacetConfig {
        if let Some(mode) = self.mode {
            base.mode = mode;
        }
        if let Some(order) = self.order {
            base.order = order;
        }
        if let Some(agg) = self.agg {
            base.agg = agg;
        }
        if let Some(k) = self.top_k_attrs {
            base.top_k_attrs = k;
        }
        if let Some(k) = self.top_k_instances {
            base.top_k_instances = k;
        }
        base
    }
}

/// One typed query against a KDAP session — the single entry point the
/// server, CLI and REPL all construct.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Which operation runs.
    pub verb: Verb,
    /// The raw keyword query (double quotes group phrases).
    pub keywords: String,
    /// Which ranked interpretation explore/profile/explain act on
    /// (1-based; default 1).
    pub pick: usize,
    /// Maximum interpretations included in the response summary
    /// (`0` = all; default 8).
    pub limit: usize,
    /// Per-request option overrides.
    pub options: QueryOptions,
    /// The request's trace id. Set programmatically by the service edge
    /// (HTTP router or CLI) — never decoded from the body, so the JSON
    /// surface stays strict and the echoed id is byte-identical to what
    /// the client sent.
    pub trace_id: Option<String>,
}

impl QueryRequest {
    /// A request with default pick/limit and no option overrides.
    pub fn new(verb: Verb, keywords: impl Into<String>) -> Self {
        QueryRequest {
            verb,
            keywords: keywords.into(),
            pick: 1,
            limit: 8,
            options: QueryOptions::default(),
            trace_id: None,
        }
    }

    /// Sets the trace id (builder style).
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Replaces the option overrides (builder style).
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Decodes a request body for `verb`. The body must be a JSON object
    /// with at least `"keywords"`; unknown fields, wrong types and
    /// malformed JSON are all typed [`ApiError::bad_request`]s so the
    /// server can answer with a precise 400.
    pub fn from_json(verb: Verb, body: &str) -> Result<QueryRequest, ApiError> {
        let doc = json::parse(body).map_err(|e| ApiError::bad_request(e.to_string()))?;
        let Some(fields) = doc.as_obj() else {
            return Err(ApiError::bad_request(format!(
                "request body must be a JSON object, got {}",
                doc.type_name()
            )));
        };
        let mut req = QueryRequest::new(verb, "");
        let mut saw_keywords = false;
        for (key, value) in fields {
            match key.as_str() {
                "keywords" => {
                    req.keywords = str_field(key, value)?.to_string();
                    saw_keywords = true;
                }
                "pick" => {
                    req.pick = usize_field(key, value)?;
                    if req.pick == 0 {
                        return Err(ApiError::bad_request("`pick` is 1-based; 0 is invalid"));
                    }
                }
                "limit" => req.limit = usize_field(key, value)?,
                "rank" => req.options.rank = Some(parse_rank(str_field(key, value)?)?),
                "mode" => req.options.mode = Some(parse_mode(str_field(key, value)?)?),
                "order" => req.options.order = Some(parse_order(str_field(key, value)?)?),
                "agg" => req.options.agg = Some(parse_agg(str_field(key, value)?)?),
                "top_k_attrs" => req.options.top_k_attrs = Some(usize_field(key, value)?),
                "top_k_instances" => req.options.top_k_instances = Some(usize_field(key, value)?),
                "timeout_ms" => req.options.timeout_ms = Some(u64_field(key, value)?),
                "budget_bytes" => req.options.budget_bytes = Some(u64_field(key, value)?),
                other => {
                    return Err(ApiError::bad_request(format!(
                        "unknown field `{other}` (expected keywords, pick, limit, rank, mode, \
                         order, agg, top_k_attrs, top_k_instances, timeout_ms, budget_bytes)"
                    )))
                }
            }
        }
        if !saw_keywords {
            return Err(ApiError::bad_request("missing required field `keywords`"));
        }
        Ok(req)
    }
}

fn str_field<'a>(key: &str, v: &'a Json) -> Result<&'a str, ApiError> {
    v.as_str().ok_or_else(|| {
        ApiError::bad_request(format!("`{key}` must be a string, got {}", v.type_name()))
    })
}

fn u64_field(key: &str, v: &Json) -> Result<u64, ApiError> {
    let n = v.as_num().ok_or_else(|| {
        ApiError::bad_request(format!("`{key}` must be a number, got {}", v.type_name()))
    })?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(ApiError::bad_request(format!(
            "`{key}` must be a non-negative integer"
        )));
    }
    Ok(n as u64)
}

fn usize_field(key: &str, v: &Json) -> Result<usize, ApiError> {
    let n = u64_field(key, v)?;
    usize::try_from(n).map_err(|_| ApiError::bad_request(format!("`{key}` is out of range")))
}

fn parse_rank(s: &str) -> Result<RankMethod, ApiError> {
    RankMethod::ALL
        .into_iter()
        .find(|m| m.label() == s)
        .ok_or_else(|| {
            ApiError::bad_request(format!(
                "unknown rank method `{s}` (standard, no-group-number-norm, \
                 no-group-size-norm, baseline)"
            ))
        })
}

fn parse_mode(s: &str) -> Result<InterestMode, ApiError> {
    match s {
        "surprise" => Ok(InterestMode::Surprise),
        "bellwether" => Ok(InterestMode::Bellwether),
        other => Err(ApiError::bad_request(format!(
            "unknown mode `{other}` (surprise, bellwether)"
        ))),
    }
}

fn parse_agg(s: &str) -> Result<AggFunc, ApiError> {
    match s {
        "sum" => Ok(AggFunc::Sum),
        "count" => Ok(AggFunc::Count),
        "avg" => Ok(AggFunc::Avg),
        "min" => Ok(AggFunc::Min),
        "max" => Ok(AggFunc::Max),
        other => Err(ApiError::bad_request(format!(
            "unknown agg `{other}` (sum, count, avg, min, max)"
        ))),
    }
}

fn parse_order(s: &str) -> Result<FacetOrder, ApiError> {
    match s {
        "dynamic" => Ok(FacetOrder::Dynamic),
        "consistent" => Ok(FacetOrder::Consistent),
        other => match other.strip_prefix("hybrid:").map(str::parse) {
            Some(Ok(pinned)) => Ok(FacetOrder::Hybrid { pinned }),
            _ => Err(ApiError::bad_request(format!(
                "unknown order `{other}` (dynamic, consistent, hybrid:<pinned>)"
            ))),
        },
    }
}

/// One ranked interpretation, flattened for the wire: the display string
/// is pre-rendered against the warehouse so clients need no schema
/// knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpretationSummary {
    /// 1-based rank.
    pub rank: usize,
    /// Score under the request's ranking method.
    pub score: f64,
    /// Human-readable star net (`TRANSITEM ⋈ …`).
    pub display: String,
    /// Canonical fingerprint (stable across runs; cache key).
    pub fingerprint: String,
}

/// The typed result of [`Kdap::run`]: everything any frontend renders,
/// plus the underlying [`RankedStarNet`]s so interactive frontends
/// (REPL `pick`, drill/roll-up) can keep navigating without re-parsing.
///
/// [`Kdap::run`]: crate::session::Kdap::run
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The operation that produced this response.
    pub verb: Verb,
    /// The raw keyword query.
    pub keywords: String,
    /// Total interpretations generated (before `limit`).
    pub n_interpretations: usize,
    /// Wire summaries of the top `limit` interpretations.
    pub interpretations: Vec<InterpretationSummary>,
    /// The full ranking, for frontends that navigate further. Not
    /// encoded on the wire beyond [`QueryResponse::interpretations`].
    pub ranked: Vec<RankedStarNet>,
    /// Which interpretation was explored/explained (1-based), for
    /// explore/profile/explain verbs.
    pub picked: Option<usize>,
    /// The exploration of the picked interpretation.
    pub exploration: Option<Exploration>,
    /// Rendered physical plan (explain verb).
    pub plan: Option<String>,
    /// Rendered fused-scan/cache report (explain verb).
    pub report: Option<String>,
    /// Per-stage timing tree (profile verb; empty unless the session has
    /// observability enabled).
    pub profile: Option<QueryProfile>,
}

impl QueryResponse {
    /// Encodes the response in `format`, returning the body. CSV is
    /// defined for `differentiate` (the ranking table) and
    /// `explore` (the facet-entry table); `profile`/`explain` are
    /// tree-shaped and negotiate JSON only.
    pub fn encode(&self, format: WireFormat) -> Result<String, ApiError> {
        match format {
            WireFormat::Json => Ok(self.to_json()),
            WireFormat::Csv => self.to_csv(),
        }
    }

    /// The JSON encoding. Non-finite aggregates encode as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"verb\": {},\n",
            json_string(self.verb.as_str())
        ));
        out.push_str(&format!(
            "  \"keywords\": {},\n",
            json_string(&self.keywords)
        ));
        out.push_str(&format!(
            "  \"n_interpretations\": {},\n",
            self.n_interpretations
        ));
        out.push_str("  \"interpretations\": [");
        for (i, s) in self.interpretations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rank\": {}, \"score\": {}, \"display\": {}, \"fingerprint\": {}}}",
                s.rank,
                json_num(s.score),
                json_string(&s.display),
                json_string(&s.fingerprint),
            ));
        }
        out.push_str("\n  ]");
        if let Some(picked) = self.picked {
            out.push_str(&format!(",\n  \"picked\": {picked}"));
        }
        if let Some(ex) = &self.exploration {
            out.push_str(",\n  \"exploration\": ");
            out.push_str(&exploration_json(ex, "  "));
        }
        if let Some(plan) = &self.plan {
            out.push_str(&format!(",\n  \"plan\": {}", json_string(plan)));
        }
        if let Some(report) = &self.report {
            out.push_str(&format!(",\n  \"report\": {}", json_string(report)));
        }
        if let Some(profile) = &self.profile {
            // QueryProfile::to_json emits a complete object; splice it in.
            out.push_str(",\n  \"profile\": ");
            out.push_str(&profile.to_json());
        }
        out.push_str("\n}\n");
        out
    }

    /// The CSV encoding (differentiate: ranking table; explore: facet
    /// entries). Non-finite aggregates encode as an empty field.
    pub fn to_csv(&self) -> Result<String, ApiError> {
        match self.verb {
            Verb::Differentiate => {
                let mut out = String::from("rank,score,interpretation,fingerprint\n");
                for s in &self.interpretations {
                    out.push_str(&format!(
                        "{},{},{},{}\n",
                        s.rank,
                        csv_num(s.score),
                        csv_field(&s.display),
                        csv_field(&s.fingerprint),
                    ));
                }
                Ok(out)
            }
            Verb::Explore => {
                let Some(ex) = &self.exploration else {
                    return Err(ApiError::internal("explore response without exploration"));
                };
                let mut out = String::from(
                    "dimension,attribute,kind,attr_score,promoted,label,aggregate,entry_score,hit\n",
                );
                for panel in &ex.panels {
                    for attr in &panel.attrs {
                        for e in &attr.entries {
                            out.push_str(&format!(
                                "{},{},{},{},{},{},{},{},{}\n",
                                csv_field(&panel.dimension),
                                csv_field(&attr.name),
                                attr_kind_str(attr.kind),
                                csv_num(attr.score),
                                attr.promoted,
                                csv_field(&e.label),
                                csv_num(e.aggregate),
                                csv_num(e.score),
                                e.is_hit,
                            ));
                        }
                    }
                }
                Ok(out)
            }
            Verb::Profile | Verb::Explain => Err(ApiError::not_acceptable(format!(
                "`{}` responses are tree-shaped; request JSON",
                self.verb
            ))),
        }
    }
}

fn attr_kind_str(kind: kdap_warehouse::AttrKind) -> &'static str {
    match kind {
        kdap_warehouse::AttrKind::Categorical => "categorical",
        kdap_warehouse::AttrKind::Numerical => "numerical",
    }
}

/// Encodes an [`Exploration`] as a JSON object, indented under `pad`.
pub fn exploration_json(ex: &Exploration, pad: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "{pad}  \"subspace_size\": {},\n",
        ex.subspace_size
    ));
    out.push_str(&format!(
        "{pad}  \"total_aggregate\": {},\n",
        json_num(ex.total_aggregate)
    ));
    out.push_str(&format!("{pad}  \"panels\": ["));
    for (pi, panel) in ex.panels.iter().enumerate() {
        out.push_str(if pi == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "{pad}    {{\"dimension\": {}, \"attrs\": [",
            json_string(&panel.dimension)
        ));
        for (ai, attr) in panel.attrs.iter().enumerate() {
            out.push_str(if ai == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{pad}      {{\"name\": {}, \"kind\": {}, \"score\": {}, \"correlation\": {}, \
                 \"promoted\": {}, \"entries\": [",
                json_string(&attr.name),
                json_string(attr_kind_str(attr.kind)),
                json_num(attr.score),
                json_num(attr.correlation),
                attr.promoted,
            ));
            for (ei, e) in attr.entries.iter().enumerate() {
                out.push_str(if ei == 0 { "\n" } else { ",\n" });
                out.push_str(&format!(
                    "{pad}        {{\"label\": {}, \"aggregate\": {}, \"score\": {}, \"hit\": {}}}",
                    json_string(&e.label),
                    json_num(e.aggregate),
                    json_num(e.score),
                    e.is_hit,
                ));
            }
            if !attr.entries.is_empty() {
                out.push_str(&format!("\n{pad}      "));
            }
            out.push_str("]}");
        }
        if !panel.attrs.is_empty() {
            out.push_str(&format!("\n{pad}    "));
        }
        out.push_str("]}");
    }
    if !ex.panels.is_empty() {
        out.push_str(&format!("\n{pad}  "));
    }
    out.push_str(&format!("]\n{pad}}}"));
    out
}

/// Quotes a CSV field when it contains a delimiter, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A CSV number; the undefined (NaN/±∞) aggregate is an empty field.
fn csv_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

/// The two wire formats of the query surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// `application/json` (the default).
    Json,
    /// `text/csv`.
    Csv,
}

impl WireFormat {
    /// The response `Content-Type`.
    pub fn content_type(&self) -> &'static str {
        match self {
            WireFormat::Json => "application/json",
            WireFormat::Csv => "text/csv",
        }
    }

    /// Negotiates the response format: an explicit `?format=` query
    /// parameter wins, then the `Accept` header (`text/csv` selects CSV;
    /// everything else, including absence and `*/*`, selects JSON).
    /// Unknown explicit requests are a typed 406.
    pub fn negotiate(
        format_param: Option<&str>,
        accept: Option<&str>,
    ) -> Result<WireFormat, ApiError> {
        if let Some(f) = format_param {
            return match f {
                "json" => Ok(WireFormat::Json),
                "csv" => Ok(WireFormat::Csv),
                other => Err(ApiError::not_acceptable(format!(
                    "unknown format `{other}` (json, csv)"
                ))),
            };
        }
        match accept {
            Some(a) if a.split(',').any(|p| p.trim().starts_with("text/csv")) => {
                Ok(WireFormat::Csv)
            }
            _ => Ok(WireFormat::Json),
        }
    }
}

/// A wire-level error: HTTP-style status, a stable machine code, and a
/// human message. The server encodes these as the body of every non-200
/// response; library embedders can use the mapping too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (400, 404, 406, 408, 429, 499, 507, 500).
    pub status: u16,
    /// Stable machine-readable code (`timeout`, `bad_request`, …).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// 400 — the request itself is malformed.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// 404 — unknown tenant, route or interpretation.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// 406 — the requested format cannot represent this response.
    pub fn not_acceptable(message: impl Into<String>) -> Self {
        ApiError {
            status: 406,
            code: "not_acceptable",
            message: message.into(),
        }
    }

    /// 429 — admission control rejected the request.
    pub fn too_many_requests(message: impl Into<String>) -> Self {
        ApiError {
            status: 429,
            code: "too_many_requests",
            message: message.into(),
        }
    }

    /// 500 — an internal engine failure.
    pub fn internal(message: impl Into<String>) -> Self {
        ApiError {
            status: 500,
            code: "internal",
            message: message.into(),
        }
    }

    /// Maps an engine error onto its wire representation: governance
    /// breaches become 408 (deadline), 499 (client cancelled) and 507
    /// (memory budget); input problems become 400/404; everything else
    /// is a 500.
    pub fn from_kdap(err: &KdapError) -> ApiError {
        match err {
            KdapError::Timeout { .. } => ApiError {
                status: 408,
                code: "timeout",
                message: err.to_string(),
            },
            KdapError::Cancelled { .. } => ApiError {
                status: 499,
                code: "cancelled",
                message: err.to_string(),
            },
            KdapError::BudgetExceeded { .. } => ApiError {
                status: 507,
                code: "budget_exceeded",
                message: err.to_string(),
            },
            KdapError::EmptyQuery => ApiError {
                status: 400,
                code: "empty_query",
                message: err.to_string(),
            },
            KdapError::NoInterpretation { .. } => ApiError {
                status: 404,
                code: "no_interpretation",
                message: err.to_string(),
            },
            KdapError::UnknownMeasure(_) => ApiError::bad_request(err.to_string()),
            _ => ApiError::internal(err.to_string()),
        }
    }

    /// The JSON body of the error response.
    pub fn to_json(&self) -> String {
        self.to_json_with_trace(None)
    }

    /// The JSON body with the request's trace id included, so failed
    /// requests stay correlatable with their log and ledger records.
    pub fn to_json_with_trace(&self, trace_id: Option<&str>) -> String {
        let trace = match trace_id {
            Some(id) => format!(", \"trace_id\": {}", json_string(id)),
            None => String::new(),
        };
        format!(
            "{{\"error\": {{\"status\": {}, \"code\": {}, \"message\": {}{trace}}}}}\n",
            self.status,
            json_string(self.code),
            json_string(&self.message),
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::{FacetAttr, FacetEntry, FacetPanel};
    use kdap_warehouse::{AttrKind, ColRef, TableId};

    #[test]
    fn verbs_round_trip_their_wire_names() {
        for v in Verb::ALL {
            assert_eq!(Verb::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verb::parse("frobnicate"), None);
    }

    #[test]
    fn request_decodes_all_fields() {
        let req = QueryRequest::from_json(
            Verb::Explore,
            r#"{"keywords": "columbus lcd", "pick": 2, "limit": 3,
                "rank": "baseline", "mode": "bellwether", "order": "hybrid:2",
                "agg": "avg", "top_k_attrs": 1, "top_k_instances": 4,
                "timeout_ms": 250, "budget_bytes": 1048576}"#,
        )
        .unwrap();
        assert_eq!(req.verb, Verb::Explore);
        assert_eq!(req.keywords, "columbus lcd");
        assert_eq!(req.pick, 2);
        assert_eq!(req.limit, 3);
        assert_eq!(req.options.rank, Some(RankMethod::Baseline));
        assert_eq!(req.options.mode, Some(InterestMode::Bellwether));
        assert_eq!(req.options.order, Some(FacetOrder::Hybrid { pinned: 2 }));
        assert_eq!(req.options.agg, Some(AggFunc::Avg));
        assert_eq!(req.options.top_k_attrs, Some(1));
        assert_eq!(req.options.top_k_instances, Some(4));
        assert_eq!(req.options.timeout_ms, Some(250));
        assert_eq!(req.options.budget_bytes, Some(1 << 20));
    }

    #[test]
    fn request_rejects_malformed_bodies() {
        for (body, needle) in [
            ("{not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "missing required field `keywords`"),
            (r#"{"keywords": 5}"#, "`keywords` must be a string"),
            (r#"{"keywords": "x", "pick": 0}"#, "1-based"),
            (r#"{"keywords": "x", "pick": -1}"#, "non-negative"),
            (r#"{"keywords": "x", "pick": 1.5}"#, "non-negative integer"),
            (r#"{"keywords": "x", "rank": "nope"}"#, "unknown rank"),
            (r#"{"keywords": "x", "mode": "nope"}"#, "unknown mode"),
            (r#"{"keywords": "x", "order": "hybrid:x"}"#, "unknown order"),
            (r#"{"keywords": "x", "agg": "median"}"#, "unknown agg"),
            (r#"{"keywords": "x", "bogus": 1}"#, "unknown field `bogus`"),
            (
                r#"{"keywords": "x", "timeout_ms": "soon"}"#,
                "must be a number",
            ),
        ] {
            let err = QueryRequest::from_json(Verb::Differentiate, body).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body} → {}", err.message);
        }
    }

    fn sample_response(verb: Verb) -> QueryResponse {
        QueryResponse {
            verb,
            keywords: "columbus lcd".into(),
            n_interpretations: 2,
            interpretations: vec![
                InterpretationSummary {
                    rank: 1,
                    score: 0.5,
                    display: "TRANSITEM ⋈ CITY=\"Columbus, OH\"".into(),
                    fingerprint: "fp1".into(),
                },
                InterpretationSummary {
                    rank: 2,
                    score: 0.25,
                    display: "has,comma".into(),
                    fingerprint: "fp2".into(),
                },
            ],
            ranked: Vec::new(),
            picked: Some(1),
            exploration: Some(Exploration {
                subspace_size: 49,
                total_aggregate: 92732.91,
                panels: vec![FacetPanel {
                    dimension: "Store".into(),
                    attrs: vec![FacetAttr {
                        attr: ColRef {
                            table: TableId(0),
                            col: 0,
                        },
                        name: "CITY.Name".into(),
                        kind: AttrKind::Categorical,
                        correlation: 0.25,
                        score: -0.25,
                        promoted: true,
                        entries: vec![
                            FacetEntry {
                                label: "Columbus, OH".into(),
                                aggregate: 92732.91,
                                score: 1.0,
                                is_hit: true,
                            },
                            FacetEntry {
                                label: "Empty \"set\"".into(),
                                aggregate: f64::NAN,
                                score: 0.0,
                                is_hit: false,
                            },
                        ],
                    }],
                }],
            }),
            plan: None,
            report: None,
            profile: None,
        }
    }

    #[test]
    fn response_json_is_parseable_and_nan_is_null() {
        let resp = sample_response(Verb::Explore);
        let body = resp.to_json();
        let doc = json::parse(&body).expect("valid JSON");
        assert_eq!(doc.get("verb").unwrap().as_str(), Some("explore"));
        assert_eq!(doc.get("picked").unwrap().as_num(), Some(1.0));
        let ex = doc.get("exploration").unwrap();
        assert_eq!(ex.get("subspace_size").unwrap().as_num(), Some(49.0));
        let entries = ex.get("panels").unwrap().as_arr().unwrap()[0]
            .get("attrs")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .get("entries")
            .unwrap()
            .as_arr()
            .unwrap();
        // The empty-set aggregate (NaN) must be JSON null, not a bad token.
        assert_eq!(entries[1].get("aggregate"), Some(&Json::Null));
        assert_eq!(
            entries[0].get("aggregate").unwrap().as_num(),
            Some(92732.91)
        );
    }

    #[test]
    fn infinities_also_encode_as_null() {
        let mut resp = sample_response(Verb::Explore);
        if let Some(ex) = &mut resp.exploration {
            ex.total_aggregate = f64::INFINITY;
            ex.panels[0].attrs[0].entries[0].aggregate = f64::NEG_INFINITY;
        }
        let doc = json::parse(&resp.to_json()).expect("valid JSON");
        let ex = doc.get("exploration").unwrap();
        assert_eq!(ex.get("total_aggregate"), Some(&Json::Null));
    }

    #[test]
    fn csv_encodes_tables_and_quotes_fields() {
        let resp = sample_response(Verb::Differentiate);
        let csv = resp.to_csv().unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rank,score,interpretation,fingerprint"));
        assert!(csv.contains("\"has,comma\""), "{csv}");

        let resp = sample_response(Verb::Explore);
        let csv = resp.to_csv().unwrap();
        assert!(csv.starts_with("dimension,attribute,kind,"), "{csv}");
        // NaN aggregate → empty CSV field; quoted label with inner quotes.
        assert!(csv.contains("\"Empty \"\"set\"\"\",,"), "{csv}");

        let resp = sample_response(Verb::Profile);
        assert_eq!(resp.to_csv().unwrap_err().status, 406);
    }

    #[test]
    fn format_negotiation_prefers_explicit_param() {
        assert_eq!(
            WireFormat::negotiate(Some("csv"), Some("application/json")).unwrap(),
            WireFormat::Csv
        );
        assert_eq!(
            WireFormat::negotiate(Some("json"), None).unwrap(),
            WireFormat::Json
        );
        assert_eq!(WireFormat::negotiate(None, None).unwrap(), WireFormat::Json);
        assert_eq!(
            WireFormat::negotiate(None, Some("text/csv")).unwrap(),
            WireFormat::Csv
        );
        assert_eq!(
            WireFormat::negotiate(None, Some("application/json, text/csv;q=0.5")).unwrap(),
            WireFormat::Csv
        );
        assert_eq!(
            WireFormat::negotiate(None, Some("*/*")).unwrap(),
            WireFormat::Json
        );
        assert_eq!(
            WireFormat::negotiate(Some("xml"), None).unwrap_err().status,
            406
        );
    }

    #[test]
    fn api_errors_map_engine_errors_onto_statuses() {
        let cases = [
            (
                KdapError::Timeout {
                    stage: "explore",
                    elapsed_ms: 5,
                },
                408,
                "timeout",
            ),
            (KdapError::Cancelled { stage: "semijoin" }, 499, "cancelled"),
            (
                KdapError::BudgetExceeded {
                    stage: "multi_group_by",
                    budget_bytes: 1,
                    charged_bytes: 2,
                },
                507,
                "budget_exceeded",
            ),
            (KdapError::EmptyQuery, 400, "empty_query"),
            (
                KdapError::NoInterpretation {
                    pick: 3,
                    available: 1,
                },
                404,
                "no_interpretation",
            ),
            (KdapError::NoMeasure, 500, "internal"),
        ];
        for (err, status, code) in cases {
            let api = ApiError::from_kdap(&err);
            assert_eq!((api.status, api.code), (status, code), "{err}");
            let doc = json::parse(&api.to_json()).expect("valid error JSON");
            let e = doc.get("error").unwrap();
            assert_eq!(e.get("status").unwrap().as_num(), Some(status as f64));
            assert_eq!(e.get("code").unwrap().as_str(), Some(code));
        }
    }

    #[test]
    fn error_json_can_carry_a_trace_id() {
        let err = ApiError::bad_request("nope");
        assert!(!err.to_json().contains("trace_id"));
        let body = err.to_json_with_trace(Some("deadbeef"));
        let doc = json::parse(&body).expect("valid error JSON");
        assert_eq!(
            doc.get("error").unwrap().get("trace_id").unwrap().as_str(),
            Some("deadbeef")
        );
    }

    #[test]
    fn trace_id_is_edge_set_not_a_body_field() {
        // The strict body parser must not grow a trace field; ids come
        // from the transport edge only.
        let err = QueryRequest::from_json(Verb::Explore, r#"{"keywords": "x", "trace_id": "a"}"#)
            .unwrap_err();
        assert!(err.message.contains("unknown field `trace_id`"));
        let req = QueryRequest::new(Verb::Explore, "x").with_trace_id("cafe");
        assert_eq!(req.trace_id.as_deref(), Some("cafe"));
    }

    #[test]
    fn options_apply_only_what_they_carry() {
        let base = FacetConfig::default();
        let unchanged = QueryOptions::default().apply_facet(base.clone());
        assert_eq!(unchanged.top_k_attrs, base.top_k_attrs);
        let opts = QueryOptions {
            mode: Some(InterestMode::Bellwether),
            top_k_attrs: Some(1),
            ..QueryOptions::default()
        };
        let cfg = opts.apply_facet(base.clone());
        assert_eq!(cfg.mode, InterestMode::Bellwether);
        assert_eq!(cfg.top_k_attrs, 1);
        assert_eq!(cfg.top_k_instances, base.top_k_instances);
    }
}
