//! A minimal, dependency-free JSON layer for the wire API: a recursive-
//! descent parser for request bodies and writer helpers for response
//! encoding. The workspace carries no serde; both directions are
//! hand-rolled and kept deliberately small (objects, arrays, strings,
//! f64 numbers, booleans, null).
//!
//! # Non-finite numbers
//!
//! JSON has no representation for NaN or ±∞. The engine's empty-set
//! MIN/MAX/AVG aggregates are NaN (rendered `∅` on the console), so the
//! writer encodes every non-finite `f64` as `null` — the wire contract
//! is "no defined value", never an invalid token.

use std::fmt;

pub use kdap_obs::json_string;

/// Maximum nesting depth accepted by [`parse`]; deeper input is rejected
/// rather than risking a stack overflow on hostile request bodies.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; readers see
    /// the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key` when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure: byte offset into the input plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonParseError {
        JsonParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX carrying a
                                // low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; step to the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (*b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    // SAFETY-free: the input was a &str, slices on char
                    // boundaries are valid UTF-8.
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                        |_| JsonParseError {
                            pos: start,
                            msg: "invalid UTF-8".into(),
                        },
                    )?);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected an exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        // `"1e999".parse::<f64>()` yields ±∞; JSON has no non-finite
        // numbers, so an overflowing literal is a malformed document,
        // not a silent infinity flowing into option plumbing.
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(v))
    }
}

/// Encodes an `f64` as a JSON number token — `null` for NaN and ±∞,
/// which JSON cannot represent (the empty-set aggregate contract).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v =
            parse(r#"{"keywords": "columbus lcd", "pick": 2, "opts": {"deep": [1, 2]}}"#).unwrap();
        assert_eq!(v.get("keywords").unwrap().as_str(), Some("columbus lcd"));
        assert_eq!(v.get("pick").unwrap().as_num(), Some(2.0));
        let deep = v.get("opts").unwrap().get("deep").unwrap();
        assert_eq!(deep.as_arr().unwrap().len(), 2);
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\t\u00e9""#).unwrap().as_str(),
            Some("a\"b\\c\nd\té")
        );
        // Surrogate pair → one astral scalar.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo ∅\"").unwrap().as_str(), Some("héllo ∅"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "+1",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "{,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn nesting_limit_boundary_is_exact() {
        // Depth counts nesting levels from 0 at the document root; 33
        // levels of brackets is the first rejected depth.
        let ok = "[".repeat(33) + &"]".repeat(33);
        assert!(parse(&ok).is_ok(), "depth 32 must parse");
        let too_deep = "[".repeat(34) + &"]".repeat(34);
        let err = parse(&too_deep).unwrap_err();
        assert!(err.msg.contains("nesting too deep"), "{err}");
        // Mixed object/array nesting counts the same levels.
        let mixed = "{\"a\":".repeat(17) + "1" + &"}".repeat(17);
        assert!(parse(&mixed).is_ok());
    }

    #[test]
    fn escape_edge_cases() {
        // Escaped NUL is representable (a raw NUL byte is not).
        assert_eq!(parse("\"\\u0000\"").unwrap().as_str(), Some("\u{0}"));
        assert!(parse("\"\u{0}\"").is_err(), "raw NUL must be rejected");
        // All simple escapes.
        assert_eq!(
            parse("\"\\b\\f\\/\\r\"").unwrap().as_str(),
            Some("\u{8}\u{c}/\r")
        );
        // Uppercase hex digits in \u escapes.
        assert_eq!(parse("\"\\u00E9\"").unwrap().as_str(), Some("\u{e9}"));
        // A backslash at end-of-input must not panic.
        assert!(parse("\"\\").is_err());
        // Truncated \u escapes.
        assert!(parse("\"\\u00\"").is_err());
        assert!(parse("\"\\u00g0\"").is_err());
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        // High surrogate without a low half.
        assert!(parse("\"\\ud800\"").is_err());
        // High surrogate followed by a non-escape character.
        assert!(parse("\"\\ud800x\"").is_err());
        // Low surrogate on its own.
        assert!(parse("\"\\udc00\"").is_err());
        // High surrogate paired with a non-surrogate escape.
        assert!(parse("\"\\ud800\\u0041\"").is_err());
        // A proper pair still decodes.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1f600}")
        );
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_infinite() {
        for bad in ["1e999", "-1e999", "1e309", "-1e309"] {
            let err = parse(bad).unwrap_err();
            assert!(err.msg.contains("out of range"), "{bad} → {err}");
        }
        // The largest finite doubles still parse.
        assert_eq!(
            parse("1.7976931348623157e308").unwrap(),
            Json::Num(f64::MAX)
        );
        assert_eq!(
            parse("-1.7976931348623157e308").unwrap(),
            Json::Num(f64::MIN)
        );
        // Tiny numbers underflow to zero rather than erroring (IEEE 754
        // gradual underflow is finite).
        assert_eq!(parse("1e-999").unwrap(), Json::Num(0.0));
        // NaN has no JSON literal at all.
        for bad in ["NaN", "nan", "Infinity", "-Infinity"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_through_json_string() {
        let original = "tab\there \"quote\" ∅";
        let parsed = parse(&json_string(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        // JSON cannot represent the empty-set aggregate (NaN) — the wire
        // encoding is `null`, never an invalid token.
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NEG_INFINITY), "null");
        assert_eq!(json_num(42.5), "42.5");
        assert_eq!(json_num(-0.25), "-0.25");
        // And whatever we emit parses back.
        assert_eq!(parse(&json_num(f64::NAN)).unwrap(), Json::Null);
        assert_eq!(parse(&json_num(1e300)).unwrap(), Json::Num(1e300));
    }

    #[test]
    fn type_accessors_are_strict() {
        let v = parse(r#"{"n": 1, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("n").unwrap().type_name(), "number");
        assert!(v.get("n").unwrap().as_str().is_none());
        assert!(v.get("s").unwrap().as_num().is_none());
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("a").unwrap().as_obj().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
