//! Property-based tests for the KDAP core algorithms: correlation,
//! ranking-formula, and Algorithm 2 invariants.

use proptest::prelude::*;

use kdap_core::facet::{merge_intervals, merge_series, AnnealConfig};
use kdap_core::{pearson, score_star_net, Constraint, Hit, HitGroup, RankMethod, StarNet};
use kdap_query::JoinPath;
use kdap_warehouse::{ColRef, TableId};
use std::sync::Arc;

fn net_from(groups: Vec<Vec<f64>>) -> StarNet {
    StarNet {
        constraints: groups
            .into_iter()
            .enumerate()
            .map(|(gi, scores)| Constraint {
                group: HitGroup {
                    attr: ColRef::new(TableId(gi as u32), 0),
                    hits: scores
                        .into_iter()
                        .enumerate()
                        .map(|(i, s)| Hit {
                            code: i as u32,
                            value: Arc::from("v"),
                            score: s,
                        })
                        .collect(),
                    keywords: vec![gi],
                    numeric: None,
                },
                path: JoinPath::empty(),
            })
            .collect(),
    }
}

proptest! {
    /// Pearson correlation is bounded, symmetric, and exactly 1 against
    /// itself for non-constant series.
    #[test]
    fn pearson_properties(x in proptest::collection::vec(-1e3..1e3f64, 2..40),
                          y in proptest::collection::vec(-1e3..1e3f64, 2..40)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let c = pearson(x, y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "corr {c}");
        prop_assert!((c - pearson(y, x)).abs() < 1e-9);
        let self_corr = pearson(x, x);
        let constant = x.iter().all(|v| (v - x[0]).abs() < 1e-12);
        if constant {
            prop_assert_eq!(self_corr, 0.0);
        } else {
            prop_assert!((self_corr - 1.0).abs() < 1e-6);
        }
    }

    /// Pearson is invariant under positive affine transforms of either
    /// series.
    #[test]
    fn pearson_affine_invariance(
        x in proptest::collection::vec(-1e3..1e3f64, 3..30),
        a in 0.1..10.0f64,
        b in -100.0..100.0f64,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let scaled: Vec<f64> = y.iter().map(|v| a * v + b).collect();
        let c1 = pearson(&x, &y);
        let c2 = pearson(&x, &scaled);
        prop_assert!((c1 - c2).abs() < 1e-6);
    }

    /// Star-net scores are non-negative, bounded by the best hit score
    /// under every method, and scale monotonically with hit scores.
    #[test]
    fn rank_scores_sane(groups in proptest::collection::vec(
        proptest::collection::vec(0.01..1.0f64, 1..10), 1..5)) {
        let net = net_from(groups.clone());
        for m in RankMethod::ALL {
            let s = score_star_net(&net, m);
            prop_assert!(s >= 0.0);
            prop_assert!(s <= 1.0 + 1e-9 || m == RankMethod::NoGroupNumberNorm,
                "method {:?} score {s}", m);
        }
        // Doubling every hit score (capped) never lowers any method.
        let boosted: Vec<Vec<f64>> = groups
            .iter()
            .map(|g| g.iter().map(|s| (s * 2.0).min(1.0)).collect())
            .collect();
        let net2 = net_from(boosted);
        for m in RankMethod::ALL {
            prop_assert!(score_star_net(&net2, m) >= score_star_net(&net, m) - 1e-12);
        }
    }

    /// merge_series preserves totals for any valid split scheme.
    #[test]
    fn merge_preserves_mass(series in proptest::collection::vec(-100.0..100.0f64, 1..60),
                            raw_splits in proptest::collection::vec(1usize..60, 0..6)) {
        let mut splits: Vec<usize> = raw_splits.into_iter().filter(|&s| s < series.len()).collect();
        splits.sort_unstable();
        splits.dedup();
        let merged = merge_series(&series, &splits);
        prop_assert_eq!(merged.len(), splits.len() + 1);
        let a: f64 = series.iter().sum();
        let b: f64 = merged.iter().sum();
        prop_assert!((a - b).abs() < 1e-6);
    }

    /// Algorithm 2 output: split points sorted, strictly inside (0, m),
    /// exactly K−1 of them (when m ≥ K), and the error is achievable
    /// (consistent with re-evaluating the returned scheme).
    #[test]
    fn anneal_output_valid(
        x in proptest::collection::vec(0.0..100.0f64, 8..50),
        k in 2usize..7,
        seed in 0u64..1000,
    ) {
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        let cfg = AnnealConfig {
            target_intervals: k,
            iterations: 120,
            seed,
            ..AnnealConfig::default()
        };
        let r = merge_intervals(&x, &y, &cfg);
        prop_assert_eq!(r.splits.len(), k - 1);
        for w in r.splits.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        if let (Some(&first), Some(&last)) = (r.splits.first(), r.splits.last()) {
            prop_assert!(first >= 1);
            prop_assert!(last < x.len());
        }
        let merged_corr = pearson(&merge_series(&x, &r.splits), &merge_series(&y, &r.splits));
        prop_assert!(((merged_corr - r.base_corr).abs() - r.error).abs() < 1e-9);
        // History is monotone non-increasing and ends at the final error.
        for w in r.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-15);
        }
        prop_assert!((r.history.last().copied().unwrap() - r.error).abs() < 1e-15);
    }
}

fn session_with_threads(threads: usize) -> kdap_core::Kdap {
    kdap_core::Kdap::builder(kdap_core::testutil::ebiz_fixture().wh)
        .threads(threads)
        .build()
        .expect("fixture declares Revenue")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel engine (threads ∈ {2, 4, 8}) produces an `Exploration`
    /// identical to the serial one for any vocabulary query: same panels,
    /// same attribute order, same entries, same aggregates.
    #[test]
    fn parallel_explore_equals_serial(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "columbus", "seattle", "plasma", "lcd", "projector",
                "alice", "ohio", "slimline",
            ]),
            1..4,
        )
    ) {
        let serial = session_with_threads(1);
        let query = words.join(" ");
        let ranked = serial.interpret(&query);
        for threads in [2usize, 4, 8] {
            let par = session_with_threads(threads);
            for r in ranked.iter().take(3) {
                let a = serial.explore(&r.net).unwrap();
                let b = par.explore(&r.net).unwrap();
                prop_assert_eq!(&a, &b, "threads={} query={:?}", threads, query);
            }
        }
    }
}

/// Eight threads hammering one sharded `SubspaceCache` stay consistent:
/// every lookup returns the same rows as a direct materialization, the
/// capacity bound holds, and the hit/miss accounting adds up.
#[test]
fn sharded_cache_consistent_under_hammering() {
    let fx = kdap_core::testutil::ebiz_fixture();
    let kdap = kdap_core::Kdap::builder(fx.wh).build().expect("measure");
    let cache = kdap_core::SubspaceCache::new(3);
    let nets: Vec<_> = ["columbus", "seattle", "plasma", "lcd"]
        .iter()
        .flat_map(|q| kdap.interpret(q))
        .map(|r| r.net)
        .collect();
    assert!(nets.len() >= 4, "fixture yields several interpretations");
    const THREADS: usize = 8;
    const ITERS: usize = 50;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (kdap, cache, nets) = (&kdap, &cache, &nets);
            s.spawn(move || {
                for i in 0..ITERS {
                    let net = &nets[(t * 31 + i * 7) % nets.len()];
                    let cached = cache.materialize(kdap.warehouse(), kdap.join_index(), net);
                    let direct = kdap_core::materialize(kdap.warehouse(), kdap.join_index(), net);
                    assert_eq!(cached.rows, direct.rows);
                }
            });
        }
    });
    assert!(cache.len() <= cache.capacity(), "capacity bound holds");
    let (hits, misses) = cache.stats();
    assert_eq!(hits + misses, (THREADS * ITERS) as u64);
}
