//! # kdap-cli
//!
//! The `kdap` command: an interactive keyword-driven analytical
//! processing console over either the built-in demo warehouses or your
//! own CSV data described by a [`kdap_warehouse::spec`] file.
//!
//! ```text
//! kdap --demo ebiz                 # paper's running example (Figure 2)
//! kdap --demo aw-online --small    # AdventureWorks-style internet sales
//! kdap --spec my_warehouse.spec    # your data
//! ```

pub mod command;
pub mod repl;
pub mod stats;

pub use command::Command;
pub use repl::Repl;

/// Which warehouse to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataSource {
    DemoEbiz,
    DemoAwOnline,
    DemoAwReseller,
    DemoTrends,
    Spec(String),
}

/// What the invocation does: the interactive console (default) or a
/// one-shot subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliMode {
    /// Interactive console (no subcommand).
    Repl,
    /// `kdap profile <keywords…>` — run the query once and print the
    /// per-stage timing tree.
    Profile(String),
    /// `kdap stats` — print catalog statistics and exit.
    Stats,
    /// `kdap serve` — expose the warehouse over HTTP behind the unified
    /// query API until killed.
    Serve,
    /// `kdap slow` — run queries read from stdin (one per line) through
    /// a slow-query ledger and print the most interesting ones.
    Slow,
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    pub source: DataSource,
    pub small: bool,
    /// `--scale N`: multiply the demo generator's scale (1..=200). Fact
    /// rows grow linearly, dimension tables by `√N`. Ignored with
    /// `--spec`.
    pub scale: usize,
    pub seed: u64,
    /// Worker threads for the parallel execution engine (1 = serial,
    /// 0 = all cores).
    pub threads: usize,
    /// Plan optimizer (selectivity reordering, predicate fusion, semi-join
    /// reuse); `--no-opt` turns it off for A/B comparison.
    pub optimizer: bool,
    /// One-shot subcommand, or the console.
    pub mode: CliMode,
    /// `--profile`: enable the observability recorder; `explain` appends
    /// live stage timings and the `profile` console command works.
    pub profile: bool,
    /// `--json`: machine-readable output for one-shot subcommands.
    pub json: bool,
    /// `--timeout-ms N`: per-query deadline; queries that exceed it abort
    /// with a timeout error instead of running to completion.
    pub timeout_ms: Option<u64>,
    /// `--listen ADDR` (serve): interface to bind.
    pub listen: String,
    /// `--port N` (serve): port to bind; `0` picks an ephemeral port.
    pub port: u16,
    /// `--workers N` (serve): HTTP worker threads.
    pub workers: usize,
    /// `--max-inflight N` (serve): per-tenant admission cap; requests
    /// over it receive a typed 429.
    pub max_inflight: usize,
    /// `--log SPEC` (serve): structured JSONL access-log destination
    /// (`stderr` or a file path); `None` disables logging.
    pub log: Option<String>,
    /// `--trace-out PATH` (profile): also write the profile as a Chrome
    /// trace-event JSON file loadable in Perfetto.
    pub trace_out: Option<String>,
}

/// Parses `kdap` arguments (everything after `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut source = None;
    let mut small = false;
    let mut scale = 1usize;
    let mut seed = 42u64;
    let mut threads = 1usize;
    let mut optimizer = true;
    let mut profile = false;
    let mut json = false;
    let mut timeout_ms = None;
    let mut listen = "127.0.0.1".to_string();
    let mut port = 8642u16;
    let mut workers = 4usize;
    let mut max_inflight = 64usize;
    let mut log = None;
    let mut trace_out = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => {
                let which = it.next().ok_or("--demo needs a name")?;
                source = Some(match which.as_str() {
                    "ebiz" => DataSource::DemoEbiz,
                    "aw-online" => DataSource::DemoAwOnline,
                    "aw-reseller" => DataSource::DemoAwReseller,
                    "trends" => DataSource::DemoTrends,
                    other => {
                        return Err(format!(
                            "unknown demo `{other}` (ebiz|aw-online|aw-reseller|trends)"
                        ))
                    }
                });
            }
            "--spec" => {
                let path = it.next().ok_or("--spec needs a path")?;
                source = Some(DataSource::Spec(path.clone()));
            }
            "--small" => small = true,
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "--scale must be an integer".to_string())?;
                if !(1..=200).contains(&scale) {
                    return Err("--scale must be in 1..=200".into());
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
            }
            "--no-opt" => optimizer = false,
            "--profile" => profile = true,
            "--json" => json = true,
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--timeout-ms needs a value")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be an integer".to_string())?;
                if ms == 0 {
                    return Err("--timeout-ms must be positive".into());
                }
                timeout_ms = Some(ms);
            }
            "--listen" => {
                listen = it.next().ok_or("--listen needs an address")?.clone();
            }
            "--port" => {
                port = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|_| "--port must be 0..=65535".to_string())?;
            }
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--max-inflight" => {
                max_inflight = it
                    .next()
                    .ok_or("--max-inflight needs a value")?
                    .parse()
                    .map_err(|_| "--max-inflight must be an integer".to_string())?;
            }
            "--log" => {
                log = Some(it.next().ok_or("--log needs `stderr` or a path")?.clone());
            }
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let mode = match positional.split_first() {
        None => CliMode::Repl,
        Some((cmd, rest)) => match cmd.as_str() {
            "profile" => {
                if rest.is_empty() {
                    return Err("usage: kdap profile <keywords…>".into());
                }
                CliMode::Profile(rest.join(" "))
            }
            "stats" => {
                if !rest.is_empty() {
                    return Err("`kdap stats` takes no further arguments".into());
                }
                CliMode::Stats
            }
            "serve" => {
                if !rest.is_empty() {
                    return Err("`kdap serve` takes no further arguments".into());
                }
                CliMode::Serve
            }
            "slow" => {
                if !rest.is_empty() {
                    return Err("`kdap slow` takes no further arguments (reads stdin)".into());
                }
                CliMode::Slow
            }
            other => return Err(format!("unknown subcommand `{other}`\n{}", usage())),
        },
    };
    Ok(CliArgs {
        source: source.unwrap_or(DataSource::DemoEbiz),
        small,
        scale,
        seed,
        threads,
        optimizer,
        mode,
        profile,
        json,
        timeout_ms,
        listen,
        port,
        workers,
        max_inflight,
        log,
        trace_out,
    })
}

/// The usage banner.
pub fn usage() -> String {
    "usage: kdap [profile <keywords…> | stats | serve | slow] \
     [--demo ebiz|aw-online|aw-reseller|trends] [--spec FILE] \
     [--small] [--scale N] [--seed N] [--threads N] [--no-opt] [--profile] [--json] \
     [--timeout-ms N] [--trace-out FILE] \
     [--listen ADDR] [--port N] [--workers N] [--max-inflight N] [--log stderr|FILE]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_to_ebiz_demo() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.source, DataSource::DemoEbiz);
        assert!(!a.small);
        assert_eq!(a.seed, 42);
        assert_eq!(a.threads, 1);
        assert!(a.optimizer);
        assert_eq!(a.mode, CliMode::Repl);
        assert!(!a.profile);
        assert!(!a.json);
        assert_eq!(a.timeout_ms, None);
    }

    #[test]
    fn parses_scale() {
        assert_eq!(parse_args(&[]).unwrap().scale, 1);
        let a = parse_args(&args(&["--scale", "20"])).unwrap();
        assert_eq!(a.scale, 20);
        assert!(parse_args(&args(&["--scale"])).is_err());
        assert!(parse_args(&args(&["--scale", "0"])).is_err());
        assert!(parse_args(&args(&["--scale", "201"])).is_err());
        assert!(parse_args(&args(&["--scale", "xyz"])).is_err());
    }

    #[test]
    fn parses_timeout_ms() {
        let a = parse_args(&args(&["--timeout-ms", "250"])).unwrap();
        assert_eq!(a.timeout_ms, Some(250));
        assert!(parse_args(&args(&["--timeout-ms"])).is_err());
        assert!(parse_args(&args(&["--timeout-ms", "abc"])).is_err());
        assert!(parse_args(&args(&["--timeout-ms", "0"])).is_err());
    }

    #[test]
    fn parses_profile_subcommand() {
        let a = parse_args(&args(&["profile", "columbus", "lcd"])).unwrap();
        assert_eq!(a.mode, CliMode::Profile("columbus lcd".into()));
        let a = parse_args(&args(&["--demo", "ebiz", "profile", "tv", "--json"])).unwrap();
        assert_eq!(a.mode, CliMode::Profile("tv".into()));
        assert!(a.json);
        assert!(parse_args(&args(&["profile"])).is_err());
    }

    #[test]
    fn parses_stats_subcommand_and_flags() {
        let a = parse_args(&args(&["stats", "--json"])).unwrap();
        assert_eq!(a.mode, CliMode::Stats);
        assert!(a.json);
        let a = parse_args(&args(&["--profile"])).unwrap();
        assert!(a.profile);
        assert_eq!(a.mode, CliMode::Repl);
        assert!(parse_args(&args(&["stats", "extra"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_serve_subcommand_and_flags() {
        let a = parse_args(&args(&["serve"])).unwrap();
        assert_eq!(a.mode, CliMode::Serve);
        assert_eq!(a.listen, "127.0.0.1");
        assert_eq!(a.port, 8642);
        assert_eq!(a.workers, 4);
        assert_eq!(a.max_inflight, 64);
        let a = parse_args(&args(&[
            "serve",
            "--listen",
            "0.0.0.0",
            "--port",
            "9000",
            "--workers",
            "8",
            "--max-inflight",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.listen, "0.0.0.0");
        assert_eq!(a.port, 9000);
        assert_eq!(a.workers, 8);
        assert_eq!(a.max_inflight, 2);
        assert!(parse_args(&args(&["serve", "extra"])).is_err());
        assert!(parse_args(&args(&["--port", "notaport"])).is_err());
        assert!(parse_args(&args(&["--port", "70000"])).is_err());
        assert!(parse_args(&args(&["--workers"])).is_err());
        assert!(parse_args(&args(&["--max-inflight", "x"])).is_err());
    }

    #[test]
    fn parses_telemetry_flags() {
        let a = parse_args(&args(&["serve", "--log", "stderr"])).unwrap();
        assert_eq!(a.log, Some("stderr".into()));
        let a = parse_args(&args(&["serve", "--log", "/tmp/access.jsonl"])).unwrap();
        assert_eq!(a.log, Some("/tmp/access.jsonl".into()));
        assert_eq!(parse_args(&args(&["serve"])).unwrap().log, None);
        assert!(parse_args(&args(&["serve", "--log"])).is_err());

        let a = parse_args(&args(&["profile", "tv", "--trace-out", "t.json"])).unwrap();
        assert_eq!(a.mode, CliMode::Profile("tv".into()));
        assert_eq!(a.trace_out, Some("t.json".into()));
        assert!(parse_args(&args(&["profile", "tv", "--trace-out"])).is_err());
    }

    #[test]
    fn parses_slow_subcommand() {
        let a = parse_args(&args(&["slow"])).unwrap();
        assert_eq!(a.mode, CliMode::Slow);
        let a = parse_args(&args(&["slow", "--json"])).unwrap();
        assert!(a.json);
        assert!(parse_args(&args(&["slow", "extra"])).is_err());
    }

    #[test]
    fn parses_demo_and_flags() {
        let a = parse_args(&args(&[
            "--demo",
            "aw-online",
            "--small",
            "--seed",
            "7",
            "--threads",
            "4",
            "--no-opt",
        ]))
        .unwrap();
        assert_eq!(a.source, DataSource::DemoAwOnline);
        assert!(a.small);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 4);
        assert!(!a.optimizer);
    }

    #[test]
    fn parses_spec_path() {
        let a = parse_args(&args(&["--spec", "wh.spec"])).unwrap();
        assert_eq!(a.source, DataSource::Spec("wh.spec".into()));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse_args(&args(&["--demo", "nope"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--seed", "abc"])).is_err());
        assert!(parse_args(&args(&["--threads", "x"])).is_err());
        assert!(parse_args(&args(&["--demo"])).is_err());
    }
}
