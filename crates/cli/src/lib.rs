//! # kdap-cli
//!
//! The `kdap` command: an interactive keyword-driven analytical
//! processing console over either the built-in demo warehouses or your
//! own CSV data described by a [`kdap_warehouse::spec`] file.
//!
//! ```text
//! kdap --demo ebiz                 # paper's running example (Figure 2)
//! kdap --demo aw-online --small    # AdventureWorks-style internet sales
//! kdap --spec my_warehouse.spec    # your data
//! ```

pub mod command;
pub mod repl;
pub mod stats;

pub use command::Command;
pub use repl::Repl;

/// Which warehouse to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataSource {
    DemoEbiz,
    DemoAwOnline,
    DemoAwReseller,
    DemoTrends,
    Spec(String),
}

/// What the invocation does: the interactive console (default) or a
/// one-shot subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliMode {
    /// Interactive console (no subcommand).
    Repl,
    /// `kdap profile <keywords…>` — run the query once and print the
    /// per-stage timing tree.
    Profile(String),
    /// `kdap stats` — print catalog statistics and exit.
    Stats,
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    pub source: DataSource,
    pub small: bool,
    pub seed: u64,
    /// Worker threads for the parallel execution engine (1 = serial,
    /// 0 = all cores).
    pub threads: usize,
    /// Plan optimizer (selectivity reordering, predicate fusion, semi-join
    /// reuse); `--no-opt` turns it off for A/B comparison.
    pub optimizer: bool,
    /// One-shot subcommand, or the console.
    pub mode: CliMode,
    /// `--profile`: enable the observability recorder; `explain` appends
    /// live stage timings and the `profile` console command works.
    pub profile: bool,
    /// `--json`: machine-readable output for one-shot subcommands.
    pub json: bool,
    /// `--timeout-ms N`: per-query deadline; queries that exceed it abort
    /// with a timeout error instead of running to completion.
    pub timeout_ms: Option<u64>,
}

/// Parses `kdap` arguments (everything after `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut source = None;
    let mut small = false;
    let mut seed = 42u64;
    let mut threads = 1usize;
    let mut optimizer = true;
    let mut profile = false;
    let mut json = false;
    let mut timeout_ms = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => {
                let which = it.next().ok_or("--demo needs a name")?;
                source = Some(match which.as_str() {
                    "ebiz" => DataSource::DemoEbiz,
                    "aw-online" => DataSource::DemoAwOnline,
                    "aw-reseller" => DataSource::DemoAwReseller,
                    "trends" => DataSource::DemoTrends,
                    other => {
                        return Err(format!(
                            "unknown demo `{other}` (ebiz|aw-online|aw-reseller|trends)"
                        ))
                    }
                });
            }
            "--spec" => {
                let path = it.next().ok_or("--spec needs a path")?;
                source = Some(DataSource::Spec(path.clone()));
            }
            "--small" => small = true,
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
            }
            "--no-opt" => optimizer = false,
            "--profile" => profile = true,
            "--json" => json = true,
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--timeout-ms needs a value")?
                    .parse()
                    .map_err(|_| "--timeout-ms must be an integer".to_string())?;
                if ms == 0 {
                    return Err("--timeout-ms must be positive".into());
                }
                timeout_ms = Some(ms);
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let mode = match positional.split_first() {
        None => CliMode::Repl,
        Some((cmd, rest)) => match cmd.as_str() {
            "profile" => {
                if rest.is_empty() {
                    return Err("usage: kdap profile <keywords…>".into());
                }
                CliMode::Profile(rest.join(" "))
            }
            "stats" => {
                if !rest.is_empty() {
                    return Err("`kdap stats` takes no further arguments".into());
                }
                CliMode::Stats
            }
            other => return Err(format!("unknown subcommand `{other}`\n{}", usage())),
        },
    };
    Ok(CliArgs {
        source: source.unwrap_or(DataSource::DemoEbiz),
        small,
        seed,
        threads,
        optimizer,
        mode,
        profile,
        json,
        timeout_ms,
    })
}

/// The usage banner.
pub fn usage() -> String {
    "usage: kdap [profile <keywords…> | stats] \
     [--demo ebiz|aw-online|aw-reseller|trends] [--spec FILE] \
     [--small] [--seed N] [--threads N] [--no-opt] [--profile] [--json] \
     [--timeout-ms N]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_to_ebiz_demo() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.source, DataSource::DemoEbiz);
        assert!(!a.small);
        assert_eq!(a.seed, 42);
        assert_eq!(a.threads, 1);
        assert!(a.optimizer);
        assert_eq!(a.mode, CliMode::Repl);
        assert!(!a.profile);
        assert!(!a.json);
        assert_eq!(a.timeout_ms, None);
    }

    #[test]
    fn parses_timeout_ms() {
        let a = parse_args(&args(&["--timeout-ms", "250"])).unwrap();
        assert_eq!(a.timeout_ms, Some(250));
        assert!(parse_args(&args(&["--timeout-ms"])).is_err());
        assert!(parse_args(&args(&["--timeout-ms", "abc"])).is_err());
        assert!(parse_args(&args(&["--timeout-ms", "0"])).is_err());
    }

    #[test]
    fn parses_profile_subcommand() {
        let a = parse_args(&args(&["profile", "columbus", "lcd"])).unwrap();
        assert_eq!(a.mode, CliMode::Profile("columbus lcd".into()));
        let a = parse_args(&args(&["--demo", "ebiz", "profile", "tv", "--json"])).unwrap();
        assert_eq!(a.mode, CliMode::Profile("tv".into()));
        assert!(a.json);
        assert!(parse_args(&args(&["profile"])).is_err());
    }

    #[test]
    fn parses_stats_subcommand_and_flags() {
        let a = parse_args(&args(&["stats", "--json"])).unwrap();
        assert_eq!(a.mode, CliMode::Stats);
        assert!(a.json);
        let a = parse_args(&args(&["--profile"])).unwrap();
        assert!(a.profile);
        assert_eq!(a.mode, CliMode::Repl);
        assert!(parse_args(&args(&["stats", "extra"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_demo_and_flags() {
        let a = parse_args(&args(&[
            "--demo",
            "aw-online",
            "--small",
            "--seed",
            "7",
            "--threads",
            "4",
            "--no-opt",
        ]))
        .unwrap();
        assert_eq!(a.source, DataSource::DemoAwOnline);
        assert!(a.small);
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 4);
        assert!(!a.optimizer);
    }

    #[test]
    fn parses_spec_path() {
        let a = parse_args(&args(&["--spec", "wh.spec"])).unwrap();
        assert_eq!(a.source, DataSource::Spec("wh.spec".into()));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse_args(&args(&["--demo", "nope"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--seed", "abc"])).is_err());
        assert!(parse_args(&args(&["--threads", "x"])).is_err());
        assert!(parse_args(&args(&["--demo"])).is_err());
    }
}
