//! The `kdap` binary: open a warehouse (demo or spec-defined) and run
//! the interactive analytical console, a one-shot subcommand, or the
//! HTTP server. Every query path goes through the unified request API
//! ([`QueryRequest`] → [`Kdap::run`]).

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use kdap_cli::stats::{stats_json, stats_text};
use kdap_cli::{parse_args, CliArgs, CliMode, Command, DataSource, Repl};
use kdap_core::{
    render_interpretations, CancelToken, Kdap, KdapError, QueryRequest, Verb, WireFormat,
};
use kdap_obs::{chrome_trace, LedgerEntry, QueryProfile, SlowQueryLedger, TraceId};
use kdap_server::{EngineRegistry, KdapServer, ServerConfig};

/// Ctrl-C cancels the in-flight query, not the process. The handler does
/// nothing but a relaxed atomic store through a pre-registered
/// [`CancelToken`] — the only async-signal-safe thing it could do.
///
/// The token is created by the console and scoped to its session via
/// [`kdap_core::KdapBuilder::cancel_token`]; one-shot subcommands and
/// `kdap serve` never install the handler, so SIGINT kills them normally
/// and server tenants are only ever cancelled by their own clients.
#[cfg(unix)]
mod sigint {
    use kdap_core::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();

    extern "C" fn on_sigint(_sig: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    /// Registers `token` and installs the SIGINT handler.
    pub fn install(token: CancelToken) {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        let _ = TOKEN.set(token);
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}
use kdap_datagen::{
    build_aw_online, build_aw_reseller, build_ebiz, build_trends, EbizScale, Scale, TrendsScale,
};
use kdap_warehouse::{load_spec, Warehouse};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let wh = build_warehouse(&args);

    let observability = args.profile
        || matches!(args.mode, CliMode::Profile(_))
        || matches!(args.mode, CliMode::Serve)
        || matches!(args.mode, CliMode::Slow);
    let mut builder = Kdap::builder(wh)
        .cache_capacity(64)
        .threads(args.threads)
        .optimizer(args.optimizer)
        .observability(observability);
    if let Some(ms) = args.timeout_ms {
        builder = builder.deadline(Duration::from_millis(ms));
    }

    // Ctrl-C cancels the console's in-flight query. The token is owned
    // here and wired into this session only; non-console modes leave the
    // default SIGINT disposition alone.
    let cancel: Option<CancelToken> = {
        #[cfg(unix)]
        if args.mode == CliMode::Repl {
            let token = CancelToken::new();
            builder = builder.cancel_token(token.clone());
            sigint::install(token.clone());
            Some(token)
        } else {
            None
        }
        #[cfg(not(unix))]
        None
    };

    let kdap = match builder.build() {
        Ok(k) => k,
        Err(e) => {
            eprintln!("cannot open warehouse: {e} (a `measure` declaration is required)");
            std::process::exit(1);
        }
    };

    match &args.mode {
        CliMode::Profile(query) => {
            // One-shot profiles get an edge-minted trace id, same as
            // server requests, so CLI traces correlate with logs.
            let trace = TraceId::mint().to_string();
            let request =
                QueryRequest::new(Verb::Profile, query.as_str()).with_trace_id(trace.clone());
            match kdap.run(&request) {
                Ok(resp) => {
                    if let Some(path) = &args.trace_out {
                        let body = match &resp.profile {
                            Some(p) => chrome_trace(p),
                            None => chrome_trace(&QueryProfile::empty(query)),
                        };
                        if let Err(e) = std::fs::write(path, body) {
                            eprintln!("cannot write {path}: {e}");
                            std::process::exit(1);
                        }
                        eprintln!("wrote Chrome trace to {path} (open at https://ui.perfetto.dev)");
                    }
                    if args.json {
                        match resp.encode(WireFormat::Json) {
                            Ok(body) => print!("{body}"),
                            Err(e) => {
                                eprintln!("profile failed: {e}");
                                std::process::exit(1);
                            }
                        }
                    } else {
                        print!(
                            "{}",
                            render_interpretations(kdap.warehouse(), &resp.ranked, 3)
                        );
                        if let Some(p) = &resp.profile {
                            print!("{}", p.render());
                        }
                    }
                }
                Err(KdapError::NoInterpretation { .. } | KdapError::EmptyQuery) => {
                    println!("no interpretation found for \"{query}\"");
                }
                Err(e) => {
                    eprintln!("profile failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        CliMode::Stats => {
            if args.json {
                println!("{}", stats_json(&kdap));
            } else {
                print!("{}", stats_text(&kdap));
            }
        }
        CliMode::Serve => serve(&args, kdap),
        CliMode::Slow => slow(&args, kdap),
        CliMode::Repl => repl(kdap, cancel),
    }
}

/// `kdap slow`: run each stdin line as a profile query through a
/// slow-query ledger and print the most interesting entries — the same
/// retention policy the server applies at `GET /v1/{tenant}/slow`.
fn slow(args: &CliArgs, kdap: Kdap) {
    let ledger = SlowQueryLedger::new(16);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let keywords = line.trim();
        if keywords.is_empty() {
            continue;
        }
        let trace = TraceId::mint().to_string();
        let mut request = QueryRequest::new(Verb::Profile, keywords).with_trace_id(trace.clone());
        if let Some(ms) = args.timeout_ms {
            request.options.timeout_ms = Some(ms);
        }
        let started = std::time::Instant::now();
        let result = kdap.run(&request);
        let latency_ns = started.elapsed().as_nanos() as u64;
        let (status, breach, profile) = match &result {
            Ok(resp) => (200, None, resp.profile.clone()),
            Err(KdapError::Timeout { .. }) => (408, Some("timeout".to_string()), None),
            Err(KdapError::Cancelled { .. }) => (499, Some("cancelled".to_string()), None),
            Err(KdapError::BudgetExceeded { .. }) => {
                (507, Some("budget_exceeded".to_string()), None)
            }
            Err(_) => (400, None, None),
        };
        ledger.record(LedgerEntry {
            trace_id: Some(trace),
            verb: "profile".to_string(),
            keywords: keywords.to_string(),
            latency_ns,
            status,
            breach,
            profile,
        });
    }
    if args.json {
        println!("{}", ledger.to_json());
    } else if ledger.is_empty() {
        println!("slow-query ledger is empty (no queries read from stdin)");
    } else {
        println!("slow-query ledger — most interesting first:");
        for entry in ledger.snapshot() {
            let breach = entry
                .breach
                .as_deref()
                .map(|b| format!(" breach={b}"))
                .unwrap_or_default();
            println!(
                "  {:>10}  status={}{}  trace={}  {}",
                kdap_obs::fmt_ns(entry.latency_ns),
                entry.status,
                breach,
                entry.trace_id.as_deref().unwrap_or("-"),
                entry.keywords,
            );
        }
    }
}

/// Builds the warehouse the invocation asked for, exiting with a
/// diagnostic when a spec is missing or invalid.
fn build_warehouse(args: &CliArgs) -> Warehouse {
    match &args.source {
        DataSource::DemoEbiz => {
            eprintln!("building the EBiz demo warehouse…");
            let scale = if args.small {
                EbizScale::small()
            } else {
                EbizScale::full()
            }
            .scaled(args.scale);
            build_ebiz(scale, args.seed).expect("demo generator is valid")
        }
        DataSource::DemoAwOnline => {
            eprintln!("building AW_ONLINE…");
            let scale = if args.small {
                Scale::small()
            } else {
                Scale::full()
            }
            .scaled(args.scale);
            build_aw_online(scale, args.seed).expect("demo generator is valid")
        }
        DataSource::DemoAwReseller => {
            eprintln!("building AW_RESELLER…");
            let scale = if args.small {
                Scale::small()
            } else {
                Scale::full()
            }
            .scaled(args.scale);
            build_aw_reseller(scale, args.seed).expect("demo generator is valid")
        }
        DataSource::DemoTrends => {
            eprintln!("building the query-log demo warehouse…");
            let scale = if args.small {
                TrendsScale::small()
            } else {
                TrendsScale::full()
            }
            .scaled(args.scale);
            build_trends(scale, args.seed).expect("demo generator is valid")
        }
        DataSource::Spec(path) => {
            let spec_dir = std::path::Path::new(path)
                .parent()
                .map(|p| p.to_path_buf())
                .unwrap_or_default();
            let spec = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read spec {path}: {e}");
                    std::process::exit(1);
                }
            };
            match load_spec(&spec, |file| {
                std::fs::read_to_string(spec_dir.join(file)).map_err(|e| e.to_string())
            }) {
                Ok(wh) => wh,
                Err(e) => {
                    eprintln!("invalid warehouse spec: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// The tenant name a data source is served under.
fn tenant_name(source: &DataSource) -> String {
    match source {
        DataSource::DemoEbiz => "ebiz".to_string(),
        DataSource::DemoAwOnline => "aw-online".to_string(),
        DataSource::DemoAwReseller => "aw-reseller".to_string(),
        DataSource::DemoTrends => "trends".to_string(),
        DataSource::Spec(path) => std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("warehouse")
            .to_string(),
    }
}

/// `kdap serve`: host the warehouse behind the HTTP query API until the
/// process is killed.
fn serve(args: &CliArgs, kdap: Kdap) {
    let name = tenant_name(&args.source);
    let registry = EngineRegistry::new().with(name.clone(), Arc::new(kdap));
    let config = ServerConfig {
        listen: args.listen.clone(),
        port: args.port,
        workers: args.workers,
        max_inflight: args.max_inflight,
        log: args.log.clone(),
        ..ServerConfig::default()
    };
    let server = match KdapServer::start(registry, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}:{}: {e}", config.listen, config.port);
            std::process::exit(1);
        }
    };
    println!(
        "kdap-server listening on http://{} — try: curl -s http://{}/v1/{}/stats",
        server.addr(),
        server.addr(),
        name
    );
    // Serve until killed; the worker pool owns all the work.
    loop {
        std::thread::park();
    }
}

/// The interactive console loop over stdio.
fn repl(kdap: Kdap, cancel: Option<CancelToken>) {
    let mut repl = Repl::new(kdap);
    println!("KDAP console ready — `help` lists commands. Try: q Columbus LCD");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("kdap> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                // Ctrl-C at the prompt: nothing in flight; re-prompt.
                println!();
                continue;
            }
            Err(_) => break,
        }
        // A Ctrl-C that landed between queries must not cancel the next.
        if let Some(token) = &cancel {
            token.reset();
        }
        match Command::parse(&line) {
            Ok(cmd) => match repl.execute(cmd, &mut stdout) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    eprintln!("io error: {e}");
                    break;
                }
            },
            Err(msg) if msg.is_empty() => {}
            Err(msg) => println!("{msg}"),
        }
    }
    println!("bye.");
}
