//! The `kdap stats` surface: catalog statistics (table row counts,
//! per-column cardinality), text-index figures, and session cache
//! counters, rendered as a console table or as JSON.

use kdap_core::Kdap;
use kdap_obs::{json_string, snapshot_json};
use kdap_warehouse::summarize;

/// Human-readable statistics table.
pub fn stats_text(kdap: &Kdap) -> String {
    let s = summarize(kdap.warehouse());
    let idx = kdap.text_index().stats();
    let mut out = format!(
        "warehouse: {} table(s) · {} fact rows · ~{} KB\n",
        s.tables.len(),
        s.fact_rows,
        s.approx_bytes / 1024,
    );
    for t in &s.tables {
        out.push_str(&format!(
            "{}{}  {} row(s) · ~{} KB compressed\n",
            t.name,
            if t.fact { "  [fact]" } else { "" },
            t.rows,
            t.heap_bytes / 1024,
        ));
        for c in &t.columns {
            let range = match (c.min, c.max) {
                (Some(lo), Some(hi)) => format!("  [{lo}..{hi}]"),
                _ => String::new(),
            };
            out.push_str(&format!(
                "  {:<20} {:<6} {:>8} distinct  {:>6} null(s){}{}\n",
                c.name,
                c.value_type,
                c.distinct,
                c.nulls,
                if c.searchable { "  [searchable]" } else { "" },
                range,
            ));
        }
    }
    out.push_str(&format!(
        "text index: {} doc(s) · {} term(s) · {} posting(s) · avg doc len {:.1} · ~{} KB\n",
        idx.docs,
        idx.terms,
        idx.postings,
        idx.avg_doc_len,
        idx.approx_bytes / 1024,
    ));
    if let Some(c) = kdap.subspace_cache_counters() {
        out.push_str(&format!(
            "subspace cache: {} hit(s) / {} miss(es) / {} eviction(s)\n",
            c.hits, c.misses, c.evictions
        ));
    }
    if let Some(c) = kdap.semijoin_counters() {
        out.push_str(&format!(
            "semi-join cache: {} hit(s) / {} miss(es) / {} eviction(s)\n",
            c.hits, c.misses, c.evictions
        ));
    }
    let h = kdap.cache_container_histogram();
    out.push_str(&format!(
        "rowset containers: {} array / {} bitmap / {} run\n",
        h.arrays, h.bitmaps, h.runs
    ));
    out.push_str(&format!(
        "kernels: {} active ({} detected: {}){}\n",
        kdap.kernel_tier().name(),
        kdap_core::kernel::detected_tier().name(),
        kdap_core::kernel::detected_features().join(", "),
        if kdap_core::kernel::simd_disabled_by_env() {
            "  [KDAP_NO_SIMD]"
        } else {
            ""
        },
    ));
    out
}

/// The same statistics as a JSON object (hand-rolled; the workspace
/// carries no serde).
pub fn stats_json(kdap: &Kdap) -> String {
    let s = summarize(kdap.warehouse());
    let idx = kdap.text_index().stats();
    let mut out = String::from("{\n  \"tables\": [\n");
    for (ti, t) in s.tables.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"rows\": {}, \"heap_bytes\": {}, \"fact\": {}, \"columns\": [\n",
            json_string(&t.name),
            t.rows,
            t.heap_bytes,
            t.fact,
        ));
        for (ci, c) in t.columns.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": {}, \"type\": {}, \"distinct\": {}, \"nulls\": {}, \"searchable\": {}{}}}{}\n",
                json_string(&c.name),
                json_string(&c.value_type),
                c.distinct,
                c.nulls,
                c.searchable,
                match (c.min, c.max) {
                    (Some(lo), Some(hi)) => format!(", \"min\": {lo}, \"max\": {hi}"),
                    _ => String::new(),
                },
                if ci + 1 < t.columns.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if ti + 1 < s.tables.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"fact_rows\": {},\n", s.fact_rows));
    out.push_str(&format!("  \"warehouse_bytes\": {},\n", s.approx_bytes));
    out.push_str(&format!(
        "  \"text_index\": {{\"docs\": {}, \"terms\": {}, \"postings\": {}, \"avg_doc_len\": {:.3}, \"bytes\": {}}}",
        idx.docs, idx.terms, idx.postings, idx.avg_doc_len, idx.approx_bytes,
    ));
    if let Some(c) = kdap.subspace_cache_counters() {
        out.push_str(&format!(
            ",\n  \"subspace_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            c.hits, c.misses, c.evictions
        ));
    }
    if let Some(c) = kdap.semijoin_counters() {
        out.push_str(&format!(
            ",\n  \"semijoin_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            c.hits, c.misses, c.evictions
        ));
    }
    let h = kdap.cache_container_histogram();
    out.push_str(&format!(
        ",\n  \"rowset_containers\": {{\"array\": {}, \"bitmap\": {}, \"run\": {}}}",
        h.arrays, h.bitmaps, h.runs
    ));
    out.push_str(&format!(
        ",\n  \"kernel\": {{\"active\": \"{}\", \"detected\": \"{}\", \"features\": [{}], \
         \"no_simd_env\": {}}}",
        kdap.kernel_tier().name(),
        kdap_core::kernel::detected_tier().name(),
        kdap_core::kernel::detected_features()
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        kdap_core::kernel::simd_disabled_by_env(),
    ));
    // Session metrics, encoded by the same snapshot encoder the server's
    // `GET /v1/{tenant}/stats` uses — identical shape in both surfaces.
    out.push_str(",\n  \"metrics\": ");
    out.push_str(&snapshot_json(&kdap.obs().metrics_snapshot(), "  "));
    out.push_str("\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_datagen::{build_ebiz, EbizScale};

    fn session() -> Kdap {
        let wh = build_ebiz(EbizScale::small(), 7).unwrap();
        Kdap::builder(wh).cache_capacity(8).build().unwrap()
    }

    #[test]
    fn text_lists_tables_columns_and_index() {
        let kdap = session();
        let out = stats_text(&kdap);
        assert!(out.contains("fact rows"), "{out}");
        assert!(out.contains("[fact]"), "{out}");
        assert!(out.contains("distinct"), "{out}");
        assert!(out.contains("[searchable]"), "{out}");
        assert!(out.contains("text index:"), "{out}");
        assert!(out.contains("subspace cache:"), "{out}");
        assert!(out.contains("semi-join cache:"), "{out}");
        assert!(out.contains("KB compressed"), "{out}");
        assert!(out.contains("rowset containers:"), "{out}");
        assert!(out.contains("kernels:"), "{out}");
        assert!(
            out.contains(&format!(
                "{} detected",
                kdap_core::kernel::detected_tier().name()
            )),
            "{out}"
        );
    }

    #[test]
    fn json_is_structured_and_balanced() {
        let kdap = session();
        let out = stats_json(&kdap);
        assert!(out.contains("\"tables\""), "{out}");
        assert!(out.contains("\"fact_rows\""), "{out}");
        assert!(out.contains("\"text_index\""), "{out}");
        assert!(out.contains("\"subspace_cache\""), "{out}");
        assert!(out.contains("\"heap_bytes\""), "{out}");
        assert!(out.contains("\"rowset_containers\""), "{out}");
        assert!(out.contains("\"kernel\""), "{out}");
        assert!(out.contains("\"metrics\""), "{out}");
        assert!(out.contains("\"counters\""), "{out}");
        assert!(out.contains("\"histograms\""), "{out}");
        assert!(
            out.contains(&format!(
                "\"active\": \"{}\"",
                kdap_core::kernel::active_tier().name()
            )),
            "{out}"
        );
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "balanced braces: {out}"
        );
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }
}
