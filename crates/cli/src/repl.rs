//! The console engine: executes parsed [`Command`]s against a KDAP
//! session and writes human output to any `Write` sink (tests drive it
//! with string buffers; `main` wires it to stdio).

use std::io::Write;

use kdap_core::interest::InterestMode;
use kdap_core::{
    drill_down, remove_constraint, render_exploration, render_interpretations, roll_up,
    Exploration, FacetOrder, Kdap, KdapError, QueryOptions, QueryRequest, RankedStarNet, StarNet,
    Verb,
};
use kdap_query::paths_between;

use crate::command::{Command, ModeArg, OrderArg};

/// Interactive session state. All queries flow through the unified
/// request API ([`Kdap::run`]); console toggles like `mode` and `order`
/// accumulate in a [`QueryOptions`] instead of mutating session config.
pub struct Repl {
    kdap: Kdap,
    options: QueryOptions,
    interpretations: Vec<RankedStarNet>,
    current: Option<StarNet>,
    exploration: Option<Exploration>,
}

impl Repl {
    pub fn new(kdap: Kdap) -> Self {
        Repl {
            kdap,
            options: QueryOptions::default(),
            interpretations: Vec::new(),
            current: None,
            exploration: None,
        }
    }

    /// The underlying session (for stats and tests).
    pub fn session(&self) -> &Kdap {
        &self.kdap
    }

    /// The option overrides the console has accumulated so far.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// This console's request for `verb` over `keywords`, carrying the
    /// accumulated option overrides.
    fn request(&self, verb: Verb, keywords: &str) -> QueryRequest {
        QueryRequest::new(verb, keywords).with_options(self.options.clone())
    }

    /// Executes one command; returns `false` when the session should end.
    pub fn execute(&mut self, cmd: Command, out: &mut impl Write) -> std::io::Result<bool> {
        match cmd {
            Command::Query(q) => match self.kdap.run(&self.request(Verb::Differentiate, &q)) {
                Ok(resp) => {
                    self.interpretations = resp.ranked;
                    if self.interpretations.is_empty() {
                        writeln!(out, "no interpretation found for \"{q}\"")?;
                    } else {
                        write!(
                            out,
                            "{}",
                            render_interpretations(self.kdap.warehouse(), &self.interpretations, 8)
                        )?;
                        writeln!(out, "pick one with `pick <n>`.")?;
                    }
                }
                Err(e) => {
                    self.interpretations.clear();
                    writeln!(out, "{}", query_failure(&e))?;
                }
            },
            Command::Pick(n) => match self.interpretations.get(n.wrapping_sub(1)) {
                Some(r) => {
                    self.current = Some(r.net.clone());
                    self.explore(out)?;
                }
                None => writeln!(out, "no interpretation #{n}")?,
            },
            Command::Drill(f, e) => self.drill(f, e, out)?,
            Command::RollUp(n) => {
                let Some(net) = &self.current else {
                    writeln!(out, "nothing explored yet")?;
                    return Ok(true);
                };
                match roll_up(
                    self.kdap.warehouse(),
                    self.kdap.join_index(),
                    net,
                    n.wrapping_sub(1),
                ) {
                    Some(rolled) => {
                        self.current = Some(rolled);
                        self.explore(out)?;
                    }
                    None => writeln!(out, "no constraint #{n}")?,
                }
            }
            Command::Drop(n) => {
                let Some(net) = &self.current else {
                    writeln!(out, "nothing explored yet")?;
                    return Ok(true);
                };
                match remove_constraint(net, n.wrapping_sub(1)) {
                    Some(reduced) => {
                        self.current = Some(reduced);
                        self.explore(out)?;
                    }
                    None => writeln!(out, "no constraint #{n}")?,
                }
            }
            Command::Mode(m) => {
                self.options.mode = Some(match m {
                    ModeArg::Surprise => InterestMode::Surprise,
                    ModeArg::Bellwether => InterestMode::Bellwether,
                });
                writeln!(out, "interestingness mode set")?;
                if self.current.is_some() {
                    self.explore(out)?;
                }
            }
            Command::Order(o) => {
                self.options.order = Some(match o {
                    OrderArg::Dynamic => FacetOrder::Dynamic,
                    OrderArg::Consistent => FacetOrder::Consistent,
                    OrderArg::Hybrid(p) => FacetOrder::Hybrid { pinned: p },
                });
                writeln!(out, "facet ordering set")?;
                if self.current.is_some() {
                    self.explore(out)?;
                }
            }
            Command::Profile(q) => {
                if !self.kdap.obs().is_enabled() {
                    writeln!(out, "observability is off — restart kdap with --profile")?;
                } else {
                    match self.kdap.run(&self.request(Verb::Profile, &q)) {
                        Ok(resp) => {
                            writeln!(
                                out,
                                "profiled the top of {} interpretation(s):",
                                resp.n_interpretations
                            )?;
                            if let Some(p) = &resp.profile {
                                write!(out, "{}", p.render())?;
                            }
                            self.current = resp.ranked.first().map(|r| r.net.clone());
                            self.interpretations = resp.ranked;
                            self.exploration = resp.exploration;
                        }
                        Err(KdapError::NoInterpretation { .. } | KdapError::EmptyQuery) => {
                            writeln!(out, "no interpretation found for \"{q}\"")?;
                        }
                        Err(e) => writeln!(out, "profile failed: {e}")?,
                    }
                }
            }
            Command::Explain => match &self.current {
                Some(net) => {
                    // With `--profile`, the replayed plan execution is
                    // recorded and its timing tree appended to EXPLAIN.
                    self.kdap.obs().start_profile("explain");
                    match self.kdap.explain(net) {
                        Ok(plan) => {
                            write!(out, "{}", plan.render())?;
                            match self.kdap.explain_explore_with(net, &self.options) {
                                Ok((_, report)) => write!(out, "{}", report.render())?,
                                Err(e) => writeln!(out, "explore report failed: {e}")?,
                            }
                        }
                        Err(e) => writeln!(out, "explain failed: {e}")?,
                    }
                    if let Some(p) = self.kdap.obs().take_profile() {
                        write!(out, "{}", p.render())?;
                    }
                }
                None => writeln!(out, "nothing explored yet")?,
            },
            Command::Show => match &self.exploration {
                Some(ex) => write!(out, "{}", render_exploration(ex))?,
                None => writeln!(out, "nothing explored yet")?,
            },
            Command::Save(dir) => {
                let path = std::path::Path::new(&dir);
                match kdap_warehouse::save_warehouse(self.kdap.warehouse(), path) {
                    Ok(()) => writeln!(
                        out,
                        "saved warehouse to {dir} — reopen with `kdap --spec {dir}/warehouse.spec`"
                    )?,
                    Err(e) => writeln!(out, "save failed: {e}")?,
                }
            }
            Command::Schema => {
                write!(out, "{}", kdap_warehouse::describe(self.kdap.warehouse()))?;
            }
            Command::Stats => {
                let wh = self.kdap.warehouse();
                let ts = self.kdap.text_index().stats();
                writeln!(
                    out,
                    "facts: {} · tables: {} · searchable domains: {} · virtual docs: {}",
                    wh.fact_rows(),
                    wh.tables().len(),
                    wh.searchable_columns().count(),
                    ts.docs,
                )?;
                writeln!(
                    out,
                    "text index: {} term(s) · {} posting(s) · avg doc len {:.1}",
                    ts.terms, ts.postings, ts.avg_doc_len
                )?;
                if let Some(c) = self.kdap.subspace_cache_counters() {
                    writeln!(
                        out,
                        "subspace cache: {} hits / {} misses / {} evictions",
                        c.hits, c.misses, c.evictions
                    )?;
                }
                if let Some(c) = self.kdap.semijoin_counters() {
                    writeln!(
                        out,
                        "semi-join cache: {} hits / {} misses / {} evictions",
                        c.hits, c.misses, c.evictions
                    )?;
                }
                let m = self.kdap.mapper_counters();
                writeln!(
                    out,
                    "row-mapper cache: {} hits / {} misses",
                    m.hits, m.misses
                )?;
            }
            Command::Help => writeln!(
                out,
                "q <keywords> · pick <n> · drill <facet#> <entry#> · up <n> · drop <n>\n\
                 mode surprise|bellwether · order dynamic|consistent|hybrid <p>\n\
                 explain · profile <keywords> · show · schema · stats · save <dir> · quit"
            )?,
            Command::Quit => return Ok(false),
        }
        Ok(true)
    }

    fn explore(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        let Some(net) = &self.current else {
            return Ok(());
        };
        writeln!(out, "exploring: {}", net.display(self.kdap.warehouse()))?;
        match self.kdap.explore_with_options(net, &self.options) {
            Ok(ex) => {
                write!(out, "{}", render_exploration(&ex))?;
                writeln!(out, "(facets are numbered top to bottom for `drill`)")?;
                self.exploration = Some(ex);
            }
            Err(e) => writeln!(out, "explore failed: {e}")?,
        }
        Ok(())
    }

    fn drill(&mut self, f: usize, e: usize, out: &mut impl Write) -> std::io::Result<()> {
        let (Some(ex), Some(net)) = (&self.exploration, &self.current) else {
            writeln!(out, "nothing explored yet")?;
            return Ok(());
        };
        let mut facet_no = 0;
        let mut target = None;
        for panel in &ex.panels {
            for attr in &panel.attrs {
                facet_no += 1;
                if facet_no == f {
                    target = Some(attr);
                }
            }
        }
        let Some(attr) = target else {
            writeln!(out, "no facet #{f}")?;
            return Ok(());
        };
        let Some(entry) = attr.entries.get(e.wrapping_sub(1)) else {
            writeln!(out, "facet #{f} has no entry #{e}")?;
            return Ok(());
        };
        let wh = self.kdap.warehouse();
        let Some(code) = wh
            .column(attr.attr)
            .dict()
            .and_then(|d| d.code_of(&entry.label))
        else {
            writeln!(out, "numeric ranges are refined via a new query, not drill")?;
            return Ok(());
        };
        let Some(path) = paths_between(wh.schema(), wh.schema().fact_table(), attr.attr.table, 8)
            .into_iter()
            .next()
        else {
            writeln!(out, "facet #{f} is not join-reachable from the fact table")?;
            return Ok(());
        };
        let drilled = drill_down(wh, net, attr.attr, &path, vec![code]);
        writeln!(out, "drilled into {} = {}", attr.name, entry.label)?;
        self.current = Some(drilled);
        self.explore(out)
    }
}

/// Console-friendly rendering of a failed query, with a hint on how to
/// proceed for the governance breaches an analyst can act on.
fn query_failure(e: &KdapError) -> String {
    match e {
        KdapError::EmptyQuery => {
            "query has no usable keywords — try content words, e.g. `q columbus lcd`".to_string()
        }
        KdapError::Timeout { .. } => format!("{e} — raise --timeout-ms or narrow the query"),
        KdapError::Cancelled { .. } => format!("{e} — interrupted with Ctrl-C"),
        KdapError::BudgetExceeded { .. } => format!("{e} — narrow the query or raise the budget"),
        other => format!("query failed: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_datagen::{build_ebiz, EbizScale};

    fn repl() -> Repl {
        let wh = build_ebiz(EbizScale::small(), 7).unwrap();
        Repl::new(Kdap::builder(wh).cache_capacity(8).build().unwrap())
    }

    fn run(repl: &mut Repl, line: &str) -> String {
        let mut out = Vec::new();
        let cmd = Command::parse(line).expect("valid command");
        repl.execute(cmd, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn query_pick_show_flow() {
        let mut r = repl();
        let out = run(&mut r, "q columbus");
        assert!(out.contains("#1"), "{out}");
        let out = run(&mut r, "pick 1");
        assert!(out.contains("subspace:"), "{out}");
        let out = run(&mut r, "show");
        assert!(out.contains("subspace:"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut r = repl();
        assert!(run(&mut r, "pick 5").contains("no interpretation"));
        assert!(run(&mut r, "show").contains("nothing explored"));
        assert!(run(&mut r, "up 1").contains("nothing explored"));
        let out = run(&mut r, "q zzzzqqqq");
        assert!(out.contains("no interpretation found"));
    }

    #[test]
    fn stopword_only_query_gets_a_friendly_hint() {
        let mut r = repl();
        let out = run(&mut r, "q the and of");
        assert!(out.contains("no usable keywords"), "{out}");
        // The previous result list is cleared, so `pick` has nothing.
        assert!(run(&mut r, "pick 1").contains("no interpretation"));
    }

    #[test]
    fn timed_out_query_reports_timeout_not_panic() {
        let wh = build_ebiz(EbizScale::small(), 7).unwrap();
        let mut kdap = Kdap::builder(wh).cache_capacity(8).build().unwrap();
        kdap.set_deadline(Some(std::time::Duration::ZERO));
        let mut r = Repl::new(kdap);
        let out = run(&mut r, "q columbus lcd");
        assert!(out.contains("timed out"), "{out}");
        assert!(out.contains("--timeout-ms"), "{out}");
    }

    #[test]
    fn cancelled_query_reports_cancellation() {
        let wh = build_ebiz(EbizScale::small(), 7).unwrap();
        let kdap = Kdap::builder(wh).cache_capacity(8).build().unwrap();
        let token = kdap.cancel_token();
        token.cancel();
        let mut r = Repl::new(kdap);
        let out = run(&mut r, "q columbus lcd");
        assert!(out.contains("cancelled"), "{out}");
        // Resetting the token (what the console does per prompt line)
        // makes the next query run normally.
        token.reset();
        let out = run(&mut r, "q columbus");
        assert!(out.contains("#1"), "{out}");
    }

    #[test]
    fn quit_ends_session() {
        let mut r = repl();
        let mut out = Vec::new();
        assert!(!r.execute(Command::Quit, &mut out).unwrap());
    }

    #[test]
    fn mode_and_order_re_render() {
        let mut r = repl();
        run(&mut r, "q columbus");
        run(&mut r, "pick 1");
        let out = run(&mut r, "mode bellwether");
        assert!(out.contains("subspace:"), "re-rendered: {out}");
        let out = run(&mut r, "order consistent");
        assert!(out.contains("subspace:"), "re-rendered: {out}");
    }

    #[test]
    fn console_toggles_accumulate_in_query_options() {
        let mut r = repl();
        assert_eq!(r.options().mode, None);
        assert_eq!(r.options().order, None);
        run(&mut r, "mode bellwether");
        run(&mut r, "order hybrid 2");
        assert_eq!(r.options().mode, Some(InterestMode::Bellwether));
        assert_eq!(r.options().order, Some(FacetOrder::Hybrid { pinned: 2 }));
    }

    #[test]
    fn explain_shows_the_plan() {
        let mut r = repl();
        assert!(run(&mut r, "explain").contains("nothing explored"));
        run(&mut r, "q seattle");
        run(&mut r, "pick 1");
        let out = run(&mut r, "explain");
        assert!(out.contains("fact rows"), "{out}");
        assert!(out.contains("subspace:"), "{out}");
        assert!(out.contains("via"), "{out}");
        assert!(out.contains("fused scans"), "{out}");
        assert!(out.contains("kernel"), "{out}");
    }

    #[test]
    fn save_roundtrip_via_console() {
        let mut r = repl();
        let dir = std::env::temp_dir().join(format!("kdap_cli_save_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&mut r, &format!("save {}", dir.display()));
        assert!(out.contains("saved warehouse"), "{out}");
        assert!(dir.join("warehouse.spec").exists());
        let loaded = kdap_warehouse::load_warehouse(&dir).unwrap();
        assert_eq!(loaded.fact_rows(), r.session().warehouse().fact_rows());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_describes_warehouse() {
        let mut r = repl();
        let out = run(&mut r, "schema");
        assert!(out.contains("fact table: TRANSITEM"), "{out}");
        assert!(out.contains("dimensions:"), "{out}");
    }

    #[test]
    fn stats_reports_cache() {
        let mut r = repl();
        run(&mut r, "q columbus");
        run(&mut r, "pick 1");
        let out = run(&mut r, "stats");
        assert!(out.contains("subspace cache"), "{out}");
        assert!(out.contains("semi-join cache"), "{out}");
        assert!(out.contains("row-mapper cache"), "{out}");
        assert!(out.contains("text index:"), "{out}");
        assert!(out.contains("facts:"), "{out}");
    }

    fn profiling_repl() -> Repl {
        let wh = build_ebiz(EbizScale::small(), 7).unwrap();
        Repl::new(
            Kdap::builder(wh)
                .cache_capacity(8)
                .observability(true)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn profile_command_prints_stage_tree() {
        let mut r = profiling_repl();
        let out = run(&mut r, "profile columbus lcd");
        assert!(out.contains("profile: columbus lcd"), "{out}");
        assert!(out.contains("differentiate"), "{out}");
        assert!(out.contains("explore"), "{out}");
        assert!(out.contains("materialize"), "{out}");
        assert!(out.contains('%'), "{out}");
        // The profiled exploration becomes the current state.
        let out = run(&mut r, "show");
        assert!(out.contains("subspace:"), "{out}");
    }

    #[test]
    fn profile_command_requires_observability() {
        let mut r = repl();
        let out = run(&mut r, "profile columbus");
        assert!(out.contains("observability is off"), "{out}");
    }

    #[test]
    fn explain_appends_timings_when_profiling() {
        let mut r = profiling_repl();
        run(&mut r, "q seattle");
        run(&mut r, "pick 1");
        let out = run(&mut r, "explain");
        assert!(out.contains("fused scans"), "{out}");
        assert!(out.contains("profile: explain"), "{out}");
        assert!(out.contains("plan.compile"), "{out}");
        // Without --profile, explain output carries no timing tree.
        let mut plain = repl();
        run(&mut plain, "q seattle");
        run(&mut plain, "pick 1");
        let out = run(&mut plain, "explain");
        assert!(!out.contains("profile: explain"), "{out}");
    }

    #[test]
    fn explain_reports_cache_hits_on_repeat() {
        let mut r = repl();
        run(&mut r, "q seattle");
        run(&mut r, "pick 1");
        let first = run(&mut r, "explain");
        assert!(first.contains("est "), "{first}");
        // The session planner already evaluated these steps during
        // `pick`, so the explain replay is served from the cache.
        assert!(first.contains("[cache hit]"), "{first}");
    }

    #[test]
    fn drill_refines_and_rollup_widens() {
        let mut r = repl();
        // "seattle" has a store at every scale (round-robin placement).
        run(&mut r, "q seattle");
        let before = run(&mut r, "pick 1");
        let size_before = extract_size(&before);
        // Drill into the first *categorical* facet (numeric ranges refuse
        // drilling); facet numbering is stable per exploration.
        let mut drilled = String::new();
        for f in 1..=12 {
            drilled = run(&mut r, &format!("drill {f} 1"));
            if drilled.contains("drilled into") {
                break;
            }
        }
        assert!(drilled.contains("drilled into"), "{drilled}");
        let size_after = extract_size(&drilled);
        assert!(size_after <= size_before, "{size_after} <= {size_before}");
        let rolled = run(&mut r, "up 1");
        assert!(rolled.contains("subspace:"), "{rolled}");
    }

    fn extract_size(out: &str) -> usize {
        out.lines()
            .rev()
            .find(|l| l.starts_with("subspace:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
            .expect("subspace line present")
    }
}
