//! REPL command grammar, parsed independently of execution so it can be
//! tested without a warehouse.

/// One console command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `q <keywords>` — differentiate phase.
    Query(String),
    /// `pick <n>` — choose interpretation #n (1-based) and explore.
    Pick(usize),
    /// `drill <facet#> <entry#>`.
    Drill(usize, usize),
    /// `up <constraint#>` — roll up.
    RollUp(usize),
    /// `drop <constraint#>` — remove a constraint.
    Drop(usize),
    /// `mode surprise|bellwether`.
    Mode(ModeArg),
    /// `order dynamic|consistent|hybrid <pinned>`.
    Order(OrderArg),
    /// `profile <keywords>` — run the query end to end and print the
    /// per-stage timing tree (needs `--profile`).
    Profile(String),
    /// `explain` — per-constraint selectivity plan of the current net.
    Explain,
    /// `show` — re-print the current facets.
    Show,
    /// `stats` — session statistics (cache, index sizes).
    Stats,
    /// `schema` — describe the warehouse schema.
    Schema,
    /// `save <dir>` — persist the warehouse as spec + CSVs.
    Save(String),
    Help,
    Quit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeArg {
    Surprise,
    Bellwether,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderArg {
    Dynamic,
    Consistent,
    Hybrid(usize),
}

impl Command {
    /// Parses one console line. `Err` carries a usage message.
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim();
        if line.is_empty() {
            return Err(String::new());
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let rest = rest.trim();
        let int = |s: &str, usage: &str| -> Result<usize, String> {
            s.parse::<usize>().map_err(|_| usage.to_string())
        };
        match cmd {
            "q" | "query" => {
                if rest.is_empty() {
                    Err("usage: q <keywords>".into())
                } else {
                    Ok(Command::Query(rest.to_string()))
                }
            }
            "pick" => Ok(Command::Pick(int(rest, "usage: pick <n>")?)),
            "drill" => {
                let mut parts = rest.split_whitespace();
                let usage = "usage: drill <facet#> <entry#>";
                let f = int(parts.next().unwrap_or(""), usage)?;
                let e = int(parts.next().unwrap_or(""), usage)?;
                Ok(Command::Drill(f, e))
            }
            "up" => Ok(Command::RollUp(int(rest, "usage: up <constraint#>")?)),
            "drop" => Ok(Command::Drop(int(rest, "usage: drop <constraint#>")?)),
            "mode" => match rest {
                "surprise" => Ok(Command::Mode(ModeArg::Surprise)),
                "bellwether" => Ok(Command::Mode(ModeArg::Bellwether)),
                _ => Err("usage: mode surprise|bellwether".into()),
            },
            "order" => {
                let mut parts = rest.split_whitespace();
                match parts.next() {
                    Some("dynamic") => Ok(Command::Order(OrderArg::Dynamic)),
                    Some("consistent") => Ok(Command::Order(OrderArg::Consistent)),
                    Some("hybrid") => {
                        let pinned =
                            int(parts.next().unwrap_or(""), "usage: order hybrid <pinned>")?;
                        Ok(Command::Order(OrderArg::Hybrid(pinned)))
                    }
                    _ => Err("usage: order dynamic|consistent|hybrid <pinned>".into()),
                }
            }
            "profile" => {
                if rest.is_empty() {
                    Err("usage: profile <keywords>".into())
                } else {
                    Ok(Command::Profile(rest.to_string()))
                }
            }
            "explain" => Ok(Command::Explain),
            "show" => Ok(Command::Show),
            "stats" => Ok(Command::Stats),
            "schema" => Ok(Command::Schema),
            "save" => {
                if rest.is_empty() {
                    Err("usage: save <directory>".into())
                } else {
                    Ok(Command::Save(rest.to_string()))
                }
            }
            "help" | "?" => Ok(Command::Help),
            "quit" | "exit" => Ok(Command::Quit),
            other => Err(format!("unknown command `{other}` — try `help`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            Command::parse("q Columbus LCD"),
            Ok(Command::Query("Columbus LCD".into()))
        );
        assert_eq!(Command::parse("pick 2"), Ok(Command::Pick(2)));
        assert_eq!(Command::parse("drill 3 1"), Ok(Command::Drill(3, 1)));
        assert_eq!(Command::parse("up 1"), Ok(Command::RollUp(1)));
        assert_eq!(Command::parse("drop 2"), Ok(Command::Drop(2)));
        assert_eq!(
            Command::parse("mode bellwether"),
            Ok(Command::Mode(ModeArg::Bellwether))
        );
        assert_eq!(
            Command::parse("order hybrid 2"),
            Ok(Command::Order(OrderArg::Hybrid(2)))
        );
        assert_eq!(
            Command::parse("order dynamic"),
            Ok(Command::Order(OrderArg::Dynamic))
        );
        assert_eq!(Command::parse("show"), Ok(Command::Show));
        assert_eq!(Command::parse("explain"), Ok(Command::Explain));
        assert_eq!(
            Command::parse("profile columbus lcd"),
            Ok(Command::Profile("columbus lcd".into()))
        );
        assert_eq!(Command::parse("stats"), Ok(Command::Stats));
        assert_eq!(Command::parse("schema"), Ok(Command::Schema));
        assert_eq!(
            Command::parse("save /tmp/wh"),
            Ok(Command::Save("/tmp/wh".into()))
        );
        assert_eq!(Command::parse("help"), Ok(Command::Help));
        assert_eq!(Command::parse("quit"), Ok(Command::Quit));
    }

    #[test]
    fn whitespace_and_aliases() {
        assert_eq!(
            Command::parse("  query   tv sales  "),
            Ok(Command::Query("tv sales".into()))
        );
        assert_eq!(Command::parse("exit"), Ok(Command::Quit));
        assert_eq!(Command::parse("?"), Ok(Command::Help));
    }

    #[test]
    fn usage_errors() {
        assert!(Command::parse("q").is_err());
        assert!(Command::parse("pick x").is_err());
        assert!(Command::parse("drill 1").is_err());
        assert!(Command::parse("mode sideways").is_err());
        assert!(Command::parse("order hybrid").is_err());
        assert!(Command::parse("save").is_err());
        assert!(Command::parse("profile").is_err());
        assert!(Command::parse("frobnicate").is_err());
        assert!(Command::parse("").is_err());
    }
}
