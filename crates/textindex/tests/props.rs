//! Property-based tests for tokenization, stemming, scoring and search.

use std::sync::Arc;

use proptest::prelude::*;

use kdap_textindex::scoring::{idf, score, TermMatch};
use kdap_textindex::{snippet, stem, tokenize, SearchOptions, TextIndex};
use kdap_warehouse::{ColRef, TableId};

proptest! {
    /// Tokens are lowercase alphanumeric, positions strictly increase,
    /// and every token occurs in the input (case-insensitively).
    #[test]
    fn tokenizer_invariants(text in "[ -~]{0,60}") {
        let toks = tokenize(&text);
        let lower = text.to_ascii_lowercase();
        let mut last: Option<u32> = None;
        for t in &toks {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.text.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            prop_assert!(lower.contains(&t.text), "token {} not in {}", t.text, lower);
            if let Some(p) = last {
                prop_assert!(t.position > p);
            }
            last = Some(t.position);
        }
    }

    /// The stemmer never panics, always yields ASCII output, and never
    /// grows a word by more than one character (the step-1b e-restores).
    #[test]
    fn stemmer_is_total_and_bounded(word in "[a-z]{0,15}") {
        let s = stem(&word);
        prop_assert!(s.is_ascii());
        prop_assert!(s.len() <= word.len() + 1, "{word} → {s}");
        if word.len() > 2 {
            prop_assert!(!s.is_empty());
        }
    }

    /// Plural forms stem to the same term as their singular for simple
    /// -s plurals that don't end in s/x/z (the classic IR property).
    #[test]
    fn simple_plurals_collapse(word in "[a-z]{3,10}[bdglmnprtw]") {
        let plural = format!("{word}s");
        prop_assert_eq!(stem(&plural), stem(&word));
    }

    /// Scores stay in [0, 1] for any consistent tf ≤ dl inputs.
    #[test]
    fn scores_bounded(
        n_docs in 2usize..10_000,
        df in 1usize..50,
        tf in 1u32..20,
        extra_len in 0u32..50,
        penalty in 0.1f64..1.0,
    ) {
        let i = idf(n_docs, df.min(n_docs));
        let dl = tf + extra_len;
        let m = TermMatch { tf, idf: i, penalty };
        let s = score(&[m], dl, &[i]);
        prop_assert!(s >= 0.0);
        prop_assert!(s <= 1.0 + 1e-9, "score {s}");
    }

    /// Searching for any token of any indexed document finds that
    /// document (completeness of the inverted index).
    #[test]
    fn search_is_complete(docs in proptest::collection::vec("[a-zA-Z]{3,8}( [a-zA-Z]{3,8}){0,3}", 1..12)) {
        let attr = ColRef::new(TableId(0), 0);
        let index = TextIndex::from_documents(
            docs.iter()
                .enumerate()
                .map(|(i, d)| (attr, i as u32, Arc::from(d.as_str()))),
        );
        let opts = SearchOptions::default();
        for (i, doc) in docs.iter().enumerate() {
            for word in doc.split_whitespace() {
                let hits = index.search_keyword(word, &opts);
                prop_assert!(
                    hits.iter().any(|h| h.doc.0 == i as u32),
                    "doc {i} not found for its own token {word}"
                );
            }
        }
    }

    /// Phrase hits are a subset of conjunctive keyword hits.
    #[test]
    fn phrase_hits_subset_of_keyword_hits(
        docs in proptest::collection::vec("[a-z]{3,6}( [a-z]{3,6}){1,4}", 1..10)
    ) {
        let attr = ColRef::new(TableId(0), 0);
        let index = TextIndex::from_documents(
            docs.iter()
                .enumerate()
                .map(|(i, d)| (attr, i as u32, Arc::from(d.as_str()))),
        );
        let opts = SearchOptions { prefix: false, ..SearchOptions::default() };
        // Use the first two words of the first doc as the phrase.
        let words: Vec<&str> = docs[0].split_whitespace().collect();
        let phrase_hits = index.search_phrase(&[words[0], words[1]], &opts);
        let h1: Vec<u32> = index.search_keyword(words[0], &opts).iter().map(|h| h.doc.0).collect();
        let h2: Vec<u32> = index.search_keyword(words[1], &opts).iter().map(|h| h.doc.0).collect();
        for ph in &phrase_hits {
            prop_assert!(h1.contains(&ph.doc.0));
            prop_assert!(h2.contains(&ph.doc.0));
        }
        // The source document itself always matches its own leading phrase.
        prop_assert!(phrase_hits.iter().any(|h| h.doc.0 == 0));
    }

    /// Snippets never panic, keep within the token budget (plus
    /// ellipses), and highlight at least one match when one exists.
    #[test]
    fn snippet_invariants(
        words in proptest::collection::vec("[a-zA-Z]{2,8}", 1..20),
        pick in any::<proptest::sample::Index>(),
        budget in 1usize..10,
    ) {
        let text = words.join(" ");
        let kw = pick.get(&words).clone();
        let s = snippet(&text, &[&kw], budget);
        let visible = s
            .split_whitespace()
            .filter(|w| *w != "…")
            .count();
        prop_assert!(visible <= budget, "{s}");
        prop_assert!(s.contains('['), "keyword from text must highlight: {s}");
        // Unmatched keyword still yields a window, never a panic.
        let none = snippet(&text, &["zzzzzzzzzz"], budget);
        prop_assert!(!none.contains('['));
    }
}
