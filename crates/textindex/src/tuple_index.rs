//! Tuple-level indexing — the *rejected* design alternative (§3).
//!
//! Prior keyword-search-over-databases systems (DBExplorer, DISCOVER,
//! BANKS) index at tuple granularity: each tuple is one virtual document.
//! The paper argues this is insufficient for analytical processing,
//! because a tuple-level hit cannot say *which attribute* matched — the
//! §3 example: `PRODUCT_A{Product=ABC, …}` and `PRODUCT_B{…,
//! Category=ABC}` are indistinguishable matches for keyword "ABC",
//! although they denote completely different subspaces.
//!
//! This module implements the alternative faithfully so the ablation
//! experiment (`exp_ablation_index`) can quantify the information loss
//! against the attribute-level [`crate::TextIndex`].

use std::collections::BTreeMap;
use std::sync::Arc;

use kdap_warehouse::{ColRef, TableId, Warehouse};

use crate::scoring::{idf, score, TermMatch};
use crate::stemmer::stem;
use crate::tokenizer::tokenize_terms;

/// One tuple-level virtual document.
#[derive(Debug, Clone)]
pub struct TupleDoc {
    /// The tuple's table.
    pub table: TableId,
    /// The tuple's row index.
    pub row: u32,
    /// Concatenated searchable text of the tuple.
    pub text: Arc<str>,
    /// Token count.
    pub len: u32,
    /// The searchable attributes whose value contributed each token run —
    /// kept only to *measure* the ambiguity the representation loses; a
    /// real tuple-level system would not expose this.
    pub attrs: Vec<ColRef>,
}

/// A tuple-granularity inverted index (no positions — prior systems
/// ranked by joined-network size and tuple relevance only).
#[derive(Debug, Default)]
pub struct TupleIndex {
    docs: Vec<TupleDoc>,
    terms: BTreeMap<String, u32>,
    /// term id → (doc id, term frequency).
    postings: Vec<Vec<(u32, u32)>>,
    /// term id → per-doc list of attrs containing the term.
    term_attrs: Vec<Vec<(u32, Vec<ColRef>)>>,
}

/// A tuple-level hit.
#[derive(Debug, Clone)]
pub struct TupleHit {
    /// The matched tuple document.
    pub doc: u32,
    /// TF-IDF similarity in `(0, 1]`.
    pub score: f64,
}

impl TupleIndex {
    /// Indexes every row of every table that has searchable columns.
    pub fn build(wh: &Warehouse) -> Self {
        let mut index = TupleIndex::default();
        for (ti, table) in wh.tables().iter().enumerate() {
            let searchable: Vec<(ColRef, &kdap_warehouse::Column)> = table
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_searchable())
                .map(|(ci, c)| (ColRef::new(TableId(ti as u32), ci as u32), c))
                .collect();
            if searchable.is_empty() {
                continue;
            }
            for row in 0..table.nrows() {
                index.add_tuple(TableId(ti as u32), row as u32, &searchable);
            }
        }
        index
    }

    fn add_tuple(
        &mut self,
        table: TableId,
        row: u32,
        searchable: &[(ColRef, &kdap_warehouse::Column)],
    ) {
        let doc_id = self.docs.len() as u32;
        let mut text = String::new();
        let mut attrs = Vec::new();
        let mut token_count = 0u32;
        let mut per_term: BTreeMap<String, (u32, Vec<ColRef>)> = BTreeMap::new();
        for (attr, col) in searchable {
            let Some(code) = col.get_code(row as usize) else {
                continue;
            };
            let value = col
                .dict()
                .and_then(|d| d.resolve(code).cloned())
                .unwrap_or_else(|| Arc::from(""));
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&value);
            attrs.push(*attr);
            for tok in tokenize_terms(&value) {
                token_count += 1;
                let stemmed = stem(&tok);
                let entry = per_term.entry(stemmed).or_insert((0, Vec::new()));
                entry.0 += 1;
                if !entry.1.contains(attr) {
                    entry.1.push(*attr);
                }
            }
        }
        self.docs.push(TupleDoc {
            table,
            row,
            text: Arc::from(text),
            len: token_count,
            attrs,
        });
        for (term, (tf, attrs)) in per_term {
            let next_id = self.terms.len() as u32;
            let term_id = *self.terms.entry(term).or_insert(next_id);
            if term_id as usize == self.postings.len() {
                self.postings.push(Vec::new());
                self.term_attrs.push(Vec::new());
            }
            self.postings[term_id as usize].push((doc_id, tf));
            self.term_attrs[term_id as usize].push((doc_id, attrs));
        }
    }

    /// Number of tuple documents.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// Document metadata.
    pub fn doc(&self, id: u32) -> &TupleDoc {
        &self.docs[id as usize]
    }

    /// Keyword search over tuples (stemmed, TF-IDF scored like the
    /// attribute-level engine, minus positions).
    pub fn search_keyword(&self, keyword: &str, max_hits: usize) -> Vec<TupleHit> {
        let tokens = tokenize_terms(keyword);
        let Some(token) = tokens.first() else {
            return Vec::new();
        };
        let Some(&tid) = self.terms.get(&stem(token)) else {
            return Vec::new();
        };
        let term_idf = idf(self.n_docs(), self.postings[tid as usize].len());
        let mut hits: Vec<TupleHit> = self.postings[tid as usize]
            .iter()
            .map(|&(doc, tf)| TupleHit {
                doc,
                score: score(
                    &[TermMatch {
                        tf,
                        idf: term_idf,
                        penalty: 1.0,
                    }],
                    self.docs[doc as usize].len,
                    &[term_idf],
                ),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(max_hits);
        hits
    }

    /// For ablation measurement only: the attribute domains a keyword
    /// actually matched within a tuple — the information the tuple-level
    /// representation discards.
    pub fn matched_attrs(&self, keyword: &str, doc: u32) -> Vec<ColRef> {
        let tokens = tokenize_terms(keyword);
        let Some(token) = tokens.first() else {
            return Vec::new();
        };
        let Some(&tid) = self.terms.get(&stem(token)) else {
            return Vec::new();
        };
        self.term_attrs[tid as usize]
            .iter()
            .find(|(d, _)| *d == doc)
            .map(|(_, attrs)| attrs.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    /// The §3 example: ABC as a product name vs ABC as a category.
    fn abc_warehouse() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "PRODUCT",
            &[
                ("PKey", ValueType::Int, false),
                ("Product", ValueType::Str, true),
                ("Category", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.row(
            "PRODUCT",
            vec![1i64.into(), "ABC EFG".into(), "TGS SDF".into()],
        )
        .unwrap();
        b.row("PRODUCT", vec![2i64.into(), "ERT EFG".into(), "ABC".into()])
            .unwrap();
        b.table(
            "F",
            &[
                ("Id", ValueType::Int, false),
                ("PKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.row("F", vec![1i64.into(), 1i64.into()]).unwrap();
        b.row("F", vec![2i64.into(), 2i64.into()]).unwrap();
        b.edge("F.PKey", "PRODUCT.PKey", None, Some("Product"))
            .unwrap();
        b.dimension("Product", &["PRODUCT"], vec![], vec![])
            .unwrap();
        b.fact("F").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn tuple_level_conflates_attribute_domains() {
        let wh = abc_warehouse();
        let tindex = TupleIndex::build(&wh);
        // Both product tuples match "ABC" at tuple level...
        let hits = tindex.search_keyword("abc", 10);
        assert_eq!(hits.len(), 2);
        // ...but in different attribute domains — information the
        // attribute-level index keeps as two distinct hit groups.
        let aindex = crate::TextIndex::build(&wh);
        let ahits = aindex.search_keyword("abc", &crate::SearchOptions::default());
        let domains: std::collections::HashSet<_> =
            ahits.iter().map(|h| aindex.doc(h.doc).attr).collect();
        assert_eq!(
            domains.len(),
            2,
            "attribute-level distinguishes the domains"
        );
        // The diagnostic channel confirms the conflation.
        let a0 = tindex.matched_attrs("abc", hits[0].doc);
        let a1 = tindex.matched_attrs("abc", hits[1].doc);
        assert_ne!(a0, a1, "same-looking tuple hits matched different attrs");
    }

    #[test]
    fn tuple_docs_concatenate_searchable_values() {
        let wh = abc_warehouse();
        let tindex = TupleIndex::build(&wh);
        assert_eq!(tindex.n_docs(), 2, "only PRODUCT rows are indexed");
        assert_eq!(tindex.doc(0).text.as_ref(), "ABC EFG TGS SDF");
        assert_eq!(tindex.doc(0).len, 4);
    }

    #[test]
    fn unknown_keyword_empty() {
        let wh = abc_warehouse();
        let tindex = TupleIndex::build(&wh);
        assert!(tindex.search_keyword("zzz", 10).is_empty());
        assert!(tindex.search_keyword("", 10).is_empty());
        assert!(tindex.matched_attrs("zzz", 0).is_empty());
    }
}
