//! The inverted index over attribute-instance virtual documents.

use std::collections::BTreeMap;
use std::sync::Arc;

use kdap_obs::Obs;
use kdap_warehouse::{ColRef, Warehouse};

use crate::doc::{DocId, DocMeta};
use crate::stemmer::stem;
use crate::tokenizer::tokenize;

/// One posting: a document and the positions of the term inside it.
#[derive(Debug, Clone)]
pub struct Posting {
    /// Document id.
    pub doc: u32,
    /// Token positions of the term inside the document (sorted).
    pub positions: Vec<u32>,
}

/// Full-text index over every searchable attribute domain of a warehouse.
///
/// Terms are Porter-stemmed. A raw (unstemmed) vocabulary is kept alongside
/// to support prefix/partial matching (§3: "partial matches and stemming").
#[derive(Debug, Default)]
pub struct TextIndex {
    pub(crate) docs: Vec<DocMeta>,
    /// Stemmed term → term id.
    pub(crate) terms: BTreeMap<String, u32>,
    /// Raw token → stemmed term ids it maps to (almost always one).
    pub(crate) raw_vocab: BTreeMap<String, Vec<u32>>,
    pub(crate) postings: Vec<Vec<Posting>>,
    pub(crate) obs: Obs,
}

/// Summary statistics of a built [`TextIndex`] (the `kdap stats`
/// surface).
#[derive(Debug, Clone, PartialEq)]
pub struct TextIndexStats {
    /// Virtual documents (attribute instances) indexed.
    pub docs: usize,
    /// Distinct stemmed terms.
    pub terms: usize,
    /// Total postings across all term lists.
    pub postings: usize,
    /// Mean token length of a virtual document.
    pub avg_doc_len: f64,
    /// Rough in-memory footprint in bytes.
    pub approx_bytes: usize,
}

impl TextIndex {
    /// Indexes every distinct value of every searchable column of `wh`.
    pub fn build(wh: &Warehouse) -> Self {
        let mut index = TextIndex::default();
        for (attr, column) in wh.searchable_columns() {
            // Infallible: `searchable_columns` yields only dictionary-
            // encoded string columns.
            #[allow(clippy::expect_used)]
            let dict = column.dict().expect("searchable columns are strings");
            for (code, text) in dict.iter() {
                index.add_document(attr, code, text.clone());
            }
        }
        index
    }

    /// Builds an index from explicit documents (used in tests).
    pub fn from_documents(docs: impl IntoIterator<Item = (ColRef, u32, Arc<str>)>) -> Self {
        let mut index = TextIndex::default();
        for (attr, code, text) in docs {
            index.add_document(attr, code, text);
        }
        index
    }

    fn add_document(&mut self, attr: ColRef, code: u32, text: Arc<str>) {
        let doc_id = self.docs.len() as u32;
        let tokens = tokenize(&text);
        self.docs.push(DocMeta {
            attr,
            code,
            text,
            len: tokens.len() as u32,
        });
        for tok in tokens {
            let stemmed = stem(&tok.text);
            let next_id = self.terms.len() as u32;
            let term_id = *self.terms.entry(stemmed).or_insert(next_id);
            if term_id as usize == self.postings.len() {
                self.postings.push(Vec::new());
            }
            let plist = &mut self.postings[term_id as usize];
            match plist.last_mut() {
                Some(p) if p.doc == doc_id => p.positions.push(tok.position),
                _ => plist.push(Posting {
                    doc: doc_id,
                    positions: vec![tok.position],
                }),
            }
            let raw_ids = self.raw_vocab.entry(tok.text).or_default();
            if !raw_ids.contains(&term_id) {
                raw_ids.push(term_id);
            }
        }
    }

    /// Attaches an observability handle; search timings and counters flow
    /// into it from then on.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Summary statistics: documents, terms, postings, and average
    /// document length.
    pub fn stats(&self) -> TextIndexStats {
        let postings = self.postings.iter().map(Vec::len).sum();
        let total_len: u64 = self.docs.iter().map(|d| d.len as u64).sum();
        TextIndexStats {
            docs: self.docs.len(),
            terms: self.terms.len(),
            postings,
            avg_doc_len: if self.docs.is_empty() {
                0.0
            } else {
                total_len as f64 / self.docs.len() as f64
            },
            approx_bytes: self.approx_bytes(),
        }
    }

    /// Number of virtual documents.
    pub fn n_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct (stemmed) terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Document metadata.
    pub fn doc(&self, id: DocId) -> &DocMeta {
        &self.docs[id.0 as usize]
    }

    /// Looks up a stemmed term id.
    pub(crate) fn term_id(&self, stemmed: &str) -> Option<u32> {
        self.terms.get(stemmed).copied()
    }

    /// Document frequency of a term.
    pub(crate) fn df(&self, term: u32) -> usize {
        self.postings[term as usize].len()
    }

    /// Raw-vocabulary terms starting with `prefix`, up to `limit`,
    /// excluding the exact raw token itself.
    pub(crate) fn prefix_expansions(&self, prefix: &str, limit: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for (raw, ids) in self.raw_vocab.range(prefix.to_string()..) {
            if !raw.starts_with(prefix) {
                break;
            }
            if raw == prefix {
                continue;
            }
            for &id in ids {
                if !out.contains(&id) {
                    out.push(id);
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// A rough byte-size estimate (paper §6.1 reports ~5 MB offline index).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for d in &self.docs {
            total += std::mem::size_of::<DocMeta>() + d.text.len();
        }
        for t in self.terms.keys() {
            total += t.len() + 12;
        }
        for (t, ids) in &self.raw_vocab {
            total += t.len() + 12 + ids.len() * 4;
        }
        for plist in &self.postings {
            total += 24;
            for p in plist {
                total += 8 + p.positions.len() * 4;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_warehouse::TableId;

    fn attr(t: u32, c: u32) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    fn sample() -> TextIndex {
        TextIndex::from_documents(vec![
            (attr(0, 1), 0, Arc::from("Mountain Bikes")),
            (attr(0, 1), 1, Arc::from("Road Bikes")),
            (attr(0, 2), 0, Arc::from("Mountain-200 Black")),
            (attr(1, 0), 0, Arc::from("California")),
            (attr(1, 1), 0, Arc::from("345 California Street")),
        ])
    }

    #[test]
    fn builds_documents_and_terms() {
        let idx = sample();
        assert_eq!(idx.n_docs(), 5);
        // mountain, bike, road, 200, black, california, 345, street
        assert_eq!(idx.n_terms(), 8);
        assert_eq!(idx.doc(DocId(0)).len, 2);
        assert_eq!(idx.doc(DocId(4)).len, 3);
    }

    #[test]
    fn stemming_merges_singular_plural() {
        let idx = sample();
        // "Bikes" is indexed under the stem "bike".
        let tid = idx.term_id("bike").unwrap();
        assert_eq!(idx.df(tid), 2);
        assert!(idx.term_id("bikes").is_none());
    }

    #[test]
    fn positions_recorded() {
        let idx = sample();
        let tid = idx.term_id("bike").unwrap();
        let plist = &idx.postings[tid as usize];
        assert_eq!(plist[0].doc, 0);
        assert_eq!(plist[0].positions, vec![1]);
    }

    #[test]
    fn repeated_term_in_one_doc_collapses_to_one_posting() {
        let idx = TextIndex::from_documents(vec![(attr(0, 0), 0, Arc::from("bike bike bike"))]);
        let tid = idx.term_id("bike").unwrap();
        assert_eq!(idx.postings[tid as usize].len(), 1);
        assert_eq!(idx.postings[tid as usize][0].positions.len(), 3);
    }

    #[test]
    fn prefix_expansion_respects_limit_and_excludes_exact() {
        let idx = sample();
        let exp = idx.prefix_expansions("cal", 10);
        // "california" from both docs → one stemmed term.
        assert_eq!(exp.len(), 1);
        let exp = idx.prefix_expansions("california", 10);
        assert!(exp.is_empty(), "exact token excluded");
        let exp = idx.prefix_expansions("zzz", 10);
        assert!(exp.is_empty());
    }

    #[test]
    fn approx_bytes_positive() {
        assert!(sample().approx_bytes() > 0);
    }

    #[test]
    fn build_from_warehouse() {
        use kdap_warehouse::{ValueType, WarehouseBuilder};
        let mut b = WarehouseBuilder::new();
        b.table(
            "F",
            &[
                ("Id", ValueType::Int, false),
                ("PKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "P",
            &[
                ("PKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
                ("Internal", ValueType::Str, false),
            ],
        )
        .unwrap();
        b.row(
            "P",
            vec![1i64.into(), "LCD Projector".into(), "hidden".into()],
        )
        .unwrap();
        b.row("F", vec![1i64.into(), 1i64.into()]).unwrap();
        b.edge("F.PKey", "P.PKey", None, Some("Product")).unwrap();
        b.dimension("Product", &["P"], vec![], vec![]).unwrap();
        b.fact("F").unwrap();
        let wh = b.finish().unwrap();
        let idx = TextIndex::build(&wh);
        // Only the searchable column is indexed.
        assert_eq!(idx.n_docs(), 1);
        assert!(idx.term_id("lcd").is_some());
        assert!(idx.term_id("hidden").is_none());
    }
}
