//! Snippet rendering for large textual attributes.
//!
//! "Content summaries can be rendered as snippets when the textual
//! attribute is big (e.g. product description)" — paper §6.2. Given an
//! attribute value and the query keywords, picks the token window with the
//! densest keyword coverage, truncates around it, and highlights matches.

use crate::stemmer::stem;
use crate::tokenizer::tokenize_terms;

/// Renders a snippet of `text` around the best window for `keywords`.
///
/// * Matched tokens (by stem) are wrapped in `[` `]`.
/// * At most `max_tokens` tokens are kept, centered on the window with
///   the most distinct keyword matches; elisions are marked with `…`.
pub fn snippet(text: &str, keywords: &[&str], max_tokens: usize) -> String {
    let max_tokens = max_tokens.max(1);
    // Work on whitespace-separated words so the original punctuation and
    // casing survive in the output.
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.is_empty() {
        return String::new();
    }
    let stems: Vec<String> = keywords
        .iter()
        .flat_map(|k| tokenize_terms(k))
        .map(|t| stem(&t))
        .collect();
    let word_matches: Vec<bool> = words
        .iter()
        .map(|w| tokenize_terms(w).iter().any(|t| stems.contains(&stem(t))))
        .collect();

    // Slide a window of max_tokens words; maximize matches, earliest wins.
    let window = max_tokens.min(words.len());
    let mut best_start = 0usize;
    let mut best_count = usize::MAX; // sentinel replaced on first pass
    for start in 0..=(words.len() - window) {
        let count = word_matches[start..start + window]
            .iter()
            .filter(|&&m| m)
            .count();
        if best_count == usize::MAX || count > best_count {
            best_count = count;
            best_start = start;
        }
    }

    let mut out = String::new();
    if best_start > 0 {
        out.push_str("… ");
    }
    for (i, word) in words[best_start..best_start + window].iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        if word_matches[best_start + i] {
            out.push('[');
            out.push_str(word);
            out.push(']');
        } else {
            out.push_str(word);
        }
    }
    if best_start + window < words.len() {
        out.push_str(" …");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_text_passes_through_highlighted() {
        let s = snippet("Mountain Bikes", &["mountain"], 10);
        assert_eq!(s, "[Mountain] Bikes");
    }

    #[test]
    fn stemmed_matches_highlight() {
        // Keyword "bike" highlights "Bikes".
        let s = snippet("Touring Bikes", &["bike"], 10);
        assert_eq!(s, "Touring [Bikes]");
    }

    #[test]
    fn long_text_is_windowed_around_matches() {
        let text = "This premium product is designed for serious riders who demand \
                    performance with a lightweight mountain frame that absorbs bumps";
        let s = snippet(text, &["mountain", "frame"], 5);
        assert!(s.contains("[mountain]"));
        assert!(s.contains("[frame]"));
        assert!(s.starts_with("… "), "left elision: {s}");
        assert!(s.split_whitespace().count() <= 7, "window + ellipses: {s}");
    }

    #[test]
    fn no_matches_yields_prefix_window() {
        let s = snippet("alpha beta gamma delta epsilon", &["zzz"], 3);
        assert_eq!(s, "alpha beta gamma …");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(snippet("", &["x"], 5), "");
        assert_eq!(snippet("hello world", &[], 5), "hello world");
    }

    #[test]
    fn punctuation_is_preserved() {
        let s = snippet("Flat Panel(LCD) display", &["lcd"], 10);
        assert_eq!(s, "Flat [Panel(LCD)] display");
    }
}
