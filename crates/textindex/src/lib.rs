//! # kdap-textindex
//!
//! Full-text engine over *attribute-instance* virtual documents — the
//! Lucene substitute for the KDAP reproduction (SIGMOD 2007, §3).
//!
//! Every distinct value of every searchable column becomes a virtual
//! document identified by `(TabName, AttrID, value)`. Search supports
//! Porter stemming, prefix/partial matching, positional phrase queries,
//! and Lucene-classic TF-IDF scoring normalized to `(0, 1]`.
//!
//! ```
//! use kdap_textindex::{TextIndex, SearchOptions};
//! use kdap_warehouse::{ColRef, TableId};
//! use std::sync::Arc;
//!
//! let attr = ColRef::new(TableId(0), 1);
//! let idx = TextIndex::from_documents(vec![
//!     (attr, 0, Arc::from("Mountain Bikes")),
//!     (attr, 1, Arc::from("Touring Bikes")),
//! ]);
//! let hits = idx.search_keyword("mountain", &SearchOptions::default());
//! assert_eq!(idx.doc(hits[0].doc).text.as_ref(), "Mountain Bikes");
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod doc;
pub mod index;
pub mod scoring;
pub mod search;
pub mod snippet;
pub mod stemmer;
pub mod tokenizer;
pub mod tuple_index;

pub use doc::{DocId, DocMeta};
pub use index::{Posting, TextIndex, TextIndexStats};
pub use search::{SearchHit, SearchOptions};
pub use snippet::snippet;
pub use stemmer::stem;
pub use tokenizer::{tokenize, tokenize_terms, Token};
pub use tuple_index::{TupleDoc, TupleHit, TupleIndex};
