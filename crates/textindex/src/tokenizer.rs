//! Tokenization of attribute-instance text.
//!
//! Tokens are maximal runs of ASCII alphanumeric characters, lowercased.
//! This keeps alphanumeric identifiers such as `Sport100` or `fernando35`
//! intact while splitting product codes like `Mountain-200` into
//! `mountain`, `200` — matching how Lucene's StandardAnalyzer behaves on
//! the AdventureWorks vocabulary used in the paper's experiments.

/// One token with its position (token offset, used for phrase queries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased token text.
    pub text: String,
    /// Token offset within the document (for phrase adjacency).
    pub position: u32,
}

/// Splits `text` into lowercase alphanumeric tokens with positions.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut pos = 0u32;
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(Token {
                text: std::mem::take(&mut current),
                position: pos,
            });
            pos += 1;
        }
    }
    if !current.is_empty() {
        tokens.push(Token {
            text: current,
            position: pos,
        });
    }
    tokens
}

/// Convenience: tokenized strings without positions.
pub fn tokenize_terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let toks = tokenize_terms("Flat Panel(LCD)");
        assert_eq!(toks, vec!["flat", "panel", "lcd"]);
    }

    #[test]
    fn keeps_alphanumeric_identifiers() {
        assert_eq!(tokenize_terms("Sport100"), vec!["sport100"]);
        assert_eq!(
            tokenize_terms("fernando35@adventure-works.com"),
            vec!["fernando35", "adventure", "works", "com"]
        );
    }

    #[test]
    fn splits_hyphenated_model_names() {
        assert_eq!(tokenize_terms("Mountain-200"), vec!["mountain", "200"]);
    }

    #[test]
    fn positions_are_sequential() {
        let toks = tokenize("San Jose Metal Plate");
        let positions: Vec<u32> = toks.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ###").is_empty());
    }

    #[test]
    fn lowercases_everything() {
        assert_eq!(
            tokenize_terms("CALIFORNIA Street"),
            vec!["california", "street"]
        );
    }
}
