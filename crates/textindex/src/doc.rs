//! Virtual documents: one per distinct attribute instance.
//!
//! The paper (§3) indexes a conceptual relation `(TabName, AttrID,
//! Document)` where each *distinct attribute value* is a virtual document —
//! explicitly not tuple-level indexing, so that `PRODUCT_A{Product=ABC}`
//! and `PRODUCT_B{Category=ABC}` stay distinguishable interpretations.

use std::sync::Arc;

use kdap_warehouse::ColRef;

/// Identifier of a virtual document within a [`crate::TextIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Metadata of one virtual document (attribute instance).
#[derive(Debug, Clone)]
pub struct DocMeta {
    /// The attribute domain this instance belongs to (`TabName`, `AttrID`).
    pub attr: ColRef,
    /// Dictionary code of the value within its column.
    pub code: u32,
    /// The raw attribute value text.
    pub text: Arc<str>,
    /// Token count (document length for length normalization).
    pub len: u32,
}
