//! Document–query similarity (Lucene "classic" TF-IDF, normalized).
//!
//! The paper computes `Sim(h.val, q)` with "the state-of-the-art
//! document-query similarity function in IR, which is implemented in …
//! stand-alone text search engines (e.g. Lucene)" (§4.4). We implement
//! Lucene's classic similarity — `coord · Σ_t √tf(t,d) · idf(t)² ·
//! lengthNorm(d)` — and additionally normalize by the score of a *perfect*
//! document (a document that is exactly the query), so that scores live in
//! `(0, 1]`. Exact matches of the whole query score 1; partial matches,
//! longer documents, and common terms score lower. This keeps hit scores
//! comparable across keywords, which the star-net ranking formula (§4.4)
//! aggregates.

/// Inverse document frequency: `1 + ln(N / (df + 1))`.
pub fn idf(n_docs: usize, df: usize) -> f64 {
    1.0 + ((n_docs as f64) / (df as f64 + 1.0)).ln()
}

/// One matched query term inside a document.
#[derive(Debug, Clone, Copy)]
pub struct TermMatch {
    /// Term frequency inside the document.
    pub tf: u32,
    /// The term's idf.
    pub idf: f64,
    /// Multiplicative penalty for inexact (prefix) matches, 1.0 for exact.
    pub penalty: f64,
}

/// Scores a document against a query.
///
/// * `matches` — the query terms found in the document.
/// * `doc_len` — document length in tokens.
/// * `query_idfs` — idf of every query term (matched or not), used for the
///   coord factor and the perfect-document normalization.
pub fn score(matches: &[TermMatch], doc_len: u32, query_idfs: &[f64]) -> f64 {
    if matches.is_empty() || doc_len == 0 || query_idfs.is_empty() {
        return 0.0;
    }
    let coord = matches.len() as f64 / query_idfs.len() as f64;
    let norm = 1.0 / (doc_len as f64).sqrt();
    let raw: f64 = matches
        .iter()
        .map(|m| (m.tf as f64).sqrt() * m.idf * m.idf * m.penalty)
        .sum::<f64>()
        * norm
        * coord;
    let perfect: f64 =
        query_idfs.iter().map(|i| i * i).sum::<f64>() / (query_idfs.len() as f64).sqrt();
    if perfect <= 0.0 {
        0.0
    } else {
        raw / perfect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(tf: u32, idf: f64) -> TermMatch {
        TermMatch {
            tf,
            idf,
            penalty: 1.0,
        }
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        assert!(idf(1000, 1) > idf(1000, 10));
        assert!(idf(1000, 10) > idf(1000, 999));
    }

    #[test]
    fn perfect_single_term_doc_scores_one() {
        let i = idf(100, 3);
        let s = score(&[m(1, i)], 1, &[i]);
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn perfect_two_term_doc_scores_one() {
        let i1 = idf(100, 3);
        let i2 = idf(100, 7);
        let s = score(&[m(1, i1), m(1, i2)], 2, &[i1, i2]);
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn longer_documents_score_lower() {
        let i = idf(100, 3);
        let short = score(&[m(1, i)], 1, &[i]);
        let long = score(&[m(1, i)], 5, &[i]);
        assert!(short > long);
    }

    #[test]
    fn partial_match_scores_lower_than_full() {
        let i1 = idf(100, 3);
        let i2 = idf(100, 3);
        let full = score(&[m(1, i1), m(1, i2)], 2, &[i1, i2]);
        let partial = score(&[m(1, i1)], 2, &[i1, i2]);
        assert!(full > partial);
    }

    #[test]
    fn scores_never_exceed_one() {
        // Repeated terms cannot push the score above 1: √tf ≤ √dl.
        let i = idf(100, 1);
        for (tf, dl) in [(1u32, 1u32), (3, 3), (5, 9), (9, 9)] {
            let s = score(&[m(tf, i)], dl, &[i]);
            assert!(s <= 1.0 + 1e-9, "tf={tf} dl={dl} s={s}");
        }
    }

    #[test]
    fn prefix_penalty_reduces_score() {
        let i = idf(100, 3);
        let exact = score(&[m(1, i)], 1, &[i]);
        let pfx = score(
            &[TermMatch {
                tf: 1,
                idf: i,
                penalty: 0.8,
            }],
            1,
            &[i],
        );
        assert!((pfx / exact - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let i = idf(10, 1);
        assert_eq!(score(&[], 3, &[i]), 0.0);
        assert_eq!(score(&[m(1, i)], 0, &[i]), 0.0);
        assert_eq!(score(&[m(1, i)], 3, &[]), 0.0);
    }
}
