//! Keyword and phrase search over the [`TextIndex`].

use kdap_obs::LeafData;

use crate::doc::DocId;
use crate::index::TextIndex;
use crate::scoring::{idf, score, TermMatch};
use crate::stemmer::stem;
use crate::tokenizer::tokenize_terms;

/// Search tuning knobs.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Enable prefix/partial matching of raw tokens.
    pub prefix: bool,
    /// Score multiplier applied to prefix (non-exact) matches.
    pub prefix_penalty: f64,
    /// Maximum number of prefix-expanded terms per keyword.
    pub max_expansions: usize,
    /// Prefixes shorter than this are not expanded (avoids exploding
    /// one- or two-letter keywords).
    pub min_prefix_len: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            prefix: true,
            prefix_penalty: 0.8,
            max_expansions: 64,
            min_prefix_len: 3,
        }
    }
}

/// One search hit: a virtual document (attribute instance) and its
/// similarity score in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matched virtual document (attribute instance).
    pub doc: DocId,
    /// Normalized similarity in `(0, 1]`.
    pub score: f64,
}

impl TextIndex {
    /// Searches for one keyword.
    ///
    /// A multi-token keyword (e.g. a pre-quoted `"San Jose"`) is treated as
    /// a phrase. Matching is stemmed; prefix expansion applies per
    /// [`SearchOptions`]. Hits are sorted by descending score (ties by
    /// doc id for determinism).
    pub fn search_keyword(&self, keyword: &str, opts: &SearchOptions) -> Vec<SearchHit> {
        let t = self.obs.timer();
        let tokens = tokenize_terms(keyword);
        let hits = match tokens.len() {
            0 => Vec::new(),
            1 => self.search_single(&tokens[0], opts),
            _ => self.search_phrase_terms(&tokens),
        };
        if self.obs.is_enabled() {
            let ns = t.stop();
            self.obs.record_ns("textindex.search_ns", ns);
            self.obs.inc("textindex.searches", 1);
            self.obs.leaf(
                "textindex.search",
                LeafData {
                    wall_ns: ns,
                    rows_out: Some(hits.len() as u64),
                    notes: vec![("keyword".into(), keyword.to_string())],
                    ..LeafData::default()
                },
            );
        }
        hits
    }

    /// Searches for a phrase given as whitespace-separated keywords
    /// (§4.3 — used to re-score merged hit groups).
    pub fn search_phrase(&self, keywords: &[&str], _opts: &SearchOptions) -> Vec<SearchHit> {
        let t = self.obs.timer();
        let tokens: Vec<String> = keywords.iter().flat_map(|k| tokenize_terms(k)).collect();
        let hits = if tokens.is_empty() {
            Vec::new()
        } else if tokens.len() == 1 {
            self.search_single(&tokens[0], &SearchOptions::default())
        } else {
            self.search_phrase_terms(&tokens)
        };
        if self.obs.is_enabled() {
            self.obs.record_ns("textindex.search_ns", t.stop());
            self.obs.inc("textindex.searches", 1);
        }
        hits
    }

    fn search_single(&self, token: &str, opts: &SearchOptions) -> Vec<SearchHit> {
        let n = self.n_docs();
        let stemmed = stem(token);
        // Candidate terms: the exact stem plus prefix expansions.
        let mut candidates: Vec<(u32, f64)> = Vec::new();
        if let Some(tid) = self.term_id(&stemmed) {
            candidates.push((tid, 1.0));
        }
        if opts.prefix && token.len() >= opts.min_prefix_len {
            for tid in self.prefix_expansions(token, opts.max_expansions) {
                if !candidates.iter().any(|(t, _)| *t == tid) {
                    candidates.push((tid, opts.prefix_penalty));
                }
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        // The query idf anchors normalization; use the exact term's idf
        // when present, else the strongest expansion.
        let query_idf = candidates
            .iter()
            .map(|(tid, _)| idf(n, self.df(*tid)))
            .fold(f64::MIN, f64::max);
        // Per-document best match.
        let mut best: std::collections::HashMap<u32, TermMatch> = std::collections::HashMap::new();
        for (tid, penalty) in &candidates {
            let term_idf = idf(n, self.df(*tid));
            for p in &self.postings[*tid as usize] {
                let cand = TermMatch {
                    tf: p.positions.len() as u32,
                    idf: term_idf,
                    penalty: *penalty,
                };
                let weight = |m: &TermMatch| (m.tf as f64).sqrt() * m.idf * m.idf * m.penalty;
                best.entry(p.doc)
                    .and_modify(|cur| {
                        if weight(&cand) > weight(cur) {
                            *cur = cand;
                        }
                    })
                    .or_insert(cand);
            }
        }
        let mut hits: Vec<SearchHit> = best
            .into_iter()
            .map(|(doc, m)| SearchHit {
                doc: DocId(doc),
                score: score(&[m], self.doc(DocId(doc)).len, &[query_idf]),
            })
            .collect();
        sort_hits(&mut hits);
        hits
    }

    fn search_phrase_terms(&self, tokens: &[String]) -> Vec<SearchHit> {
        let n = self.n_docs();
        let mut term_ids = Vec::with_capacity(tokens.len());
        for t in tokens {
            match self.term_id(&stem(t)) {
                Some(tid) => term_ids.push(tid),
                // A phrase with an unindexed token matches nothing.
                None => return Vec::new(),
            }
        }
        let idfs: Vec<f64> = term_ids.iter().map(|&t| idf(n, self.df(t))).collect();

        // Intersect postings, driving from the rarest term.
        // An empty phrase (no tokens survived tokenization) matches nothing.
        let Some(driver) = term_ids
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| self.df(t))
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        let mut hits = Vec::new();
        'docs: for p in &self.postings[term_ids[driver] as usize] {
            let doc = p.doc;
            // Collect positions of every term in this doc.
            let mut positions: Vec<&[u32]> = Vec::with_capacity(term_ids.len());
            for &tid in &term_ids {
                match self.postings[tid as usize].binary_search_by_key(&doc, |p| p.doc) {
                    Ok(i) => positions.push(&self.postings[tid as usize][i].positions),
                    Err(_) => continue 'docs,
                }
            }
            // Count phrase occurrences: starts s where every term i occurs
            // at s + i.
            let tf_phrase = positions[0]
                .iter()
                .filter(|&&s| {
                    positions
                        .iter()
                        .enumerate()
                        .skip(1)
                        .all(|(i, ps)| ps.binary_search(&(s + i as u32)).is_ok())
                })
                .count() as u32;
            if tf_phrase == 0 {
                continue;
            }
            let matches: Vec<TermMatch> = idfs
                .iter()
                .map(|&i| TermMatch {
                    tf: tf_phrase,
                    idf: i,
                    penalty: 1.0,
                })
                .collect();
            hits.push(SearchHit {
                doc: DocId(doc),
                score: score(&matches, self.doc(DocId(doc)).len, &idfs),
            });
        }
        sort_hits(&mut hits);
        hits
    }
}

fn sort_hits(hits: &mut [SearchHit]) {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TextIndex;
    use kdap_warehouse::{ColRef, TableId};
    use std::sync::Arc;

    fn attr(t: u32, c: u32) -> ColRef {
        ColRef::new(TableId(t), c)
    }

    fn city_index() -> TextIndex {
        TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("San Jose")),
            (attr(0, 0), 1, Arc::from("San Antonio")),
            (attr(0, 0), 2, Arc::from("San Francisco")),
            (attr(0, 0), 3, Arc::from("Jose")),
            (attr(1, 0), 0, Arc::from("Jose Martinez")),
            (attr(2, 0), 0, Arc::from("345 California Street San Jose")),
        ])
    }

    #[test]
    fn keyword_search_ranks_exact_short_docs_first() {
        let idx = city_index();
        let hits = idx.search_keyword("jose", &SearchOptions::default());
        assert!(!hits.is_empty());
        // "Jose" (single-token doc) is the best match for keyword "jose".
        assert_eq!(idx.doc(hits[0].doc).text.as_ref(), "Jose");
        // The long address ranks below the two-token docs.
        let address_rank = hits
            .iter()
            .position(|h| idx.doc(h.doc).text.contains("345"))
            .unwrap();
        assert!(address_rank >= 2);
    }

    #[test]
    fn phrase_search_requires_adjacency() {
        let idx = city_index();
        let hits = idx.search_phrase(&["san", "jose"], &SearchOptions::default());
        let texts: Vec<&str> = hits.iter().map(|h| idx.doc(h.doc).text.as_ref()).collect();
        assert!(texts.contains(&"San Jose"));
        assert!(texts.contains(&"345 California Street San Jose"));
        assert!(!texts.contains(&"San Antonio"));
        assert!(!texts.contains(&"Jose"));
        // Exact phrase doc scores 1.0 and first.
        assert_eq!(idx.doc(hits[0].doc).text.as_ref(), "San Jose");
        assert!((hits[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_token_keyword_is_treated_as_phrase() {
        let idx = city_index();
        let hits = idx.search_keyword("San Jose", &SearchOptions::default());
        assert_eq!(idx.doc(hits[0].doc).text.as_ref(), "San Jose");
    }

    #[test]
    fn prefix_matching_finds_partial_tokens() {
        let idx = city_index();
        let mut opts = SearchOptions::default();
        let hits = idx.search_keyword("franc", &opts);
        assert!(hits
            .iter()
            .any(|h| idx.doc(h.doc).text.as_ref() == "San Francisco"));
        opts.prefix = false;
        let hits = idx.search_keyword("franc", &opts);
        assert!(hits.is_empty());
    }

    #[test]
    fn prefix_hits_score_below_exact_hits() {
        let idx = TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("Mountain")),
            (attr(0, 0), 1, Arc::from("Mountainside")),
        ]);
        let hits = idx.search_keyword("mountain", &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.doc(hits[0].doc).text.as_ref(), "Mountain");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn stemmed_match_scores_like_exact() {
        let idx = TextIndex::from_documents(vec![(attr(0, 0), 0, Arc::from("Mountain Bikes"))]);
        let hits = idx.search_keyword("bike", &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        let hits2 = idx.search_keyword("bikes", &SearchOptions::default());
        assert!((hits[0].score - hits2[0].score).abs() < 1e-9);
    }

    #[test]
    fn unknown_keyword_returns_empty() {
        let idx = city_index();
        assert!(idx
            .search_keyword("zzzquux", &SearchOptions::default())
            .is_empty());
        assert!(idx.search_keyword("", &SearchOptions::default()).is_empty());
        assert!(idx
            .search_phrase(&["san", "zzzquux"], &SearchOptions::default())
            .is_empty());
    }

    #[test]
    fn phrase_counts_multiple_occurrences() {
        let idx = TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("red bike red bike")),
            (attr(0, 0), 1, Arc::from("red bike blue trike")),
        ]);
        let hits = idx.search_phrase(&["red", "bike"], &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        // The doc with tf=2 (same length) scores higher.
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn hits_sorted_deterministically() {
        let idx = TextIndex::from_documents(vec![
            (attr(0, 0), 0, Arc::from("alpha beta")),
            (attr(0, 0), 1, Arc::from("alpha gamma")),
        ]);
        let hits = idx.search_keyword("alpha", &SearchOptions::default());
        // Equal scores → ordered by doc id.
        assert_eq!(hits[0].doc, DocId(0));
        assert_eq!(hits[1].doc, DocId(1));
    }
}
