//! Porter stemming algorithm (M.F. Porter, 1980).
//!
//! The paper's text index provides "partial matches and stemming over OLAP
//! data" (§3); we implement the classic Porter stemmer, the same algorithm
//! Lucene's `PorterStemFilter` uses.
//!
//! The implementation operates on a lowercase ASCII byte buffer. Non-ASCII
//! or non-alphabetic input is returned unchanged (our tokenizer only emits
//! ASCII alphanumerics, and words containing digits are not stemmed).

/// Stems one lowercase token. Returns the stem as a new `String`.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // Infallible: the input is lowercase ASCII (tokenizer output) and
    // every rewrite step only truncates or substitutes ASCII bytes.
    #[allow(clippy::expect_used)]
    String::from_utf8(s.b).expect("stemmer buffer is ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is the character at `i` a consonant?
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The measure `m` of the prefix `b[..=j]`: the number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip the initial consonant run.
        loop {
            if i > j {
                return n;
            }
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            // Skip vowels.
            loop {
                if i > j {
                    return n;
                }
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            // Skip consonants.
            loop {
                if i > j {
                    return n;
                }
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Measure of the part of the buffer preceding the suffix of length
    /// `suffix_len`.
    fn m_before(&self, suffix_len: usize) -> usize {
        let stem_len = self.b.len() - suffix_len;
        if stem_len == 0 {
            return 0;
        }
        self.measure(stem_len - 1)
    }

    /// Does the stem before the suffix contain a vowel?
    fn has_vowel_before(&self, suffix_len: usize) -> bool {
        let stem_len = self.b.len() - suffix_len;
        (0..stem_len).any(|i| !self.is_consonant(i))
    }

    /// Does the buffer end in a double consonant?
    fn ends_double_consonant(&self) -> bool {
        let n = self.b.len();
        n >= 2 && self.b[n - 1] == self.b[n - 2] && self.is_consonant(n - 1)
    }

    /// `*o`: stem ends consonant-vowel-consonant where the final consonant
    /// is not w, x or y.
    fn ends_cvc(&self, suffix_len: usize) -> bool {
        let n = self.b.len() - suffix_len;
        if n < 3 {
            return false;
        }
        let last = self.b[n - 1];
        self.is_consonant(n - 3)
            && !self.is_consonant(n - 2)
            && self.is_consonant(n - 1)
            && !matches!(last, b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &str) -> bool {
        self.b.ends_with(suffix.as_bytes())
    }

    fn replace_suffix(&mut self, suffix: &str, replacement: &str) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement.as_bytes());
    }

    /// If the word ends with `suffix` and `m_before > threshold`, replace
    /// it. Returns true when `suffix` matched (regardless of replacement).
    fn rule(&mut self, suffix: &str, replacement: &str, m_threshold: usize) -> bool {
        if self.ends_with(suffix) && self.b.len() > suffix.len() {
            if self.m_before(suffix.len()) > m_threshold {
                self.replace_suffix(suffix, replacement);
            }
            return true;
        }
        false
    }

    fn step1a(&mut self) {
        if self.ends_with("sses") {
            self.replace_suffix("sses", "ss");
        } else if self.ends_with("ies") {
            self.replace_suffix("ies", "i");
        } else if self.ends_with("ss") {
            // keep
        } else if self.ends_with("s") {
            self.replace_suffix("s", "");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with("eed") {
            if self.m_before(3) > 0 {
                self.replace_suffix("eed", "ee");
            }
            return;
        }
        let fired = if self.ends_with("ed") && self.has_vowel_before(2) {
            self.replace_suffix("ed", "");
            true
        } else if self.ends_with("ing") && self.has_vowel_before(3) {
            self.replace_suffix("ing", "");
            true
        } else {
            false
        };
        if fired {
            if self.ends_with("at") {
                self.replace_suffix("at", "ate");
            } else if self.ends_with("bl") {
                self.replace_suffix("bl", "ble");
            } else if self.ends_with("iz") {
                self.replace_suffix("iz", "ize");
            } else if self.ends_double_consonant() {
                let last = self.b[self.b.len() - 1];
                if !matches!(last, b'l' | b's' | b'z') {
                    self.b.pop();
                }
            } else if self.m_before(0) == 1 && self.ends_cvc(0) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with("y") && self.has_vowel_before(1) {
            let n = self.b.len();
            self.b[n - 1] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, replacement) in RULES {
            if self.rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, replacement) in RULES {
            if self.rule(suffix, replacement, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const RULES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent",
        ];
        for suffix in RULES {
            if self.ends_with(suffix) && self.b.len() > suffix.len() {
                if self.m_before(suffix.len()) > 1 {
                    self.replace_suffix(suffix, "");
                }
                return;
            }
        }
        // (m>1 and (*S or *T)) ION ->
        if self.ends_with("ion") && self.b.len() > 3 {
            let before = self.b[self.b.len() - 4];
            if self.m_before(3) > 1 && matches!(before, b's' | b't') {
                self.replace_suffix("ion", "");
            }
            return;
        }
        const TAIL: &[&str] = &["ou", "ism", "ate", "iti", "ous", "ive", "ize"];
        for suffix in TAIL {
            if self.ends_with(suffix) && self.b.len() > suffix.len() {
                if self.m_before(suffix.len()) > 1 {
                    self.replace_suffix(suffix, "");
                }
                return;
            }
        }
    }

    fn step5a(&mut self) {
        if self.ends_with("e") {
            let m = self.m_before(1);
            if m > 1 || (m == 1 && !self.ends_cvc(1)) {
                self.b.pop();
            }
        }
    }

    fn step5b(&mut self) {
        if self.ends_double_consonant()
            && self.b[self.b.len() - 1] == b'l'
            && self.measure(self.b.len() - 1) > 1
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic examples from Porter's paper.
    #[test]
    fn porter_paper_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            // step1b gives "agree"; step5a then drops the final e.
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn domain_vocabulary() {
        // Words from the AdventureWorks/EBiz domain the experiments use.
        assert_eq!(stem("bikes"), "bike");
        assert_eq!(stem("accessories"), stem("accessori"));
        assert_eq!(stem("mountains"), "mountain");
        assert_eq!(stem("clothing"), stem("clothe")); // both -> "cloth"
        assert_eq!(stem("promotions"), stem("promotion"));
        assert_eq!(stem("tires"), stem("tire"));
    }

    #[test]
    fn short_and_non_alpha_words_pass_through() {
        assert_eq!(stem("tv"), "tv");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("sport100"), "sport100");
        assert_eq!(stem("2001"), "2001");
        assert_eq!(stem(""), "");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["mountain", "bike", "california", "columbus", "panel"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "idempotent for {w}");
        }
    }
}
