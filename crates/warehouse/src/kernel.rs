//! Runtime-dispatched vectorized decode kernels.
//!
//! KDAP is zero-dependency, so instead of a SIMD crate this module does its
//! own runtime CPU dispatch. At first use it probes the host once
//! ([`detected_tier`]) and picks one of four [`KernelTier`]s:
//!
//! * **Avx2** — x86_64 with AVX2: hand-written `core::arch::x86_64`
//!   intrinsics (32-byte lanes) for bulk code unpacking.
//! * **Sse2** — any other x86_64 (SSE2 is baseline): batch kernels written
//!   as fixed-trip-count safe Rust that LLVM auto-vectorizes at 128 bits.
//! * **Neon** — aarch64 (NEON is baseline): the same batch kernels,
//!   auto-vectorized to NEON.
//! * **Scalar** — everything else, and the mandatory reference fallback.
//!
//! Every dispatched kernel has a public `_scalar` twin that is the
//! semantic reference; all tiers are **bit-identical** (kernels here move
//! integers only — no float reassociation), which
//! `tests/simd_equivalence.rs` proves property-style. Setting the
//! `KDAP_NO_SIMD` environment variable forces the Scalar tier process-wide
//! (checked once, cached); `ExecConfig::with_force_scalar` does the same
//! per-session without touching the environment.

use std::ops::Range;
use std::sync::OnceLock;

/// Sentinel stored in unpacked code buffers for NULL rows. Real codes are
/// bounded by dictionary cardinality (and by 32-bit packing), so
/// `u32::MAX` can never collide with a live code.
pub const NULL_CODE: u32 = u32::MAX;

/// The kernel implementation selected by runtime dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Reference per-element loops; always available, always bit-identical.
    Scalar,
    /// x86_64 baseline: batch kernels auto-vectorized at 128 bits.
    Sse2,
    /// aarch64 baseline: batch kernels auto-vectorized to NEON.
    Neon,
    /// x86_64 with runtime-detected AVX2: explicit 256-bit intrinsics.
    Avx2,
}

impl KernelTier {
    /// Short lowercase name for stats surfaces and obs counters.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Neon => "neon",
            KernelTier::Avx2 => "avx2",
        }
    }

    /// True when this tier is the scalar reference fallback.
    pub fn is_scalar(self) -> bool {
        self == KernelTier::Scalar
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn detect() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelTier::Avx2
        } else {
            KernelTier::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        KernelTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        KernelTier::Scalar
    }
}

/// Best tier the host CPU supports, probed once and cached. Ignores
/// `KDAP_NO_SIMD` — see [`active_tier`] for the tier kernels actually use.
pub fn detected_tier() -> KernelTier {
    static DETECTED: OnceLock<KernelTier> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// True when `KDAP_NO_SIMD` is set (to anything except `0` or the empty
/// string), forcing the Scalar tier process-wide. Checked once and cached.
pub fn simd_disabled_by_env() -> bool {
    static DISABLED: OnceLock<bool> = OnceLock::new();
    *DISABLED.get_or_init(|| match std::env::var("KDAP_NO_SIMD") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    })
}

/// The tier dispatched kernels run at: [`detected_tier`] unless
/// `KDAP_NO_SIMD` forces Scalar.
pub fn active_tier() -> KernelTier {
    static ACTIVE: OnceLock<KernelTier> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if simd_disabled_by_env() {
            KernelTier::Scalar
        } else {
            detected_tier()
        }
    })
}

/// Runtime-detected CPU features relevant to the kernel layer, for stats
/// surfaces (so bench numbers are attributable to hardware).
pub fn detected_features() -> &'static [&'static str] {
    static FEATURES: OnceLock<Vec<&'static str>> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut f = vec!["sse2"];
            if std::arch::is_x86_feature_detected!("sse4.2") {
                f.push("sse4.2");
            }
            if std::arch::is_x86_feature_detected!("popcnt") {
                f.push("popcnt");
            }
            if std::arch::is_x86_feature_detected!("avx") {
                f.push("avx");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                f.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("bmi2") {
                f.push("bmi2");
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                f.push("avx512f");
            }
            f
        }
        #[cfg(target_arch = "aarch64")]
        {
            vec!["neon"]
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            Vec::new()
        }
    })
}

#[inline]
fn mask_for(bits: usize) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Scalar reference: decodes `len` codes bit-packed at `bits` per code
/// (slot 0 in the low bits, `64 / bits` codes per word) from `words` into
/// `out[..len]`. `bits` must be one of 1/2/4/8/16/32 and `words` must hold
/// at least `len` packed codes.
pub fn unpack_words_scalar(words: &[u64], bits: u8, len: usize, out: &mut [u32]) {
    let bits = bits as usize;
    let per_word = 64 / bits;
    let mask = mask_for(bits);
    for (i, slot) in out[..len].iter_mut().enumerate() {
        *slot = ((words[i / per_word] >> ((i % per_word) * bits)) & mask) as u32;
    }
}

/// Decodes one full packed word (`64 / bits` codes) into `out`. The match
/// arms have fixed trip counts so LLVM unrolls and auto-vectorizes them at
/// the target's native width (SSE2 on x86_64, NEON on aarch64).
#[inline]
fn unpack_full_word(w: u64, bits: usize, out: &mut [u32]) {
    match bits {
        1 => {
            for (j, slot) in out[..64].iter_mut().enumerate() {
                *slot = ((w >> j) & 1) as u32;
            }
        }
        2 => {
            for (j, slot) in out[..32].iter_mut().enumerate() {
                *slot = ((w >> (j * 2)) & 3) as u32;
            }
        }
        4 => {
            for (j, slot) in out[..16].iter_mut().enumerate() {
                *slot = ((w >> (j * 4)) & 0xF) as u32;
            }
        }
        8 => {
            let b = w.to_le_bytes();
            for (j, slot) in out[..8].iter_mut().enumerate() {
                *slot = u32::from(b[j]);
            }
        }
        16 => {
            for (j, slot) in out[..4].iter_mut().enumerate() {
                *slot = ((w >> (j * 16)) & 0xFFFF) as u32;
            }
        }
        _ => {
            out[0] = w as u32;
            out[1] = (w >> 32) as u32;
        }
    }
}

/// Batch unpack as fixed-trip-count safe Rust (the Sse2/Neon tier
/// implementation — LLVM auto-vectorizes the full-word loops).
pub fn unpack_words_unrolled(words: &[u64], bits: u8, len: usize, out: &mut [u32]) {
    let bits = bits as usize;
    let per_word = 64 / bits;
    let n_full = len / per_word;
    for i in 0..n_full {
        unpack_full_word(words[i], bits, &mut out[i * per_word..(i + 1) * per_word]);
    }
    let done = n_full * per_word;
    if done < len {
        let mask = mask_for(bits);
        let mut w = words[n_full];
        for slot in out[done..len].iter_mut() {
            *slot = (w & mask) as u32;
            w >>= bits;
        }
    }
}

/// Dispatched bulk unpack: decodes `len` codes packed at `bits` per code
/// from `words` into `out[..len]` using the [`active_tier`] kernel.
/// Bit-identical to [`unpack_words_scalar`] on every tier.
pub fn unpack_words(words: &[u64], bits: u8, len: usize, out: &mut [u32]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => {
            // SAFETY: active_tier() returned Avx2, so runtime detection
            // proved the AVX2 target features are available on this CPU.
            unsafe { avx2::unpack(words, bits, len, out) }
        }
        KernelTier::Scalar => unpack_words_scalar(words, bits, len, out),
        _ => unpack_words_unrolled(words, bits, len, out),
    }
}

/// Overwrites `out[i]` with [`NULL_CODE`] for every set bit `i` in the
/// null bitmap `nulls` (bit `i` of word `i / 64`). Bits at or beyond
/// `out.len()` are ignored.
pub fn apply_null_sentinel(nulls: &[u64], out: &mut [u32]) {
    for (word_idx, &w) in nulls.iter().enumerate() {
        let mut w = w;
        let base = word_idx * 64;
        while w != 0 {
            let i = base + w.trailing_zeros() as usize;
            if i < out.len() {
                out[i] = NULL_CODE;
            }
            w &= w - 1;
        }
    }
}

/// Visits each set-bit index in `nulls` within `range`, in ascending
/// order (helper for callers that walk null bitmaps directly).
pub fn for_each_null<F: FnMut(usize)>(nulls: &[u64], range: Range<usize>, mut f: F) {
    if range.is_empty() {
        return;
    }
    let first_word = range.start / 64;
    let last_word = (range.end - 1) / 64;
    let end_word = (last_word + 1).min(nulls.len());
    for (word_idx, &word) in nulls.iter().enumerate().take(end_word).skip(first_word) {
        let mut w = word;
        let base = word_idx * 64;
        while w != 0 {
            let i = base + w.trailing_zeros() as usize;
            if i >= range.end {
                break;
            }
            if i >= range.start {
                f(i);
            }
            w &= w - 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit AVX2 unpack kernels. Every function here requires the
    //! caller to have proved AVX2 support via runtime detection.
    use std::arch::x86_64::*;

    /// Bulk unpack with 256-bit lanes.
    ///
    /// # Safety
    /// Caller must guarantee the CPU supports AVX2 (runtime-detected).
    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack(words: &[u64], bits: u8, len: usize, out: &mut [u32]) {
        let bits_us = bits as usize;
        let per_word = 64 / bits_us;
        let n_full = len / per_word;
        match bits {
            1 => unpack_small::<1>(words, n_full, out),
            2 => unpack_small::<2>(words, n_full, out),
            4 => unpack_small::<4>(words, n_full, out),
            8 => unpack8(words, n_full, out),
            16 => unpack16(words, n_full, out),
            _ => {
                for (i, &w) in words[..n_full].iter().enumerate() {
                    out[i * 2] = w as u32;
                    out[i * 2 + 1] = (w >> 32) as u32;
                }
            }
        }
        let done = n_full * per_word;
        if done < len {
            let mask = super::mask_for(bits_us);
            let mut w = words[n_full];
            for slot in out[done..len].iter_mut() {
                *slot = (w & mask) as u32;
                w >>= bits;
            }
        }
    }

    /// Widths 1/2/4: broadcast each 32-bit half of a word and shift out
    /// eight codes per `vpsrlvd`, masked to `BITS`.
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_small<const BITS: i32>(words: &[u64], n_full: usize, out: &mut [u32]) {
        let lanes_per_half = (32 / BITS as usize).div_ceil(8); // srlv rounds per 32-bit half
        let per_word = 64 / BITS as usize;
        let mask = _mm256_set1_epi32((1 << BITS) - 1);
        let mut o = out.as_mut_ptr();
        for &w in &words[..n_full] {
            for half in [w as u32, (w >> 32) as u32] {
                let v = _mm256_set1_epi32(half as i32);
                for round in 0..lanes_per_half {
                    let base = (round * 8 * BITS as usize) as i32;
                    let shifts = _mm256_setr_epi32(
                        base,
                        base + BITS,
                        base + 2 * BITS,
                        base + 3 * BITS,
                        base + 4 * BITS,
                        base + 5 * BITS,
                        base + 6 * BITS,
                        base + 7 * BITS,
                    );
                    let codes = _mm256_and_si256(_mm256_srlv_epi32(v, shifts), mask);
                    _mm256_storeu_si256(o as *mut __m256i, codes);
                    o = o.add(8);
                }
            }
            debug_assert!(per_word == lanes_per_half * 16);
        }
    }

    /// Width 8: one packed word is eight bytes; zero-extend to 8×u32.
    #[target_feature(enable = "avx2")]
    unsafe fn unpack8(words: &[u64], n_full: usize, out: &mut [u32]) {
        for i in 0..n_full {
            let v = _mm_loadl_epi64(words.as_ptr().add(i) as *const __m128i);
            let wide = _mm256_cvtepu8_epi32(v);
            _mm256_storeu_si256(out.as_mut_ptr().add(i * 8) as *mut __m256i, wide);
        }
    }

    /// Width 16: two packed words are eight u16s; zero-extend to 8×u32.
    #[target_feature(enable = "avx2")]
    unsafe fn unpack16(words: &[u64], n_full: usize, out: &mut [u32]) {
        let n_pair = n_full / 2;
        for i in 0..n_pair {
            let v = _mm_loadu_si128(words.as_ptr().add(i * 2) as *const __m128i);
            let wide = _mm256_cvtepu16_epi32(v);
            _mm256_storeu_si256(out.as_mut_ptr().add(i * 8) as *mut __m256i, wide);
        }
        if n_full % 2 == 1 {
            let w = words[n_full - 1];
            let base = (n_full - 1) * 4;
            for j in 0..4 {
                out[base + j] = ((w >> (j * 16)) & 0xFFFF) as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(codes: &[u32], bits: usize) -> Vec<u64> {
        let per_word = 64 / bits;
        let mut words = vec![0u64; codes.len().div_ceil(per_word)];
        for (i, &c) in codes.iter().enumerate() {
            words[i / per_word] |= u64::from(c) << ((i % per_word) * bits);
        }
        words
    }

    fn codes_for(bits: usize, len: usize) -> Vec<u32> {
        let mask = mask_for(bits) as u32;
        // Deterministic pseudo-random pattern touching the full width.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2_654_435_761).rotate_left(7) ^ 0x9E37;
                x & mask
            })
            .collect()
    }

    #[test]
    fn all_tiers_unpack_bit_identically() {
        for bits in [1usize, 2, 4, 8, 16, 32] {
            // Lengths straddling word boundaries, incl. empty and partial words.
            for len in [0usize, 1, 7, 63, 64, 65, 128, 1000, 4096 + 13] {
                let codes = codes_for(bits, len);
                let words = pack(&codes, bits);
                let mut scalar = vec![0u32; len];
                let mut unrolled = vec![u32::MAX; len];
                let mut dispatched = vec![123u32; len];
                unpack_words_scalar(&words, bits as u8, len, &mut scalar);
                unpack_words_unrolled(&words, bits as u8, len, &mut unrolled);
                unpack_words(&words, bits as u8, len, &mut dispatched);
                assert_eq!(scalar, codes, "scalar bits={bits} len={len}");
                assert_eq!(unrolled, codes, "unrolled bits={bits} len={len}");
                assert_eq!(dispatched, codes, "dispatched bits={bits} len={len}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_unpack_matches_scalar_when_available() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for bits in [1usize, 2, 4, 8, 16, 32] {
            for len in [1usize, 65, 333, 65_536] {
                let codes = codes_for(bits, len);
                let words = pack(&codes, bits);
                let mut got = vec![0u32; len];
                // SAFETY: guarded by is_x86_feature_detected above.
                unsafe { avx2::unpack(&words, bits as u8, len, &mut got) };
                assert_eq!(got, codes, "avx2 bits={bits} len={len}");
            }
        }
    }

    #[test]
    fn null_sentinel_overwrites_set_bits_only() {
        let mut out: Vec<u32> = (0..130).collect();
        let mut nulls = vec![0u64; 3];
        for i in [0usize, 63, 64, 127, 129] {
            nulls[i / 64] |= 1 << (i % 64);
        }
        // A stray bit beyond len must be ignored.
        nulls[2] |= 1 << 40;
        apply_null_sentinel(&nulls, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = if [0usize, 63, 64, 127, 129].contains(&i) {
                NULL_CODE
            } else {
                i as u32
            };
            assert_eq!(got, want, "row {i}");
        }
    }

    #[test]
    fn for_each_null_respects_range() {
        let mut nulls = vec![0u64; 2];
        for i in [3usize, 64, 70, 100] {
            nulls[i / 64] |= 1 << (i % 64);
        }
        let mut seen = Vec::new();
        for_each_null(&nulls, 4..100, |i| seen.push(i));
        assert_eq!(seen, vec![64, 70]);
        let mut all = Vec::new();
        for_each_null(&nulls, 0..128, |i| all.push(i));
        assert_eq!(all, vec![3, 64, 70, 100]);
    }

    #[test]
    fn tier_reporting_is_consistent() {
        let active = active_tier();
        let detected = detected_tier();
        if simd_disabled_by_env() {
            assert!(active.is_scalar());
        } else {
            assert_eq!(active, detected);
        }
        assert!(!detected.name().is_empty());
        #[cfg(target_arch = "x86_64")]
        assert!(detected_features().contains(&"sse2"));
    }
}
