//! CSV ingestion: load tables into a [`crate::WarehouseBuilder`] from
//! typed CSV text, so downstream users can point KDAP at their own data
//! without writing row-building code.
//!
//! The header declares column types inline:
//!
//! ```csv
//! ProductKey:int,Name:str:text,Price:float
//! 1,"Mountain-200 Black, 42",2319.99
//! 2,Road-650,699.10
//! ```
//!
//! * types: `int`, `float`, `str`
//! * the `:text` suffix marks a string column as full-text searchable
//! * empty fields are NULL
//! * RFC-4180-style quoting: fields may be double-quoted; embedded quotes
//!   are doubled; quoted fields may contain commas and newlines

use crate::builder::WarehouseBuilder;
use crate::error::WarehouseError;
use crate::value::{Value, ValueType};

/// Parses the typed header and rows of `csv` and loads them as `table`.
pub fn load_csv_table(
    b: &mut WarehouseBuilder,
    table: &str,
    csv: &str,
) -> Result<usize, WarehouseError> {
    let mut records = parse_records(csv)?;
    if records.is_empty() {
        return Err(WarehouseError::InvalidEdge(format!(
            "CSV for table {table} has no header"
        )));
    }
    let header = records.remove(0);
    let mut cols: Vec<(String, ValueType, bool)> = Vec::with_capacity(header.len());
    for spec in &header {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("").trim();
        let ty = parts.next().unwrap_or("").trim();
        let text = parts.next().map(str::trim) == Some("text");
        if name.is_empty() {
            return Err(WarehouseError::InvalidEdge(format!(
                "empty column name in CSV header of {table}"
            )));
        }
        let ty = match ty {
            "int" => ValueType::Int,
            "float" => ValueType::Float,
            "str" => ValueType::Str,
            other => {
                return Err(WarehouseError::InvalidEdge(format!(
                    "column {table}.{name}: unknown type `{other}` (use int|float|str)"
                )))
            }
        };
        cols.push((name.to_string(), ty, text));
    }
    let col_refs: Vec<(&str, ValueType, bool)> =
        cols.iter().map(|(n, t, s)| (n.as_str(), *t, *s)).collect();
    b.table(table, &col_refs)?;

    let n = records.len();
    for (line, record) in records.into_iter().enumerate() {
        if record.len() != cols.len() {
            return Err(WarehouseError::ArityMismatch {
                table: format!("{table} (csv record {})", line + 2),
                expected: cols.len(),
                got: record.len(),
            });
        }
        let mut row = Vec::with_capacity(cols.len());
        for (field, (name, ty, _)) in record.into_iter().zip(&cols) {
            let v = if field.is_empty() {
                Value::Null
            } else {
                match ty {
                    ValueType::Int => Value::Int(field.trim().parse().map_err(|_| {
                        WarehouseError::TypeMismatch {
                            column: format!("{table}.{name}"),
                            expected: ValueType::Int,
                            got: Some(ValueType::Str),
                        }
                    })?),
                    ValueType::Float => Value::Float(field.trim().parse().map_err(|_| {
                        WarehouseError::TypeMismatch {
                            column: format!("{table}.{name}"),
                            expected: ValueType::Float,
                            got: Some(ValueType::Str),
                        }
                    })?),
                    ValueType::Str => Value::from(field),
                }
            };
            row.push(v);
        }
        b.row(table, row)?;
    }
    Ok(n)
}

/// RFC-4180-ish record parser (quoted fields, doubled quotes, embedded
/// commas/newlines). Returns one `Vec<String>` per record; blank records
/// are skipped.
fn parse_records(csv: &str) -> Result<Vec<Vec<String>>, WarehouseError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = csv.chars().peekable();
    let mut any_field_content = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any_field_content = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any_field_content = true;
            }
            '\r' => {}
            '\n' => {
                if any_field_content || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                any_field_content = false;
            }
            _ => {
                field.push(c);
                any_field_content = true;
            }
        }
    }
    if in_quotes {
        return Err(WarehouseError::InvalidEdge(
            "unterminated quoted CSV field".into(),
        ));
    }
    if any_field_content || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Exports a table back to the typed CSV format [`load_csv_table`]
/// understands, so warehouses round-trip through text.
pub fn export_table(wh: &crate::catalog::Warehouse, table: &str) -> Result<String, WarehouseError> {
    let tid = wh.table_id(table)?;
    let t = wh.table(tid);
    let mut out = String::new();
    for (i, col) in t.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(col.name());
        out.push(':');
        out.push_str(match col.value_type() {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        });
        if col.is_searchable() {
            out.push_str(":text");
        }
    }
    out.push('\n');
    for row in 0..t.nrows() {
        for (i, col) in t.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match col.get(row) {
                Value::Null => {}
                Value::Int(v) => out.push_str(&v.to_string()),
                Value::Float(v) => out.push_str(&v.to_string()),
                Value::Str(s) => out.push_str(&quote_field(&s)),
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Quotes a field when it contains CSV metacharacters.
fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_load_roundtrip() {
        let mut b = WarehouseBuilder::new();
        let n = load_csv_table(
            &mut b,
            "P",
            "PKey:int,Name:str:text,Price:float\n1,Widget,9.5\n2,Gadget,3.25\n",
        )
        .unwrap();
        assert_eq!(n, 2);
        b.fact("P").unwrap();
        let wh = b.finish().unwrap();
        let t = wh.table(wh.table_id("P").unwrap());
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.row(0)[1].as_str(), Some("Widget"));
        assert_eq!(t.row(1)[2].as_float(), Some(3.25));
        assert!(t.column_by_name("Name").unwrap().is_searchable());
        assert!(!t.column_by_name("PKey").unwrap().is_searchable());
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let mut b = WarehouseBuilder::new();
        load_csv_table(
            &mut b,
            "P",
            "Id:int,Name:str:text\n1,\"Mountain-200 Black, 42\"\n2,\"He said \"\"hi\"\"\"\n",
        )
        .unwrap();
        b.fact("P").unwrap();
        let wh = b.finish().unwrap();
        let t = wh.table(wh.table_id("P").unwrap());
        assert_eq!(t.row(0)[1].as_str(), Some("Mountain-200 Black, 42"));
        assert_eq!(t.row(1)[1].as_str(), Some("He said \"hi\""));
    }

    #[test]
    fn empty_fields_become_null() {
        let mut b = WarehouseBuilder::new();
        load_csv_table(&mut b, "T", "A:int,B:str\n1,\n,x\n").unwrap();
        b.fact("T").unwrap();
        let wh = b.finish().unwrap();
        let t = wh.table(wh.table_id("T").unwrap());
        assert!(t.row(0)[1].is_null());
        assert!(t.row(1)[0].is_null());
    }

    #[test]
    fn bad_type_and_bad_value_rejected() {
        let mut b = WarehouseBuilder::new();
        assert!(load_csv_table(&mut b, "T", "A:datetime\n1\n").is_err());
        let mut b = WarehouseBuilder::new();
        assert!(load_csv_table(&mut b, "T", "A:int\nnot_a_number\n").is_err());
    }

    #[test]
    fn arity_mismatch_reports_record() {
        let mut b = WarehouseBuilder::new();
        let err = load_csv_table(&mut b, "T", "A:int,B:int\n1,2\n3\n").unwrap_err();
        assert!(matches!(err, WarehouseError::ArityMismatch { .. }));
        assert!(err.to_string().contains("record 3"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let mut b = WarehouseBuilder::new();
        assert!(load_csv_table(&mut b, "T", "A:str\n\"oops\n").is_err());
    }

    #[test]
    fn crlf_and_trailing_newlines_handled() {
        let mut b = WarehouseBuilder::new();
        let n = load_csv_table(&mut b, "T", "A:int\r\n1\r\n2\r\n\r\n").unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut b = WarehouseBuilder::new();
        load_csv_table(
            &mut b,
            "P",
            "Id:int,Name:str:text,Price:float\n1,\"Quoted, name\",9.5\n2,,\n",
        )
        .unwrap();
        b.fact("P").unwrap();
        let wh = b.finish().unwrap();
        let csv = export_table(&wh, "P").unwrap();
        assert!(csv.starts_with("Id:int,Name:str:text,Price:float\n"));
        // Load the export again and compare every cell.
        let mut b2 = WarehouseBuilder::new();
        load_csv_table(&mut b2, "P", &csv).unwrap();
        b2.fact("P").unwrap();
        let wh2 = b2.finish().unwrap();
        let (t1, t2) = (
            wh.table(wh.table_id("P").unwrap()),
            wh2.table(wh2.table_id("P").unwrap()),
        );
        assert_eq!(t1.nrows(), t2.nrows());
        for r in 0..t1.nrows() {
            assert_eq!(t1.row(r), t2.row(r), "row {r}");
        }
        assert!(export_table(&wh, "NOPE").is_err());
    }

    #[test]
    fn whole_warehouse_from_csv() {
        let mut b = WarehouseBuilder::new();
        load_csv_table(
            &mut b,
            "SALES",
            "Id:int,PKey:int,Qty:int,Price:float\n1,1,2,10\n2,2,1,5\n",
        )
        .unwrap();
        load_csv_table(&mut b, "PRODUCT", "PKey:int,Name:str:text\n1,TV\n2,Radio\n").unwrap();
        b.edge("SALES.PKey", "PRODUCT.PKey", None, Some("Product"))
            .unwrap();
        b.dimension("Product", &["PRODUCT"], vec![], vec![])
            .unwrap();
        b.fact("SALES").unwrap();
        b.measure_product("Rev", "SALES.Price", "SALES.Qty")
            .unwrap();
        let wh = b.finish().unwrap();
        assert_eq!(wh.fact_rows(), 2);
    }
}
