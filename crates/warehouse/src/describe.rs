//! Schema description: a textual rendering of the star/snowflake graph —
//! the information Figure 2 of the paper conveys — for consoles, logs,
//! and docs.

use crate::catalog::Warehouse;
use crate::schema::TableId;

/// Renders the warehouse schema: fact table, dimensions with their
/// tables, hierarchies and group-by candidates, FK edges with roles, and
/// per-table column summaries in the paper's "(searchable/total)" style.
pub fn describe(wh: &Warehouse) -> String {
    let schema = wh.schema();
    let mut out = String::new();

    let fact = schema.fact_table();
    out.push_str(&format!(
        "fact table: {} ({} rows)\n",
        wh.table(fact).name(),
        wh.table(fact).nrows()
    ));
    out.push_str(&format!(
        "measures: {}\n",
        schema
            .measures()
            .iter()
            .map(|m| m.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    out.push_str("\ndimensions:\n");
    for dim in schema.dimensions() {
        out.push_str(&format!("  {}:\n", dim.name));
        for &t in &dim.tables {
            out.push_str(&format!("    table {}\n", table_summary(wh, t)));
        }
        for h in &dim.hierarchies {
            let levels: Vec<String> = h.levels.iter().map(|&l| wh.col_name(l)).collect();
            out.push_str(&format!(
                "    hierarchy {}: {}\n",
                h.name,
                levels.join(" → ")
            ));
        }
        if !dim.groupby_candidates.is_empty() {
            let gs: Vec<String> = dim
                .groupby_candidates
                .iter()
                .map(|g| {
                    format!(
                        "{}{}",
                        wh.col_name(g.attr),
                        match g.kind {
                            crate::schema::AttrKind::Numerical => " (num)",
                            crate::schema::AttrKind::Categorical => "",
                        }
                    )
                })
                .collect();
            out.push_str(&format!("    group-by candidates: {}\n", gs.join(", ")));
        }
    }

    out.push_str("\njoin edges (child → parent):\n");
    for e in schema.edges() {
        out.push_str(&format!(
            "  {} → {}{}{}\n",
            wh.col_name(e.child),
            wh.col_name(e.parent),
            e.role
                .as_ref()
                .map(|r| format!("  [role {r}]"))
                .unwrap_or_default(),
            e.dimension
                .map(|d| format!("  [dim {}]", schema.dimension(d).name))
                .unwrap_or_default(),
        ));
    }
    out
}

/// `NAME (searchable/total attrs, rows)` — the annotation style of the
/// paper's Figure 2.
fn table_summary(wh: &Warehouse, t: TableId) -> String {
    let table = wh.table(t);
    format!(
        "{} ({}/{} attrs searchable, {} rows)",
        table.name(),
        table.n_searchable(),
        table.ncols(),
        table.nrows()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WarehouseBuilder;
    use crate::schema::AttrKind;
    use crate::value::ValueType;

    fn sample() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "SALES",
            &[
                ("Id", ValueType::Int, false),
                ("PKey", ValueType::Int, false),
                ("Amount", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "PRODUCT",
            &[
                ("PKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
                ("Category", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.row(
            "PRODUCT",
            vec![1i64.into(), "TV".into(), "Electronics".into()],
        )
        .unwrap();
        b.row("SALES", vec![1i64.into(), 1i64.into(), 9.0.into()])
            .unwrap();
        b.edge(
            "SALES.PKey",
            "PRODUCT.PKey",
            Some("Bought"),
            Some("Product"),
        )
        .unwrap();
        b.dimension(
            "Product",
            &["PRODUCT"],
            vec![("Cats", vec!["PRODUCT.Category", "PRODUCT.Name"])],
            vec![("PRODUCT.Category", AttrKind::Categorical)],
        )
        .unwrap();
        b.fact("SALES").unwrap();
        b.measure_column("Amount", "SALES.Amount").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn describes_all_schema_elements() {
        let text = describe(&sample());
        assert!(text.contains("fact table: SALES (1 rows)"));
        assert!(text.contains("measures: Amount"));
        assert!(text.contains("PRODUCT (2/3 attrs searchable, 1 rows)"));
        assert!(text.contains("hierarchy Cats: PRODUCT.Category → PRODUCT.Name"));
        assert!(text.contains("group-by candidates: PRODUCT.Category"));
        assert!(text.contains("[role Bought]"));
        assert!(text.contains("[dim Product]"));
    }
}
