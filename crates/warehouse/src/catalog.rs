//! The [`Warehouse`]: tables plus schema, with name-resolution helpers.

use crate::column::Column;
use crate::error::WarehouseError;
use crate::schema::{ColRef, Measure, MeasureExpr, Schema, TableId};
use crate::table::Table;

/// A fully-built, immutable star/snowflake warehouse.
#[derive(Debug, Clone)]
pub struct Warehouse {
    pub(crate) tables: Vec<Table>,
    pub(crate) schema: Schema,
}

impl Warehouse {
    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId, WarehouseError> {
        self.tables
            .iter()
            .position(|t| t.name() == name)
            .map(|i| TableId(i as u32))
            .ok_or_else(|| WarehouseError::UnknownTable(name.to_string()))
    }

    /// Resolves `table.column` names to a [`ColRef`].
    pub fn col_ref(&self, table: &str, column: &str) -> Result<ColRef, WarehouseError> {
        let tid = self.table_id(table)?;
        let cidx = self.tables[tid.0 as usize]
            .col_index(column)
            .ok_or_else(|| WarehouseError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        Ok(ColRef::new(tid, cidx as u32))
    }

    /// The column behind a [`ColRef`].
    pub fn column(&self, r: ColRef) -> &Column {
        self.tables[r.table.0 as usize].column(r.col as usize)
    }

    /// Pretty `Table.Column` name of a [`ColRef`].
    pub fn col_name(&self, r: ColRef) -> String {
        let t = self.table(r.table);
        format!("{}.{}", t.name(), t.column(r.col as usize).name())
    }

    /// Schema metadata.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total fact-table row count.
    pub fn fact_rows(&self) -> usize {
        self.table(self.schema.fact_table()).nrows()
    }

    /// Evaluates a measure for one fact row; NULL operands yield `None`.
    pub fn eval_measure(&self, measure: &Measure, fact_row: usize) -> Option<f64> {
        match &measure.expr {
            MeasureExpr::Column(c) => self.column(*c).get_float(fact_row),
            MeasureExpr::Product(a, b) => {
                let x = self.column(*a).get_float(fact_row)?;
                let y = self.column(*b).get_float(fact_row)?;
                Some(x * y)
            }
        }
    }

    /// Iterates every full-text searchable column as `(ColRef, &Column)`.
    pub fn searchable_columns(&self) -> impl Iterator<Item = (ColRef, &Column)> {
        self.tables.iter().enumerate().flat_map(|(ti, t)| {
            t.columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_searchable())
                .map(move |(ci, c)| (ColRef::new(TableId(ti as u32), ci as u32), c))
        })
    }

    /// The in-memory byte size of the warehouse's compressed column
    /// storage (for reporting, like the paper's "the full-text index
    /// takes around 5 MB"), summed from per-column chunk metadata.
    pub fn approx_bytes(&self) -> usize {
        self.tables.iter().map(Table::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::WarehouseBuilder;
    use crate::value::ValueType;

    fn tiny() -> crate::catalog::Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "FACT",
            &[
                ("Id", ValueType::Int, false),
                ("ProductKey", ValueType::Int, false),
                ("Qty", ValueType::Int, false),
                ("Price", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "PRODUCT",
            &[
                ("ProductKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.rows(
            "PRODUCT",
            vec![
                vec![1i64.into(), "Widget".into()],
                vec![2i64.into(), "Gadget".into()],
            ],
        )
        .unwrap();
        b.rows(
            "FACT",
            vec![
                vec![1i64.into(), 1i64.into(), 2i64.into(), 10.0.into()],
                vec![2i64.into(), 2i64.into(), 3i64.into(), 5.0.into()],
            ],
        )
        .unwrap();
        b.edge(
            "FACT.ProductKey",
            "PRODUCT.ProductKey",
            None,
            Some("Product"),
        )
        .unwrap();
        b.dimension("Product", &["PRODUCT"], vec![], vec![])
            .unwrap();
        b.fact("FACT").unwrap();
        b.measure_product("Revenue", "FACT.Price", "FACT.Qty")
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn name_resolution() {
        let wh = tiny();
        assert!(wh.table_id("PRODUCT").is_ok());
        assert!(wh.table_id("NOPE").is_err());
        let r = wh.col_ref("PRODUCT", "Name").unwrap();
        assert_eq!(wh.col_name(r), "PRODUCT.Name");
        assert!(wh.col_ref("PRODUCT", "Nope").is_err());
    }

    #[test]
    fn measure_eval() {
        let wh = tiny();
        let m = wh.schema().measure_by_name("Revenue").unwrap().clone();
        assert_eq!(wh.eval_measure(&m, 0), Some(20.0));
        assert_eq!(wh.eval_measure(&m, 1), Some(15.0));
    }

    #[test]
    fn searchable_column_iteration() {
        let wh = tiny();
        let cols: Vec<_> = wh.searchable_columns().collect();
        assert_eq!(cols.len(), 1);
        assert_eq!(wh.col_name(cols[0].0), "PRODUCT.Name");
    }

    #[test]
    fn approx_bytes_is_positive() {
        assert!(tiny().approx_bytes() > 0);
    }
}
