//! Chunked, bit-packed physical column storage.
//!
//! Two building blocks live here:
//!
//! * [`PackedCodes`] — dictionary codes laid out in fixed-size chunks of
//!   [`CHUNK_ROWS`] rows. Sealed chunks bit-pack their codes at the
//!   smallest power-of-two width that fits the chunk's largest code
//!   (1/2/4/8/16/32 bits), so early low-cardinality chunks compress
//!   tighter than later ones. A mutable unpacked tail absorbs appends and
//!   is sealed when it fills; [`PackedCodes::freeze`] packs the final
//!   partial chunk. At 8 bits a chunk is 64 KiB — sized to stay resident
//!   in L2 during a scan.
//! * [`NullableVec`] — numeric storage as a dense value vector plus a
//!   lazily-allocated null bitmap, half the footprint of
//!   `Vec<Option<i64>>`.
//!
//! Decoding is word-at-a-time: [`PackedCodes::for_each`] loads one `u64`
//! and shifts out `64 / bits` codes (2–64 values per load), which is what
//! keeps full-column scans (`rows_with_codes`, statistics) fast on packed
//! data.

use std::cell::RefCell;
use std::ops::Range;

use crate::kernel;

/// Rows per sealed chunk. A power of two so sealed-chunk addressing is a
/// shift, and small enough that one packed chunk fits in L2.
pub const CHUNK_ROWS: usize = 1 << 16;

/// Minimum rows in a sealed-chunk visit before `for_each` pays for a bulk
/// vectorized unpack into scratch instead of word-at-a-time decode.
const BULK_DECODE_MIN: usize = 256;

thread_local! {
    /// Reusable per-thread decode scratch (≤ CHUNK_ROWS × 4 bytes =
    /// 256 KiB at full size), shared by every bulk `for_each` on the
    /// thread so steady-state scans allocate nothing.
    static DECODE_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Smallest supported packing width (bits) that fits `max_code`.
fn bits_for(max_code: u32) -> u8 {
    match max_code {
        0..=1 => 1,
        2..=3 => 2,
        4..=15 => 4,
        16..=255 => 8,
        256..=65_535 => 16,
        _ => 32,
    }
}

/// One sealed, immutable chunk of bit-packed codes.
#[derive(Debug, Clone)]
struct CodeChunk {
    /// Packing width: 1, 2, 4, 8, 16, or 32 bits per code.
    bits: u8,
    /// Rows in this chunk (== `CHUNK_ROWS` except for a frozen tail).
    len: u32,
    /// Packed codes, `64 / bits` per word, slot 0 in the low bits.
    words: Vec<u64>,
    /// Null bitmap (bit set = NULL), allocated only when the chunk holds
    /// at least one NULL. NULL rows pack code 0.
    nulls: Option<Vec<u64>>,
}

impl CodeChunk {
    fn pack(rows: &[Option<u32>]) -> CodeChunk {
        let max_code = rows.iter().flatten().copied().max().unwrap_or(0);
        let bits = bits_for(max_code);
        let per_word = 64 / bits as usize;
        let mut words = vec![0u64; rows.len().div_ceil(per_word)];
        let mut nulls: Option<Vec<u64>> = None;
        for (i, v) in rows.iter().enumerate() {
            match v {
                Some(c) => {
                    words[i / per_word] |= u64::from(*c) << ((i % per_word) * bits as usize);
                }
                None => {
                    let bitmap = nulls.get_or_insert_with(|| vec![0u64; rows.len().div_ceil(64)]);
                    bitmap[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        CodeChunk {
            bits,
            len: rows.len() as u32,
            words,
            nulls,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(bitmap) => (bitmap[i / 64] >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<u32> {
        if self.is_null(i) {
            return None;
        }
        let bits = self.bits as usize;
        let per_word = 64 / bits;
        let mask = (1u64 << bits) - 1;
        Some(((self.words[i / per_word] >> ((i % per_word) * bits)) & mask) as u32)
    }

    /// Bulk-decodes rows `[0, len)` into `out[..len]` via the dispatched
    /// kernel, overwriting NULL rows with [`kernel::NULL_CODE`].
    fn unpack_into(&self, out: &mut [u32]) {
        let len = self.len as usize;
        kernel::unpack_words(&self.words, self.bits, len, &mut out[..len]);
        if let Some(nulls) = &self.nulls {
            kernel::apply_null_sentinel(nulls, &mut out[..len]);
        }
    }

    /// Visits `range` (chunk-local) via a bulk-unpacked scratch buffer:
    /// the covering packed words are decoded in one vectorized pass, then
    /// rows are read back as plain `u32` loads (no per-row shift chain).
    /// `scratch` is reused across chunks by the caller.
    fn for_each_bulk<F: FnMut(usize, Option<u32>)>(
        &self,
        range: Range<usize>,
        base: usize,
        scratch: &mut Vec<u32>,
        f: &mut F,
    ) {
        let bits = self.bits as usize;
        let per_word = 64 / bits;
        let word_start = range.start / per_word;
        let decode_base = word_start * per_word;
        let n = range.end - decode_base;
        scratch.clear();
        scratch.resize(n, 0);
        kernel::unpack_words(&self.words[word_start..], self.bits, n, scratch);
        match &self.nulls {
            None => {
                for i in range {
                    f(base + i, Some(scratch[i - decode_base]));
                }
            }
            Some(bitmap) => {
                for i in range {
                    let null = (bitmap[i / 64] >> (i % 64)) & 1 == 1;
                    f(
                        base + i,
                        if null {
                            None
                        } else {
                            Some(scratch[i - decode_base])
                        },
                    );
                }
            }
        }
    }

    /// Visits `range` (chunk-local) in order, one packed word at a time.
    fn for_each<F: FnMut(usize, Option<u32>)>(&self, range: Range<usize>, base: usize, f: &mut F) {
        let bits = self.bits as usize;
        let per_word = 64 / bits;
        let mask = (1u64 << bits) - 1;
        let mut i = range.start;
        match &self.nulls {
            None => {
                while i < range.end {
                    let word_idx = i / per_word;
                    let stop = ((word_idx + 1) * per_word).min(range.end);
                    let mut word = self.words[word_idx] >> ((i % per_word) * bits);
                    while i < stop {
                        f(base + i, Some((word & mask) as u32));
                        word >>= bits;
                        i += 1;
                    }
                }
            }
            Some(bitmap) => {
                while i < range.end {
                    let word_idx = i / per_word;
                    let stop = ((word_idx + 1) * per_word).min(range.end);
                    let mut word = self.words[word_idx] >> ((i % per_word) * bits);
                    while i < stop {
                        let null = (bitmap[i / 64] >> (i % 64)) & 1 == 1;
                        f(
                            base + i,
                            if null {
                                None
                            } else {
                                Some((word & mask) as u32)
                            },
                        );
                        word >>= bits;
                        i += 1;
                    }
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8 + self.nulls.as_ref().map_or(0, |b| b.capacity() * 8)
    }
}

/// Dictionary codes stored as sealed bit-packed chunks plus a mutable
/// unpacked tail. Supports append, random access, and ordered
/// word-at-a-time scans.
#[derive(Debug, Clone, Default)]
pub struct PackedCodes {
    sealed: Vec<CodeChunk>,
    /// Total rows across sealed chunks. All sealed chunks except possibly
    /// the last hold exactly [`CHUNK_ROWS`] rows, so sealed addressing is
    /// `row / CHUNK_ROWS`.
    sealed_rows: usize,
    tail: Vec<Option<u32>>,
    max_code: Option<u32>,
}

impl PackedCodes {
    /// An empty code store.
    pub fn new() -> Self {
        PackedCodes::default()
    }

    /// Appends one code (or NULL). Seals the tail into a packed chunk each
    /// time it reaches [`CHUNK_ROWS`] rows.
    pub fn push(&mut self, code: Option<u32>) {
        if let Some(c) = code {
            self.max_code = Some(self.max_code.map_or(c, |m| m.max(c)));
        }
        self.tail.push(code);
        // Only auto-seal while sealed chunks are all full; after a freeze
        // of a partial chunk, appends keep accumulating in the tail so
        // `row / CHUNK_ROWS` addressing stays valid for sealed rows.
        if self.tail.len() == CHUNK_ROWS && self.sealed_rows.is_multiple_of(CHUNK_ROWS) {
            self.seal_tail();
        }
    }

    fn seal_tail(&mut self) {
        self.sealed.push(CodeChunk::pack(&self.tail));
        self.sealed_rows += self.tail.len();
        self.tail.clear();
    }

    /// Packs any remaining tail rows into a final (possibly partial)
    /// chunk and trims spare capacity. Called when a warehouse build
    /// completes; appends afterwards remain correct but stay unpacked.
    pub fn freeze(&mut self) {
        if !self.tail.is_empty() && self.sealed_rows.is_multiple_of(CHUNK_ROWS) {
            self.seal_tail();
        }
        self.tail.shrink_to_fit();
        self.sealed.shrink_to_fit();
    }

    /// Total rows stored.
    pub fn len(&self) -> usize {
        self.sealed_rows + self.tail.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest code ever appended, `None` when all rows are NULL or empty.
    pub fn max_code(&self) -> Option<u32> {
        self.max_code
    }

    /// Number of sealed (bit-packed) chunks.
    pub fn n_sealed_chunks(&self) -> usize {
        self.sealed.len()
    }

    /// Rows still in the unpacked tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Code at `row`; panics when out of bounds (same contract as vector
    /// indexing — callers index within `0..len()`).
    #[inline]
    pub fn get(&self, row: usize) -> Option<u32> {
        if row < self.sealed_rows {
            self.sealed[row / CHUNK_ROWS].get(row % CHUNK_ROWS)
        } else {
            self.tail[row - self.sealed_rows]
        }
    }

    /// Visits `(row, code)` for every row in `range`, in row order. Sealed
    /// chunks covering at least [`BULK_DECODE_MIN`] rows of the range are
    /// bulk-unpacked into a per-thread scratch buffer by the dispatched
    /// vectorized kernel; smaller slices decode one packed word at a time.
    pub fn for_each<F: FnMut(usize, Option<u32>)>(&self, range: Range<usize>, mut f: F) {
        let start = range.start.min(self.len());
        let end = range.end.min(self.len());
        let mut row = start;
        while row < end && row < self.sealed_rows {
            let chunk_idx = row / CHUNK_ROWS;
            let chunk = &self.sealed[chunk_idx];
            let chunk_base = chunk_idx * CHUNK_ROWS;
            let local_start = row - chunk_base;
            let local_end = (end - chunk_base).min(chunk.len as usize);
            let local = local_start..local_end;
            if local.len() >= BULK_DECODE_MIN {
                // The scratch is borrowed for the duration of the visit;
                // if the closure re-enters a packed scan (so the scratch
                // is already borrowed), fall back to word-at-a-time.
                let bulk_done = DECODE_SCRATCH.with(|s| match s.try_borrow_mut() {
                    Ok(mut scratch) => {
                        chunk.for_each_bulk(local.clone(), chunk_base, &mut scratch, &mut f);
                        true
                    }
                    Err(_) => false,
                });
                if !bulk_done {
                    chunk.for_each(local, chunk_base, &mut f);
                }
            } else {
                chunk.for_each(local, chunk_base, &mut f);
            }
            row = chunk_base + local_end;
        }
        while row < end {
            f(row, self.tail[row - self.sealed_rows]);
            row += 1;
        }
    }

    /// Bulk-decodes the whole store into `out` (cleared first): one `u32`
    /// per row, NULL rows as [`kernel::NULL_CODE`]. Sealed chunks decode
    /// through the dispatched vectorized kernel.
    ///
    /// The sentinel makes this unsuitable for stores that legitimately
    /// contain the code `u32::MAX`; dictionary-encoded columns never do
    /// (codes are dense dictionary indices).
    pub fn unpack_all(&self, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.len(), 0);
        let mut base = 0;
        for chunk in &self.sealed {
            let len = chunk.len as usize;
            chunk.unpack_into(&mut out[base..base + len]);
            base += len;
        }
        for (i, v) in self.tail.iter().enumerate() {
            out[base + i] = v.unwrap_or(kernel::NULL_CODE);
        }
    }

    /// Heap bytes held by packed words, null bitmaps, and the tail.
    pub fn heap_bytes(&self) -> usize {
        self.sealed.iter().map(CodeChunk::heap_bytes).sum::<usize>()
            + self.sealed.capacity() * std::mem::size_of::<CodeChunk>()
            + self.tail.capacity() * std::mem::size_of::<Option<u32>>()
    }

    /// Bit widths of the sealed chunks, in chunk order (for inspection
    /// and tests).
    pub fn chunk_bit_widths(&self) -> Vec<u8> {
        self.sealed.iter().map(|c| c.bits).collect()
    }
}

/// Dense numeric storage with a lazily-allocated null bitmap — the
/// packed replacement for `Vec<Option<T>>` (16 bytes/row → 8 for `i64`).
#[derive(Debug, Clone, Default)]
pub struct NullableVec<T> {
    values: Vec<T>,
    /// Bit set = NULL. Allocated on the first NULL push and kept sized to
    /// `values.len().div_ceil(64)` words from then on.
    nulls: Option<Vec<u64>>,
    n_nulls: usize,
}

impl<T: Copy + Default> NullableVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        NullableVec {
            values: Vec::new(),
            nulls: None,
            n_nulls: 0,
        }
    }

    /// Appends a value or NULL (NULL stores `T::default()` plus a bit).
    pub fn push(&mut self, value: Option<T>) {
        let idx = self.values.len();
        self.values.push(value.unwrap_or_default());
        if let Some(bitmap) = &mut self.nulls {
            if bitmap.len() * 64 < self.values.len() {
                bitmap.push(0);
            }
        }
        if value.is_none() {
            let bitmap = self
                .nulls
                .get_or_insert_with(|| vec![0u64; idx.div_ceil(64) + 1]);
            // First allocation sizes for idx+1 rows; make sure the word
            // for `idx` exists even when idx is a multiple of 64.
            while bitmap.len() * 64 < self.values.len() {
                bitmap.push(0);
            }
            bitmap[idx / 64] |= 1u64 << (idx % 64);
            self.n_nulls += 1;
        }
    }

    /// Value at `row`, `None` when NULL. Panics when out of bounds.
    #[inline]
    pub fn get(&self, row: usize) -> Option<T> {
        if let Some(bitmap) = &self.nulls {
            if (bitmap[row / 64] >> (row % 64)) & 1 == 1 {
                return None;
            }
        }
        Some(self.values[row])
    }

    /// Number of rows (including NULLs).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of NULL rows.
    pub fn n_nulls(&self) -> usize {
        self.n_nulls
    }

    /// Iterates all rows in order.
    pub fn iter(&self) -> impl Iterator<Item = Option<T>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The dense value vector (NULL rows hold `T::default()`); pair with
    /// [`NullableVec::null_bitmap`] for batch decoding.
    pub fn values_slice(&self) -> &[T] {
        &self.values
    }

    /// The null bitmap (bit set = NULL), `None` when no row is NULL.
    pub fn null_bitmap(&self) -> Option<&[u64]> {
        self.nulls.as_deref()
    }

    /// Trims spare capacity after a build completes.
    pub fn freeze(&mut self) {
        self.values.shrink_to_fit();
        if let Some(bitmap) = &mut self.nulls {
            bitmap.shrink_to_fit();
        }
    }

    /// Heap bytes held by values and the null bitmap.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
            + self.nulls.as_ref().map_or(0, |b| b.capacity() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_picks_minimal_width() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 4);
        assert_eq!(bits_for(15), 4);
        assert_eq!(bits_for(16), 8);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 16);
        assert_eq!(bits_for(65_535), 16);
        assert_eq!(bits_for(65_536), 32);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn roundtrip_across_chunk_boundaries() {
        let n = CHUNK_ROWS * 2 + 1234;
        let mut pc = PackedCodes::new();
        let expected: Vec<Option<u32>> = (0..n)
            .map(|i| {
                if i % 97 == 0 {
                    None
                } else {
                    Some((i % 300) as u32)
                }
            })
            .collect();
        for v in &expected {
            pc.push(*v);
        }
        assert_eq!(pc.len(), n);
        assert_eq!(pc.n_sealed_chunks(), 2);
        assert_eq!(pc.tail_len(), 1234);
        pc.freeze();
        assert_eq!(pc.n_sealed_chunks(), 3);
        assert_eq!(pc.tail_len(), 0);
        for (i, v) in expected.iter().enumerate() {
            assert_eq!(pc.get(i), *v, "row {i}");
        }
        // Ordered scan agrees with random access, over a boundary-
        // straddling range.
        let mut seen = Vec::new();
        pc.for_each(CHUNK_ROWS - 5..CHUNK_ROWS + 5, |row, code| {
            seen.push((row, code))
        });
        let want: Vec<_> = (CHUNK_ROWS - 5..CHUNK_ROWS + 5)
            .map(|i| (i, expected[i]))
            .collect();
        assert_eq!(seen, want);
        assert_eq!(pc.max_code(), Some(299));
    }

    #[test]
    fn chunks_pack_at_their_own_width() {
        let mut pc = PackedCodes::new();
        // First chunk: codes 0..=1 (1 bit). Second chunk: up to 1000 (16 bits).
        for i in 0..CHUNK_ROWS {
            pc.push(Some((i % 2) as u32));
        }
        for i in 0..CHUNK_ROWS {
            pc.push(Some((i % 1000) as u32));
        }
        assert_eq!(pc.chunk_bit_widths(), vec![1, 16]);
        pc.freeze(); // drop the tail's retained capacity before measuring
                     // 1-bit chunk (8 KiB) + 16-bit chunk (128 KiB): well under the
                     // 1 MiB the two chunks would cost unpacked.
        assert!(pc.heap_bytes() < CHUNK_ROWS * 8);
        assert_eq!(pc.get(1), Some(1));
        assert_eq!(pc.get(CHUNK_ROWS + 999), Some(999));
    }

    #[test]
    fn all_null_chunk_packs_one_bit() {
        let mut pc = PackedCodes::new();
        for _ in 0..100 {
            pc.push(None);
        }
        pc.freeze();
        assert_eq!(pc.chunk_bit_widths(), vec![1]);
        assert_eq!(pc.get(50), None);
        assert_eq!(pc.max_code(), None);
        let mut nulls = 0;
        pc.for_each(0..100, |_, c| {
            if c.is_none() {
                nulls += 1
            }
        });
        assert_eq!(nulls, 100);
    }

    #[test]
    fn appends_after_freeze_stay_correct() {
        let mut pc = PackedCodes::new();
        for i in 0..10u32 {
            pc.push(Some(i));
        }
        pc.freeze();
        assert_eq!(pc.n_sealed_chunks(), 1);
        // A partial chunk is sealed; further appends must not seal again
        // (that would break row/CHUNK_ROWS addressing) but must read back.
        for i in 10..20u32 {
            pc.push(Some(i));
        }
        assert_eq!(pc.tail_len(), 10);
        for i in 0..20u32 {
            assert_eq!(pc.get(i as usize), Some(i));
        }
        let mut rows = Vec::new();
        pc.for_each(5..15, |r, c| rows.push((r, c)));
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0], (5, Some(5)));
        assert_eq!(rows[9], (14, Some(14)));
    }

    #[test]
    fn unpack_all_matches_get_with_sentinel() {
        // Several widths across chunks + an unfrozen tail, with nulls.
        let n = CHUNK_ROWS * 2 + 999;
        let mut pc = PackedCodes::new();
        for i in 0..n {
            if i % 41 == 0 {
                pc.push(None);
            } else if i < CHUNK_ROWS {
                pc.push(Some((i % 4) as u32)); // 2-bit chunk
            } else {
                pc.push(Some((i % 700) as u32)); // 16-bit chunk
            }
        }
        let mut out = Vec::new();
        pc.unpack_all(&mut out);
        assert_eq!(out.len(), n);
        for (i, &got) in out.iter().enumerate() {
            match pc.get(i) {
                Some(c) => assert_eq!(got, c, "row {i}"),
                None => assert_eq!(got, crate::kernel::NULL_CODE, "row {i}"),
            }
        }
    }

    #[test]
    fn bulk_for_each_matches_word_decode() {
        // Range large enough to trigger the bulk scratch path, with a
        // word-misaligned start and nulls.
        let n = CHUNK_ROWS + 500;
        let mut pc = PackedCodes::new();
        for i in 0..n {
            if i % 13 == 0 {
                pc.push(None);
            } else {
                pc.push(Some((i % 30) as u32));
            }
        }
        pc.freeze();
        let range = 7..CHUNK_ROWS + 123;
        let mut seen = Vec::new();
        pc.for_each(range.clone(), |row, code| seen.push((row, code)));
        let want: Vec<_> = range.map(|i| (i, pc.get(i))).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn nullable_vec_roundtrip_and_nulls() {
        let mut v: NullableVec<i64> = NullableVec::new();
        v.push(Some(7));
        v.push(None);
        v.push(Some(-3));
        assert_eq!(v.len(), 3);
        assert_eq!(v.n_nulls(), 1);
        assert_eq!(v.get(0), Some(7));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(2), Some(-3));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![Some(7), None, Some(-3)]);
        // Null bitmap costs ~1 bit/row: footprint well under Vec<Option<i64>>.
        v.freeze();
        assert!(v.heap_bytes() < 3 * 16);
    }

    #[test]
    fn nullable_vec_null_at_word_boundary() {
        let mut v: NullableVec<i64> = NullableVec::new();
        for i in 0..64 {
            v.push(Some(i));
        }
        v.push(None); // row 64: first word boundary after lazy allocation
        for i in 0..200 {
            v.push(if i % 3 == 0 { None } else { Some(i) });
        }
        assert_eq!(v.get(64), None);
        assert_eq!(v.get(63), Some(63));
        let expected_nulls = 1 + (0..200).filter(|i| i % 3 == 0).count();
        assert_eq!(v.n_nulls(), expected_nulls);
    }

    #[test]
    fn nullable_vec_all_non_null_has_no_bitmap_cost() {
        let mut v: NullableVec<f64> = NullableVec::new();
        for i in 0..1000 {
            v.push(Some(i as f64));
        }
        v.freeze();
        assert_eq!(v.heap_bytes(), 1000 * 8);
    }
}
