//! Error types for the warehouse engine.

use std::fmt;

use crate::value::ValueType;

/// Errors raised while building or querying a warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarehouseError {
    /// A value of the wrong type was appended to a column.
    TypeMismatch {
        /// `Table.Column` the value was pushed into.
        column: String,
        /// The column's declared type.
        expected: ValueType,
        /// The offending value's type (`None` for NULL).
        got: Option<ValueType>,
    },
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn {
        /// The table searched.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// A dimension name was not found.
    UnknownDimension(String),
    /// A row was appended with the wrong number of values.
    ArityMismatch {
        /// The target table.
        table: String,
        /// The table's column count.
        expected: usize,
        /// The number of values supplied.
        got: usize,
    },
    /// Two tables or two columns share a name.
    DuplicateName(String),
    /// A foreign-key edge refers to columns of incompatible types or a
    /// missing table/column.
    InvalidEdge(String),
    /// The schema has no fact table configured.
    NoFactTable,
    /// A hierarchy level list is empty or spans an unknown column.
    InvalidHierarchy(String),
    /// Referential integrity violation detected at build time.
    BrokenForeignKey {
        /// The violated edge, as `child → parent`.
        edge: String,
        /// A child key with no matching parent row.
        missing_key: i64,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::TypeMismatch {
                column,
                expected,
                got,
            } => match got {
                Some(got) => write!(
                    f,
                    "type mismatch on column {column}: expected {expected}, got {got}"
                ),
                None => write!(
                    f,
                    "type mismatch on column {column}: expected {expected}, got NULL"
                ),
            },
            WarehouseError::UnknownTable(t) => write!(f, "unknown table {t}"),
            WarehouseError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            WarehouseError::UnknownDimension(d) => write!(f, "unknown dimension {d}"),
            WarehouseError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch on table {table}: expected {expected} values, got {got}"
            ),
            WarehouseError::DuplicateName(n) => write!(f, "duplicate name {n}"),
            WarehouseError::InvalidEdge(e) => write!(f, "invalid foreign-key edge: {e}"),
            WarehouseError::NoFactTable => write!(f, "schema has no fact table"),
            WarehouseError::InvalidHierarchy(h) => write!(f, "invalid hierarchy: {h}"),
            WarehouseError::BrokenForeignKey { edge, missing_key } => write!(
                f,
                "broken foreign key on edge {edge}: key {missing_key} has no parent row"
            ),
        }
    }
}

impl std::error::Error for WarehouseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = WarehouseError::UnknownColumn {
            table: "TRANS".into(),
            column: "Nope".into(),
        };
        assert_eq!(e.to_string(), "unknown column TRANS.Nope");
        let e = WarehouseError::TypeMismatch {
            column: "qty".into(),
            expected: ValueType::Int,
            got: None,
        };
        assert!(e.to_string().contains("got NULL"));
    }
}
