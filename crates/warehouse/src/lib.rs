//! # kdap-warehouse
//!
//! In-memory columnar star/snowflake warehouse engine — the RDBMS substrate
//! for the KDAP reproduction (Wu, Sismanis, Reinwald: *Towards
//! Keyword-Driven Analytical Processing*, SIGMOD 2007).
//!
//! The engine stores typed, dictionary-encoded columns, and a schema graph
//! of foreign-key edges with role labels (for self-join roles such as the
//! EBiz Buyer/Seller accounts), dimensions, multi-level hierarchies and
//! measures. Dictionary encoding doubles as the source of *attribute
//! instance* virtual documents for the full-text index (paper §3).
//!
//! ```
//! use kdap_warehouse::{WarehouseBuilder, ValueType, AttrKind};
//!
//! let mut b = WarehouseBuilder::new();
//! b.table("SALES", &[
//!     ("Id", ValueType::Int, false),
//!     ("ProductKey", ValueType::Int, false),
//!     ("Qty", ValueType::Int, false),
//!     ("UnitPrice", ValueType::Float, false),
//! ]).unwrap();
//! b.table("PRODUCT", &[
//!     ("ProductKey", ValueType::Int, false),
//!     ("Name", ValueType::Str, true),
//!     ("Category", ValueType::Str, true),
//! ]).unwrap();
//! b.row("PRODUCT", vec![1i64.into(), "Mountain-200".into(), "Bikes".into()]).unwrap();
//! b.row("SALES", vec![1i64.into(), 1i64.into(), 2i64.into(), 2300.0.into()]).unwrap();
//! b.edge("SALES.ProductKey", "PRODUCT.ProductKey", None, Some("Product")).unwrap();
//! b.dimension("Product", &["PRODUCT"],
//!     vec![("Cat", vec!["PRODUCT.Category", "PRODUCT.Name"])],
//!     vec![("PRODUCT.Category", AttrKind::Categorical)]).unwrap();
//! b.fact("SALES").unwrap();
//! b.measure_product("Revenue", "SALES.UnitPrice", "SALES.Qty").unwrap();
//! let wh = b.finish().unwrap();
//! assert_eq!(wh.fact_rows(), 1);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod catalog;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod describe;
pub mod error;
pub mod kernel;
pub mod schema;
pub mod spec;
pub mod stats;
pub mod table;
pub mod value;

pub use builder::WarehouseBuilder;
pub use catalog::Warehouse;
pub use chunk::{NullableVec, PackedCodes, CHUNK_ROWS};
pub use column::{Column, ColumnData, StrDict};
pub use csv::{export_table, load_csv_table};
pub use describe::describe;
pub use error::WarehouseError;
pub use kernel::{KernelTier, NULL_CODE};
pub use schema::{
    AttrKind, ColRef, DimId, Dimension, EdgeId, FkEdge, GroupByCandidate, Hierarchy, Measure,
    MeasureExpr, Schema, TableId,
};
pub use spec::{export_spec, load_spec, load_warehouse, save_warehouse};
pub use stats::{
    summarize, ColumnStats, ColumnSummary, StatsCatalog, TableSummary, WarehouseSummary,
};
pub use table::Table;
pub use value::{Value, ValueType};
