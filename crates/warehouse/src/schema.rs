//! Star/snowflake schema metadata: table/column references, foreign-key
//! edges, dimensions, hierarchies, and measures.
//!
//! The schema graph drives two KDAP phases: join-path enumeration during
//! candidate star-net generation (paper §4.2, Algorithm 1) and roll-up
//! partitioning during facet construction (§5.2.1).

use std::fmt;

/// Identifier of a table within a warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimId(pub u32);

/// Identifier of a foreign-key edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// A reference to one column of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// The owning table.
    pub table: TableId,
    /// Column index within the table.
    pub col: u32,
}

impl ColRef {
    /// Builds a reference from its parts.
    pub fn new(table: TableId, col: u32) -> Self {
        ColRef { table, col }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}#c{}", self.table.0, self.col)
    }
}

/// One foreign-key edge `child.fk → parent.pk`.
///
/// The `role` distinguishes multiple edges between the same pair of tables
/// (e.g. `TRANS.BuyerKey → ACCOUNT` vs `TRANS.SellerKey → ACCOUNT` in the
/// paper's EBiz schema). The `dimension` tag, when present, names the
/// dimension a join path enters when it traverses this edge; paths inherit
/// the first tag seen walking out from the fact table.
#[derive(Debug, Clone)]
pub struct FkEdge {
    /// Stable identifier of the edge.
    pub id: EdgeId,
    /// The FK side (e.g. `TRANS.BuyerKey`).
    pub child: ColRef,
    /// The PK side (e.g. `ACCOUNT.AccountKey`).
    pub parent: ColRef,
    /// Distinguishes multiple edges between the same tables.
    pub role: Option<String>,
    /// The dimension a join path enters when traversing this edge.
    pub dimension: Option<DimId>,
}

/// An aggregation hierarchy: an ordered list of level columns from the most
/// general (index 0, e.g. `Country`) to the most specific (e.g. `City`).
/// Levels may live in different tables connected by FK edges (snowflake),
/// or in a single denormalized table.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Hierarchy name (e.g. `UNSPSC`).
    pub name: String,
    /// Most general level first.
    pub levels: Vec<ColRef>,
}

impl Hierarchy {
    /// Position of `col` among the levels, if it is a level.
    pub fn level_of(&self, col: ColRef) -> Option<usize> {
        self.levels.iter().position(|&l| l == col)
    }

    /// The parent (next more general) level of `col`, if any.
    pub fn parent_level(&self, col: ColRef) -> Option<ColRef> {
        match self.level_of(col) {
            Some(0) | None => None,
            Some(i) => Some(self.levels[i - 1]),
        }
    }
}

/// How a group-by candidate attribute partitions the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Distinct values form the categories directly.
    Categorical,
    /// The numeric domain is bucketized into basic intervals (§5.2.2).
    Numerical,
}

/// A candidate group-by attribute, registered per dimension.
///
/// The paper manually specifies group-by candidates (descriptions and IDs
/// make meaningless groups — §5.2.1); we mirror that with an explicit
/// registry.
#[derive(Debug, Clone)]
pub struct GroupByCandidate {
    /// The candidate attribute.
    pub attr: ColRef,
    /// Categorical or numerical partitioning.
    pub kind: AttrKind,
}

/// A logical dimension: a set of member tables plus hierarchies and
/// group-by candidates.
#[derive(Debug, Clone)]
pub struct Dimension {
    /// Stable identifier.
    pub id: DimId,
    /// Dimension name (e.g. `Customer`).
    pub name: String,
    /// Member tables, fact-adjacent first by convention.
    pub tables: Vec<TableId>,
    /// Aggregation hierarchies within the dimension.
    pub hierarchies: Vec<Hierarchy>,
    /// Attributes eligible as group-by facets (§5.2.1: manually
    /// specified; IDs and free text make meaningless groups).
    pub groupby_candidates: Vec<GroupByCandidate>,
}

impl Dimension {
    /// Finds the hierarchy (if any) having `col` as a level.
    pub fn hierarchy_containing(&self, col: ColRef) -> Option<&Hierarchy> {
        self.hierarchies.iter().find(|h| h.level_of(col).is_some())
    }
}

/// A measure definition over fact-table columns.
#[derive(Debug, Clone)]
pub enum MeasureExpr {
    /// The value of one fact column.
    Column(ColRef),
    /// The product of two fact columns (e.g. `UnitPrice * Quantity`,
    /// the paper's sales-revenue measure).
    Product(ColRef, ColRef),
}

/// A named measure.
#[derive(Debug, Clone)]
pub struct Measure {
    /// Measure name (e.g. `SalesRevenue`).
    pub name: String,
    /// How the per-fact value is computed.
    pub expr: MeasureExpr,
}

/// Complete schema metadata for one warehouse.
#[derive(Debug, Clone)]
pub struct Schema {
    pub(crate) fact_table: TableId,
    pub(crate) edges: Vec<FkEdge>,
    pub(crate) dimensions: Vec<Dimension>,
    pub(crate) measures: Vec<Measure>,
    /// For each table, outgoing edges (this table is the child).
    pub(crate) edges_by_child: Vec<Vec<EdgeId>>,
    /// For each table, incoming edges (this table is the parent).
    pub(crate) edges_by_parent: Vec<Vec<EdgeId>>,
}

impl Schema {
    /// The fact table.
    pub fn fact_table(&self) -> TableId {
        self.fact_table
    }

    /// All foreign-key edges.
    pub fn edges(&self) -> &[FkEdge] {
        &self.edges
    }

    /// Edge by id.
    pub fn edge(&self, id: EdgeId) -> &FkEdge {
        &self.edges[id.0 as usize]
    }

    /// Edges whose child side is `table`.
    pub fn edges_from_child(&self, table: TableId) -> &[EdgeId] {
        &self.edges_by_child[table.0 as usize]
    }

    /// Edges whose parent side is `table`.
    pub fn edges_into_parent(&self, table: TableId) -> &[EdgeId] {
        &self.edges_by_parent[table.0 as usize]
    }

    /// All dimensions.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Dimension by id.
    pub fn dimension(&self, id: DimId) -> &Dimension {
        &self.dimensions[id.0 as usize]
    }

    /// Dimension by name.
    pub fn dimension_by_name(&self, name: &str) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| d.name == name)
    }

    /// The dimension(s) whose member tables include `table`.
    pub fn dimensions_of_table(&self, table: TableId) -> Vec<DimId> {
        self.dimensions
            .iter()
            .filter(|d| d.tables.contains(&table))
            .map(|d| d.id)
            .collect()
    }

    /// All measures.
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Measure by name.
    pub fn measure_by_name(&self, name: &str) -> Option<&Measure> {
        self.measures.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_levels_and_parents() {
        let t = TableId(0);
        let h = Hierarchy {
            name: "Geo".into(),
            levels: vec![ColRef::new(t, 0), ColRef::new(t, 1), ColRef::new(t, 2)],
        };
        assert_eq!(h.level_of(ColRef::new(t, 1)), Some(1));
        assert_eq!(h.parent_level(ColRef::new(t, 2)), Some(ColRef::new(t, 1)));
        assert_eq!(h.parent_level(ColRef::new(t, 0)), None);
        assert_eq!(h.parent_level(ColRef::new(t, 9)), None);
    }

    #[test]
    fn dimension_finds_hierarchy() {
        let t = TableId(3);
        let dim = Dimension {
            id: DimId(0),
            name: "Product".into(),
            tables: vec![t],
            hierarchies: vec![Hierarchy {
                name: "ProdLine".into(),
                levels: vec![ColRef::new(t, 1), ColRef::new(t, 2)],
            }],
            groupby_candidates: vec![],
        };
        assert!(dim.hierarchy_containing(ColRef::new(t, 2)).is_some());
        assert!(dim.hierarchy_containing(ColRef::new(t, 7)).is_none());
    }
}
