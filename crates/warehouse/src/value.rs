//! Scalar values and types stored in warehouse columns.

use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (also used for surrogate keys).
    Int,
    /// 64-bit IEEE float (measures, prices, incomes...).
    Float,
    /// Dictionary-encoded UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Str => write!(f, "STR"),
        }
    }
}

/// A single scalar cell value.
///
/// `Str` values share their backing storage with the column dictionary, so
/// cloning a [`Value`] is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string, shared with the column dictionary.
    Str(Arc<str>),
}

impl Value {
    /// Returns the type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// True when this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float; integers are widened so that measures can be
    /// defined over either numeric type.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts the string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_of_each_variant() {
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(3).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Float(1.5).value_type(), Some(ValueType::Float));
        assert_eq!(Value::from("x").value_type(), Some(ValueType::Str));
    }

    #[test]
    fn as_float_widens_ints() {
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("s").as_float(), None);
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(Some(5i64)), Value::Int(5));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }
}
