//! Tables: named collections of equal-length columns.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::WarehouseError;
use crate::value::{Value, ValueType};

/// A single table (fact, dimension, or outrigger).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    col_lookup: HashMap<String, usize>,
    nrows: usize,
}

impl Table {
    /// Creates an empty table with the given column definitions
    /// `(name, type, full-text searchable)`.
    pub fn new(
        name: impl Into<String>,
        cols: &[(&str, ValueType, bool)],
    ) -> Result<Self, WarehouseError> {
        let name = name.into();
        let mut columns = Vec::with_capacity(cols.len());
        let mut col_lookup = HashMap::with_capacity(cols.len());
        for (i, (cname, ty, searchable)) in cols.iter().enumerate() {
            if col_lookup.insert((*cname).to_string(), i).is_some() {
                return Err(WarehouseError::DuplicateName(format!("{name}.{cname}")));
            }
            columns.push(Column::new(*cname, *ty, *searchable));
        }
        Ok(Table {
            name,
            columns,
            col_lookup,
            nrows: 0,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Number of full-text searchable (string) columns.
    pub fn n_searchable(&self) -> usize {
        self.columns.iter().filter(|c| c.is_searchable()).count()
    }

    /// Resolves a column name to its index.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.col_lookup.get(name).copied()
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, WarehouseError> {
        self.col_index(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| WarehouseError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// All columns in definition order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Appends one row; the value count must match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), WarehouseError> {
        if row.len() != self.columns.len() {
            return Err(WarehouseError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.nrows += 1;
        Ok(())
    }

    /// Reads a full row back as values (mostly for tests and display).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Seals partially-filled column chunks and trims spare capacity.
    /// Called once when a warehouse build completes.
    pub fn freeze(&mut self) {
        for c in &mut self.columns {
            c.freeze();
        }
    }

    /// Heap bytes held by this table's compressed column storage, summed
    /// from per-column chunk metadata.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "STORE",
            &[
                ("StoreKey", ValueType::Int, false),
                ("StoreName", ValueType::Str, true),
                ("SqFt", ValueType::Float, false),
            ],
        )
        .unwrap();
        t.push_row(vec![1i64.into(), "Downtown".into(), 1200.0.into()])
            .unwrap();
        t.push_row(vec![2i64.into(), "Mall".into(), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.n_searchable(), 1);
        assert_eq!(t.col_index("SqFt"), Some(2));
        assert!(t.col_index("Nope").is_none());
        assert!(t.column_by_name("Nope").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let err = t.push_row(vec![3i64.into()]).unwrap_err();
        assert!(matches!(err, WarehouseError::ArityMismatch { got: 1, .. }));
        // The failed push must not have changed the row count.
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = Table::new(
            "T",
            &[("A", ValueType::Int, false), ("A", ValueType::Int, false)],
        );
        assert!(matches!(r, Err(WarehouseError::DuplicateName(_))));
    }

    #[test]
    fn row_roundtrip() {
        let t = sample();
        let row = t.row(0);
        assert_eq!(row[0].as_int(), Some(1));
        assert_eq!(row[1].as_str(), Some("Downtown"));
        assert_eq!(row[2].as_float(), Some(1200.0));
        assert!(t.row(1)[2].is_null());
    }
}
