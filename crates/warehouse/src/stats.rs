//! Per-column statistics for selectivity estimation.
//!
//! The plan optimizer in the query layer orders conjunctive constraints
//! most-selective-first. Its estimates come from these per-column
//! summaries: row/null counts, distinct counts, a per-code frequency
//! histogram for dictionary-encoded strings, and min/max for numeric
//! columns. Statistics are computed lazily once per column and memoized
//! in a [`StatsCatalog`] that lives for the duration of a session.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::catalog::Warehouse;
use crate::column::{Column, ColumnData};
use crate::schema::ColRef;

/// Summary statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Total rows stored (including NULLs).
    pub rows: usize,
    /// NULL rows.
    pub nulls: usize,
    /// Distinct non-null values (dictionary size for string columns).
    pub distinct: usize,
    /// For string columns: occurrences of each dictionary code, indexed
    /// by code. Empty for numeric columns.
    code_counts: Vec<u32>,
    /// Minimum value (numeric columns with at least one non-null row).
    pub min: Option<f64>,
    /// Maximum value (numeric columns with at least one non-null row).
    pub max: Option<f64>,
}

impl ColumnStats {
    /// Computes statistics over `col` in one scan.
    pub fn compute(col: &Column) -> Self {
        match col.data() {
            ColumnData::Str { dict, .. } => {
                let mut counts = vec![0u32; dict.len()];
                let mut nulls = 0usize;
                // Word-at-a-time decode of the packed chunks.
                col.for_each_code(|_, c| match c {
                    Some(c) => counts[c as usize] += 1,
                    None => nulls += 1,
                });
                ColumnStats {
                    rows: col.len(),
                    nulls,
                    // Sourced from the same accessor the dense/hash kernel
                    // cutoff uses, so the two can never disagree.
                    distinct: col.cardinality().unwrap_or(dict.len()),
                    code_counts: counts,
                    min: None,
                    max: None,
                }
            }
            ColumnData::Int(values) => {
                let mut distinct = std::collections::HashSet::new();
                let (mut nulls, mut min, mut max) = (0usize, None::<f64>, None::<f64>);
                for v in values.iter() {
                    match v {
                        Some(x) => {
                            distinct.insert(x);
                            let x = x as f64;
                            min = Some(min.map_or(x, |m: f64| m.min(x)));
                            max = Some(max.map_or(x, |m: f64| m.max(x)));
                        }
                        None => nulls += 1,
                    }
                }
                ColumnStats {
                    rows: values.len(),
                    nulls,
                    distinct: distinct.len(),
                    code_counts: Vec::new(),
                    min,
                    max,
                }
            }
            ColumnData::Float(values) => {
                let mut distinct = std::collections::HashSet::new();
                let (mut nulls, mut min, mut max) = (0usize, None::<f64>, None::<f64>);
                for v in values.iter() {
                    match v {
                        Some(x) => {
                            distinct.insert(x.to_bits());
                            min = Some(min.map_or(x, |m: f64| m.min(x)));
                            max = Some(max.map_or(x, |m: f64| m.max(x)));
                        }
                        None => nulls += 1,
                    }
                }
                ColumnStats {
                    rows: values.len(),
                    nulls,
                    distinct: distinct.len(),
                    code_counts: Vec::new(),
                    min,
                    max,
                }
            }
        }
    }

    /// Estimated fraction of this column's rows whose code is in `codes`.
    ///
    /// Exact for string columns (the histogram covers every code); falls
    /// back to `|codes| / distinct` when no histogram is available.
    pub fn code_fraction(&self, codes: &[u32]) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        if self.code_counts.is_empty() {
            return (codes.len() as f64 / self.distinct.max(1) as f64).min(1.0);
        }
        let matched: u64 = codes
            .iter()
            .map(|&c| u64::from(self.code_counts.get(c as usize).copied().unwrap_or(0)))
            .sum();
        matched as f64 / self.rows as f64
    }

    /// Estimated fraction of this column's rows with value in `[lo, hi]`,
    /// assuming a uniform distribution between min and max.
    pub fn range_fraction(&self, lo: f64, hi: f64) -> f64 {
        if self.rows == 0 || hi < lo {
            return 0.0;
        }
        let non_null = (self.rows - self.nulls) as f64 / self.rows as f64;
        match (self.min, self.max) {
            (Some(mn), Some(mx)) if mx > mn => {
                let overlap = ((hi.min(mx) - lo.max(mn)) / (mx - mn)).clamp(0.0, 1.0);
                non_null * overlap
            }
            // Degenerate single-point domain.
            (Some(mn), Some(_)) => {
                if lo <= mn && mn <= hi {
                    non_null
                } else {
                    0.0
                }
            }
            // No numeric domain information: assume nothing filters.
            _ => 1.0,
        }
    }
}

/// One column's line in a [`WarehouseSummary`].
#[derive(Debug, Clone)]
pub struct ColumnSummary {
    /// Column name (without the table prefix).
    pub name: String,
    /// Value type rendered as `str`/`int`/`float`.
    pub value_type: String,
    /// Distinct non-null values.
    pub distinct: usize,
    /// NULL rows.
    pub nulls: usize,
    /// True when the column is full-text searchable.
    pub searchable: bool,
    /// Minimum value, for numeric columns with data.
    pub min: Option<f64>,
    /// Maximum value, for numeric columns with data.
    pub max: Option<f64>,
}

/// One table's line in a [`WarehouseSummary`].
#[derive(Debug, Clone)]
pub struct TableSummary {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Compressed column-storage footprint in bytes, from chunk metadata.
    pub heap_bytes: usize,
    /// True when this is the fact table.
    pub fact: bool,
    /// Per-column summaries, in definition order.
    pub columns: Vec<ColumnSummary>,
}

/// Catalog-wide summary — row counts and per-column cardinalities — the
/// data behind the `kdap stats` console command.
#[derive(Debug, Clone)]
pub struct WarehouseSummary {
    /// Per-table summaries, in catalog order.
    pub tables: Vec<TableSummary>,
    /// Fact-table row count.
    pub fact_rows: usize,
    /// Rough in-memory footprint in bytes.
    pub approx_bytes: usize,
}

/// Computes a full catalog summary in one pass over every column.
pub fn summarize(wh: &Warehouse) -> WarehouseSummary {
    use crate::value::ValueType;
    let fact = wh.schema().fact_table();
    let tables = wh
        .tables()
        .iter()
        .enumerate()
        .map(|(ti, t)| TableSummary {
            name: t.name().to_string(),
            rows: t.nrows(),
            heap_bytes: t.heap_bytes(),
            fact: ti == fact.0 as usize,
            columns: t
                .columns()
                .iter()
                .map(|c| {
                    let s = ColumnStats::compute(c);
                    ColumnSummary {
                        name: c.name().to_string(),
                        value_type: match c.value_type() {
                            ValueType::Str => "str",
                            ValueType::Int => "int",
                            ValueType::Float => "float",
                        }
                        .to_string(),
                        distinct: s.distinct,
                        nulls: s.nulls,
                        searchable: c.is_searchable(),
                        min: s.min,
                        max: s.max,
                    }
                })
                .collect(),
        })
        .collect();
    WarehouseSummary {
        tables,
        fact_rows: wh.fact_rows(),
        approx_bytes: wh.approx_bytes(),
    }
}

/// Lazily computed, memoized per-column statistics for one warehouse.
///
/// Safe to share across worker threads; the first request for a column
/// pays the scan, later requests return the memoized summary.
#[derive(Debug, Default)]
pub struct StatsCatalog {
    cache: Mutex<HashMap<ColRef, Arc<ColumnStats>>>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<ColRef, Arc<ColumnStats>>> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always in a consistent state.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Statistics for `attr`, computing them on first request.
    pub fn get(&self, wh: &Warehouse, attr: ColRef) -> Arc<ColumnStats> {
        if let Some(stats) = self.lock().get(&attr) {
            return stats.clone();
        }
        // Compute outside the lock; a racing thread may compute the same
        // stats, in which case the first insert wins.
        let stats = Arc::new(ColumnStats::compute(wh.column(attr)));
        self.lock().entry(attr).or_insert(stats).clone()
    }

    /// Number of columns with memoized statistics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no statistics have been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn str_column(values: &[Option<&str>]) -> Column {
        let mut c = Column::new("s", ValueType::Str, true);
        for v in values {
            match v {
                Some(s) => c.push(Value::from(*s)).unwrap(),
                None => c.push(Value::Null).unwrap(),
            }
        }
        c
    }

    #[test]
    fn string_histogram_counts_codes() {
        let c = str_column(&[Some("a"), Some("b"), Some("a"), None, Some("a")]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 2);
        let code_a = c.dict().unwrap().code_of("a").unwrap();
        let code_b = c.dict().unwrap().code_of("b").unwrap();
        assert_eq!(s.code_fraction(&[code_a]), 3.0 / 5.0);
        assert_eq!(s.code_fraction(&[code_a, code_b]), 4.0 / 5.0);
        assert_eq!(s.code_fraction(&[]), 0.0);
    }

    #[test]
    fn numeric_min_max_and_range_fraction() {
        let mut c = Column::new("x", ValueType::Float, false);
        for v in [Some(0.0), Some(10.0), Some(5.0), None] {
            match v {
                Some(x) => c.push(Value::Float(x)).unwrap(),
                None => c.push(Value::Null).unwrap(),
            }
        }
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, Some(0.0));
        assert_eq!(s.max, Some(10.0));
        assert_eq!(s.distinct, 3);
        // Half the domain, scaled by the 3/4 non-null fraction.
        let f = s.range_fraction(0.0, 5.0);
        assert!((f - 0.5 * 0.75).abs() < 1e-12, "{f}");
        assert_eq!(s.range_fraction(20.0, 30.0), 0.0);
        assert_eq!(s.range_fraction(5.0, 1.0), 0.0);
    }

    #[test]
    fn int_columns_widen_for_ranges() {
        let mut c = Column::new("n", ValueType::Int, false);
        for x in [1i64, 2, 3, 4] {
            c.push(Value::Int(x)).unwrap();
        }
        let s = ColumnStats::compute(&c);
        assert_eq!((s.min, s.max), (Some(1.0), Some(4.0)));
        assert_eq!(s.range_fraction(1.0, 4.0), 1.0);
    }

    #[test]
    fn summarize_covers_every_table_and_column() {
        use crate::builder::WarehouseBuilder;
        let mut b = WarehouseBuilder::new();
        b.table(
            "F",
            &[
                ("Id", ValueType::Int, false),
                ("City", ValueType::Str, true),
                ("Price", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.row("F", vec![1i64.into(), "Columbus".into(), 9.5.into()])
            .unwrap();
        b.row("F", vec![2i64.into(), "Seattle".into(), 1.5.into()])
            .unwrap();
        b.row("F", vec![3i64.into(), "Columbus".into(), 4.0.into()])
            .unwrap();
        b.fact("F").unwrap();
        let wh = b.finish().unwrap();
        let s = crate::stats::summarize(&wh);
        assert_eq!(s.fact_rows, 3);
        assert!(s.approx_bytes > 0);
        assert_eq!(s.tables.len(), 1);
        let t = &s.tables[0];
        assert!(t.fact);
        assert_eq!(t.rows, 3);
        assert_eq!(t.columns.len(), 3);
        let city = &t.columns[1];
        assert_eq!(city.name, "City");
        assert_eq!(city.value_type, "str");
        assert_eq!(city.distinct, 2);
        assert!(city.searchable);
        let price = &t.columns[2];
        assert_eq!(price.value_type, "float");
        assert_eq!((price.min, price.max), (Some(1.5), Some(9.5)));
    }

    #[test]
    fn catalog_memoizes_per_column() {
        use crate::builder::WarehouseBuilder;
        let mut b = WarehouseBuilder::new();
        b.table(
            "F",
            &[
                ("Id", ValueType::Int, false),
                ("City", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.row("F", vec![1i64.into(), "Columbus".into()]).unwrap();
        b.row("F", vec![2i64.into(), "Seattle".into()]).unwrap();
        b.fact("F").unwrap();
        let wh = b.finish().unwrap();
        let attr = wh.col_ref("F", "City").unwrap();
        let catalog = StatsCatalog::new();
        assert!(catalog.is_empty());
        let a = catalog.get(&wh, attr);
        let b2 = catalog.get(&wh, attr);
        assert!(Arc::ptr_eq(&a, &b2));
        assert_eq!(catalog.len(), 1);
        assert_eq!(a.distinct, 2);
    }
}
