//! Fluent construction and validation of a [`Warehouse`].
//!
//! Tables, rows, edges, dimensions, hierarchies, and measures are declared
//! by name; [`WarehouseBuilder::finish`] resolves all names, validates
//! types, checks referential integrity, and produces an immutable
//! [`Warehouse`].

use std::collections::{HashMap, HashSet};

use crate::catalog::Warehouse;
use crate::error::WarehouseError;
use crate::schema::{
    AttrKind, ColRef, DimId, Dimension, EdgeId, FkEdge, GroupByCandidate, Hierarchy, Measure,
    MeasureExpr, Schema, TableId,
};
use crate::table::Table;
use crate::value::{Value, ValueType};

struct EdgeSpec {
    child: String,
    parent: String,
    role: Option<String>,
    dimension: Option<String>,
}

struct DimSpec {
    name: String,
    tables: Vec<String>,
    /// `(hierarchy name, levels as "Table.Column", general → specific)`.
    hierarchies: Vec<(String, Vec<String>)>,
    /// `("Table.Column", kind)`.
    groupby: Vec<(String, AttrKind)>,
}

enum MeasureSpec {
    Column(String, String),
    Product(String, String, String),
}

/// Builder for [`Warehouse`]; see the crate docs for a usage example.
pub struct WarehouseBuilder {
    tables: Vec<Table>,
    table_lookup: HashMap<String, usize>,
    edges: Vec<EdgeSpec>,
    dims: Vec<DimSpec>,
    measures: Vec<MeasureSpec>,
    fact: Option<String>,
    check_integrity: bool,
}

impl Default for WarehouseBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WarehouseBuilder {
    /// An empty builder with referential-integrity checking enabled.
    pub fn new() -> Self {
        WarehouseBuilder {
            tables: Vec::new(),
            table_lookup: HashMap::new(),
            edges: Vec::new(),
            dims: Vec::new(),
            measures: Vec::new(),
            fact: None,
            check_integrity: true,
        }
    }

    /// Disables the (O(rows)) referential-integrity check at build time.
    pub fn skip_integrity_check(&mut self) -> &mut Self {
        self.check_integrity = false;
        self
    }

    /// Declares a table with columns `(name, type, full-text searchable)`.
    pub fn table(
        &mut self,
        name: &str,
        cols: &[(&str, ValueType, bool)],
    ) -> Result<&mut Self, WarehouseError> {
        if self.table_lookup.contains_key(name) {
            return Err(WarehouseError::DuplicateName(name.to_string()));
        }
        let t = Table::new(name, cols)?;
        self.table_lookup
            .insert(name.to_string(), self.tables.len());
        self.tables.push(t);
        Ok(self)
    }

    /// Appends one row to `table`.
    pub fn row(&mut self, table: &str, row: Vec<Value>) -> Result<&mut Self, WarehouseError> {
        let idx = *self
            .table_lookup
            .get(table)
            .ok_or_else(|| WarehouseError::UnknownTable(table.to_string()))?;
        self.tables[idx].push_row(row)?;
        Ok(self)
    }

    /// Appends many rows to `table`.
    pub fn rows(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<&mut Self, WarehouseError> {
        let idx = *self
            .table_lookup
            .get(table)
            .ok_or_else(|| WarehouseError::UnknownTable(table.to_string()))?;
        for row in rows {
            self.tables[idx].push_row(row)?;
        }
        Ok(self)
    }

    /// Declares a foreign-key edge `child → parent`, both as
    /// `"Table.Column"`. `role` disambiguates multiple edges between the
    /// same tables; `dimension` tags the dimension entered via this edge.
    pub fn edge(
        &mut self,
        child: &str,
        parent: &str,
        role: Option<&str>,
        dimension: Option<&str>,
    ) -> Result<&mut Self, WarehouseError> {
        self.edges.push(EdgeSpec {
            child: child.to_string(),
            parent: parent.to_string(),
            role: role.map(str::to_string),
            dimension: dimension.map(str::to_string),
        });
        Ok(self)
    }

    /// Declares a dimension with member tables, hierarchies
    /// (`(name, [levels general→specific as "Table.Column"])`) and group-by
    /// candidates (`("Table.Column", kind)`).
    pub fn dimension(
        &mut self,
        name: &str,
        tables: &[&str],
        hierarchies: Vec<(&str, Vec<&str>)>,
        groupby: Vec<(&str, AttrKind)>,
    ) -> Result<&mut Self, WarehouseError> {
        self.dims.push(DimSpec {
            name: name.to_string(),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            hierarchies: hierarchies
                .into_iter()
                .map(|(n, ls)| (n.to_string(), ls.into_iter().map(str::to_string).collect()))
                .collect(),
            groupby: groupby
                .into_iter()
                .map(|(c, k)| (c.to_string(), k))
                .collect(),
        });
        Ok(self)
    }

    /// Declares which table is the fact table.
    pub fn fact(&mut self, name: &str) -> Result<&mut Self, WarehouseError> {
        self.fact = Some(name.to_string());
        Ok(self)
    }

    /// Declares a measure that reads one fact column.
    pub fn measure_column(&mut self, name: &str, col: &str) -> Result<&mut Self, WarehouseError> {
        self.measures
            .push(MeasureSpec::Column(name.to_string(), col.to_string()));
        Ok(self)
    }

    /// Declares a measure that multiplies two fact columns
    /// (e.g. revenue = price × quantity).
    pub fn measure_product(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
    ) -> Result<&mut Self, WarehouseError> {
        self.measures.push(MeasureSpec::Product(
            name.to_string(),
            a.to_string(),
            b.to_string(),
        ));
        Ok(self)
    }

    fn resolve_col(&self, qualified: &str) -> Result<ColRef, WarehouseError> {
        let (t, c) = qualified.split_once('.').ok_or_else(|| {
            WarehouseError::InvalidEdge(format!("expected Table.Column, got {qualified}"))
        })?;
        let tid = *self
            .table_lookup
            .get(t)
            .ok_or_else(|| WarehouseError::UnknownTable(t.to_string()))?;
        let cidx = self.tables[tid]
            .col_index(c)
            .ok_or_else(|| WarehouseError::UnknownColumn {
                table: t.to_string(),
                column: c.to_string(),
            })?;
        Ok(ColRef::new(TableId(tid as u32), cidx as u32))
    }

    fn col_type(&self, r: ColRef) -> ValueType {
        self.tables[r.table.0 as usize]
            .column(r.col as usize)
            .value_type()
    }

    /// Validates everything and produces the immutable warehouse.
    pub fn finish(self) -> Result<Warehouse, WarehouseError> {
        let fact_name = self.fact.clone().ok_or(WarehouseError::NoFactTable)?;
        let fact_table = TableId(
            *self
                .table_lookup
                .get(&fact_name)
                .ok_or_else(|| WarehouseError::UnknownTable(fact_name.clone()))? as u32,
        );

        // Resolve dimensions first so edges can reference them by name.
        let mut dim_name_to_id = HashMap::new();
        let mut dimensions = Vec::with_capacity(self.dims.len());
        for (i, spec) in self.dims.iter().enumerate() {
            if dim_name_to_id
                .insert(spec.name.clone(), DimId(i as u32))
                .is_some()
            {
                return Err(WarehouseError::DuplicateName(spec.name.clone()));
            }
            let mut tables = Vec::with_capacity(spec.tables.len());
            for t in &spec.tables {
                let tid = *self
                    .table_lookup
                    .get(t)
                    .ok_or_else(|| WarehouseError::UnknownTable(t.clone()))?;
                tables.push(TableId(tid as u32));
            }
            let mut hierarchies = Vec::with_capacity(spec.hierarchies.len());
            for (hname, levels) in &spec.hierarchies {
                if levels.is_empty() {
                    return Err(WarehouseError::InvalidHierarchy(format!(
                        "{hname} has no levels"
                    )));
                }
                let levels = levels
                    .iter()
                    .map(|l| self.resolve_col(l))
                    .collect::<Result<Vec<_>, _>>()?;
                hierarchies.push(Hierarchy {
                    name: hname.clone(),
                    levels,
                });
            }
            let mut groupby_candidates = Vec::with_capacity(spec.groupby.len());
            for (col, kind) in &spec.groupby {
                let attr = self.resolve_col(col)?;
                let ty = self.col_type(attr);
                if *kind == AttrKind::Numerical && ty == ValueType::Str {
                    return Err(WarehouseError::InvalidHierarchy(format!(
                        "group-by candidate {col} declared numerical but has type {ty}"
                    )));
                }
                groupby_candidates.push(GroupByCandidate { attr, kind: *kind });
            }
            dimensions.push(Dimension {
                id: DimId(i as u32),
                name: spec.name.clone(),
                tables,
                hierarchies,
                groupby_candidates,
            });
        }

        // Resolve edges.
        let mut edges = Vec::with_capacity(self.edges.len());
        for (i, spec) in self.edges.iter().enumerate() {
            let child = self.resolve_col(&spec.child)?;
            let parent = self.resolve_col(&spec.parent)?;
            if self.col_type(child) != ValueType::Int || self.col_type(parent) != ValueType::Int {
                return Err(WarehouseError::InvalidEdge(format!(
                    "{} → {} must join integer key columns",
                    spec.child, spec.parent
                )));
            }
            if child.table == parent.table {
                return Err(WarehouseError::InvalidEdge(format!(
                    "self-edge on table is not supported: {} → {}",
                    spec.child, spec.parent
                )));
            }
            let dimension = match &spec.dimension {
                Some(name) => Some(
                    *dim_name_to_id
                        .get(name)
                        .ok_or_else(|| WarehouseError::UnknownDimension(name.clone()))?,
                ),
                None => None,
            };
            edges.push(FkEdge {
                id: EdgeId(i as u32),
                child,
                parent,
                role: spec.role.clone(),
                dimension,
            });
        }

        // Referential integrity: every non-null child key must exist among
        // the parent keys.
        if self.check_integrity {
            for e in &edges {
                let parent_col =
                    self.tables[e.parent.table.0 as usize].column(e.parent.col as usize);
                let mut parent_keys = HashSet::with_capacity(parent_col.len());
                for row in 0..parent_col.len() {
                    if let Some(k) = parent_col.get_int(row) {
                        parent_keys.insert(k);
                    }
                }
                let child_col = self.tables[e.child.table.0 as usize].column(e.child.col as usize);
                for row in 0..child_col.len() {
                    if let Some(k) = child_col.get_int(row) {
                        if !parent_keys.contains(&k) {
                            return Err(WarehouseError::BrokenForeignKey {
                                edge: format!(
                                    "{} → {}",
                                    self.edges[e.id.0 as usize].child,
                                    self.edges[e.id.0 as usize].parent
                                ),
                                missing_key: k,
                            });
                        }
                    }
                }
            }
        }

        // Adjacency lists.
        let n = self.tables.len();
        let mut edges_by_child = vec![Vec::new(); n];
        let mut edges_by_parent = vec![Vec::new(); n];
        for e in &edges {
            edges_by_child[e.child.table.0 as usize].push(e.id);
            edges_by_parent[e.parent.table.0 as usize].push(e.id);
        }

        // Measures must read fact columns.
        let mut measures = Vec::with_capacity(self.measures.len());
        for spec in &self.measures {
            let (name, expr) = match spec {
                MeasureSpec::Column(name, c) => {
                    let c = self.resolve_col(c)?;
                    (name.clone(), MeasureExpr::Column(c))
                }
                MeasureSpec::Product(name, a, b) => {
                    let a = self.resolve_col(a)?;
                    let b = self.resolve_col(b)?;
                    (name.clone(), MeasureExpr::Product(a, b))
                }
            };
            let cols = match &expr {
                MeasureExpr::Column(c) => vec![*c],
                MeasureExpr::Product(a, b) => vec![*a, *b],
            };
            for c in cols {
                if c.table != fact_table {
                    return Err(WarehouseError::InvalidEdge(format!(
                        "measure {name} reads a non-fact column"
                    )));
                }
            }
            measures.push(Measure { name, expr });
        }

        // Seal partially-filled column chunks: the warehouse is immutable
        // from here on, so the packed representation becomes final.
        let mut tables = self.tables;
        for t in &mut tables {
            t.freeze();
        }

        Ok(Warehouse {
            tables,
            schema: Schema {
                fact_table,
                edges,
                dimensions,
                measures,
                edges_by_child,
                edges_by_parent,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WarehouseBuilder {
        let mut b = WarehouseBuilder::new();
        b.table(
            "FACT",
            &[
                ("Id", ValueType::Int, false),
                ("PKey", ValueType::Int, false),
                ("Amount", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "P",
            &[
                ("PKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.row("P", vec![1i64.into(), "a".into()]).unwrap();
        b.row("FACT", vec![1i64.into(), 1i64.into(), 2.0.into()])
            .unwrap();
        b.edge("FACT.PKey", "P.PKey", None, Some("Product"))
            .unwrap();
        b.dimension("Product", &["P"], vec![], vec![]).unwrap();
        b.fact("FACT").unwrap();
        b
    }

    #[test]
    fn happy_path_builds() {
        let wh = base().finish().unwrap();
        assert_eq!(wh.fact_rows(), 1);
        assert_eq!(wh.schema().edges().len(), 1);
        assert_eq!(wh.schema().dimensions().len(), 1);
    }

    #[test]
    fn missing_fact_table_rejected() {
        let mut b = WarehouseBuilder::new();
        b.table("T", &[("A", ValueType::Int, false)]).unwrap();
        assert!(matches!(b.finish(), Err(WarehouseError::NoFactTable)));
    }

    #[test]
    fn broken_fk_detected() {
        let mut b = base();
        // Fact row pointing at a product key that does not exist.
        b.row("FACT", vec![2i64.into(), 99i64.into(), 1.0.into()])
            .unwrap();
        assert!(matches!(
            b.finish(),
            Err(WarehouseError::BrokenForeignKey {
                missing_key: 99,
                ..
            })
        ));
    }

    #[test]
    fn non_integer_edge_rejected() {
        let mut b = base();
        b.edge("FACT.Amount", "P.PKey", None, None).unwrap();
        assert!(matches!(b.finish(), Err(WarehouseError::InvalidEdge(_))));
    }

    #[test]
    fn unknown_dimension_on_edge_rejected() {
        let mut b = base();
        b.edge("FACT.PKey", "P.PKey", Some("Other"), Some("Nope"))
            .unwrap();
        assert!(matches!(
            b.finish(),
            Err(WarehouseError::UnknownDimension(_))
        ));
    }

    #[test]
    fn measure_must_be_on_fact() {
        let mut b = base();
        b.measure_column("Bad", "P.PKey").unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn numerical_groupby_on_string_rejected() {
        let mut b = base();
        b.dimension(
            "Product2",
            &["P"],
            vec![],
            vec![("P.Name", AttrKind::Numerical)],
        )
        .unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn hierarchy_resolution() {
        let mut b = WarehouseBuilder::new();
        b.table(
            "FACT",
            &[
                ("Id", ValueType::Int, false),
                ("GKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "GEO",
            &[
                ("GKey", ValueType::Int, false),
                ("Country", ValueType::Str, true),
                ("State", ValueType::Str, true),
                ("City", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.row(
            "GEO",
            vec![1i64.into(), "US".into(), "CA".into(), "San Jose".into()],
        )
        .unwrap();
        b.row("FACT", vec![1i64.into(), 1i64.into()]).unwrap();
        b.edge("FACT.GKey", "GEO.GKey", None, Some("Geo")).unwrap();
        b.dimension(
            "Geo",
            &["GEO"],
            vec![("Location", vec!["GEO.Country", "GEO.State", "GEO.City"])],
            vec![("GEO.State", AttrKind::Categorical)],
        )
        .unwrap();
        b.fact("FACT").unwrap();
        let wh = b.finish().unwrap();
        let dim = wh.schema().dimension_by_name("Geo").unwrap();
        assert_eq!(dim.hierarchies.len(), 1);
        let state = wh.col_ref("GEO", "State").unwrap();
        let country = wh.col_ref("GEO", "Country").unwrap();
        let h = dim.hierarchy_containing(state).unwrap();
        assert_eq!(h.parent_level(state), Some(country));
    }
}
