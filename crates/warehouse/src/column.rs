//! Columnar storage with dictionary encoding for strings.
//!
//! Strings are dictionary-encoded: each column keeps a sorted-insertion
//! dictionary of distinct values plus a `u32` code per row. This serves two
//! purposes: (a) compact storage, and (b) the set of distinct attribute
//! values *is* the set of "virtual documents" that the KDAP text index
//! indexes (the paper indexes attribute instances, not tuples — §3).
//!
//! Physically, codes live in bit-packed fixed-size chunks
//! ([`crate::chunk::PackedCodes`]) and numeric columns in dense vectors
//! with lazy null bitmaps ([`crate::chunk::NullableVec`]). Everything
//! outside this module reads columns through the accessor API below —
//! `get`/`get_int`/`get_float`/`get_code`/`for_each_code` — never through
//! raw vectors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::chunk::{NullableVec, PackedCodes};
use crate::error::WarehouseError;
use crate::value::{Value, ValueType};

/// Dictionary of distinct strings for one column.
#[derive(Debug, Default, Clone)]
pub struct StrDict {
    values: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, u32>,
}

impl StrDict {
    /// Interns `s`, returning its stable code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.lookup.get(s) {
            return code;
        }
        let arc: Arc<str> = Arc::from(s);
        let code = self.values.len() as u32;
        self.values.push(arc.clone());
        self.lookup.insert(arc, code);
        code
    }

    /// Looks up the code of a string without interning it.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Returns the string for `code`.
    pub fn resolve(&self, code: u32) -> Option<&Arc<str>> {
        self.values.get(code as usize)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Arc<str>)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// Approximate heap bytes: string payloads plus per-entry bookkeeping
    /// (one `Arc<str>` in the vector, one in the lookup map, a code).
    pub fn heap_bytes(&self) -> usize {
        let payload: usize = self.values.iter().map(|s| s.len()).sum();
        let entry = 2 * std::mem::size_of::<Arc<str>>() + std::mem::size_of::<u32>();
        payload + self.values.len() * entry
    }
}

/// The physical data of one column. External code should prefer the
/// [`Column`] accessors; the variants are exposed for type dispatch only.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Nullable 64-bit integers.
    Int(NullableVec<i64>),
    /// Nullable 64-bit floats.
    Float(NullableVec<f64>),
    /// Dictionary-encoded nullable strings.
    Str {
        /// Distinct values of the column.
        dict: StrDict,
        /// Per-row dictionary codes, bit-packed in chunks.
        codes: PackedCodes,
    },
}

/// One named, typed column of a table.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
    /// Whether the full-text index should index this column's distinct
    /// values as virtual documents. Only meaningful for `Str` columns.
    searchable: bool,
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(name: impl Into<String>, ty: ValueType, searchable: bool) -> Self {
        let data = match ty {
            ValueType::Int => ColumnData::Int(NullableVec::new()),
            ValueType::Float => ColumnData::Float(NullableVec::new()),
            ValueType::Str => ColumnData::Str {
                dict: StrDict::default(),
                codes: PackedCodes::new(),
            },
        };
        Column {
            name: name.into(),
            data,
            searchable,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn value_type(&self) -> ValueType {
        match &self.data {
            ColumnData::Int(_) => ValueType::Int,
            ColumnData::Float(_) => ValueType::Float,
            ColumnData::Str { .. } => ValueType::Str,
        }
    }

    /// Whether the column participates in full-text search.
    pub fn is_searchable(&self) -> bool {
        self.searchable && matches!(self.data, ColumnData::Str { .. })
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one value, checking the type.
    pub fn push(&mut self, value: Value) -> Result<(), WarehouseError> {
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(Some(x)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(x)) => v.push(Some(x)),
            // Integers widen silently into float columns; measure data is
            // frequently generated as integers (quantities).
            (ColumnData::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = dict.intern(&s);
                codes.push(Some(code));
            }
            (ColumnData::Str { codes, .. }, Value::Null) => codes.push(None),
            (_, v) => {
                return Err(WarehouseError::TypeMismatch {
                    column: self.name.clone(),
                    expected: self.value_type(),
                    got: v.value_type(),
                })
            }
        }
        Ok(())
    }

    /// Seals partially-filled chunks and trims spare capacity. Called once
    /// when a warehouse build completes; reads work identically before
    /// and after.
    pub fn freeze(&mut self) {
        match &mut self.data {
            ColumnData::Int(v) => v.freeze(),
            ColumnData::Float(v) => v.freeze(),
            ColumnData::Str { codes, .. } => codes.freeze(),
        }
    }

    /// Returns the value at `row` (NULL when out of bounds is an error by
    /// contract; callers index within `0..len()`).
    pub fn get(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v.get(row).map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v.get(row).map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Str { dict, codes } => match codes.get(row) {
                // Infallible: stored codes are handed out by this column's
                // own dictionary during construction.
                #[allow(clippy::expect_used)]
                Some(c) => Value::Str(dict.resolve(c).expect("valid code").clone()),
                None => Value::Null,
            },
        }
    }

    /// Integer value at `row`, if the column is Int and non-null.
    pub fn get_int(&self, row: usize) -> Option<i64> {
        match &self.data {
            ColumnData::Int(v) => v.get(row),
            _ => None,
        }
    }

    /// Float value at `row` (Int columns widen), if non-null.
    pub fn get_float(&self, row: usize) -> Option<f64> {
        match &self.data {
            ColumnData::Float(v) => v.get(row),
            ColumnData::Int(v) => v.get(row).map(|x| x as f64),
            _ => None,
        }
    }

    /// Dictionary code at `row` for string columns.
    pub fn get_code(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Str { codes, .. } => codes.get(row),
            _ => None,
        }
    }

    /// Visits `(row, code)` over the whole column in row order, decoding
    /// packed chunks one word at a time (several codes per word load).
    /// No-op for numeric columns.
    pub fn for_each_code<F: FnMut(usize, Option<u32>)>(&self, f: F) {
        if let ColumnData::Str { codes, .. } = &self.data {
            codes.for_each(0..codes.len(), f);
        }
    }

    /// Bulk-decodes a string column's codes into `out` (cleared first):
    /// one `u32` per row, NULL rows as [`crate::kernel::NULL_CODE`],
    /// decoded through the dispatched vectorized kernel. Returns `false`
    /// (leaving `out` empty) for numeric columns.
    pub fn unpack_codes_into(&self, out: &mut Vec<u32>) -> bool {
        match &self.data {
            ColumnData::Str { codes, .. } => {
                codes.unpack_all(out);
                true
            }
            _ => {
                out.clear();
                false
            }
        }
    }

    /// Bulk-decodes a numeric column into `out` (cleared first): one `f64`
    /// per row (Int columns widen, matching [`Column::get_float`]), NULL
    /// rows as NaN. Returns `false` (leaving `out` empty) for string
    /// columns. NaN is a faithful NULL stand-in for the aggregation
    /// kernels: stored NaN and NULL are both skipped by bucket and domain
    /// logic, exactly as with per-row `get_float`.
    pub fn unpack_floats_into(&self, out: &mut Vec<f64>) -> bool {
        out.clear();
        match &self.data {
            ColumnData::Float(v) => {
                out.extend_from_slice(v.values_slice());
            }
            ColumnData::Int(v) => {
                out.extend(v.values_slice().iter().map(|&x| x as f64));
            }
            ColumnData::Str { .. } => return false,
        }
        let nulls = match &self.data {
            ColumnData::Float(v) => v.null_bitmap(),
            ColumnData::Int(v) => v.null_bitmap(),
            ColumnData::Str { .. } => None,
        };
        if let Some(bitmap) = nulls {
            crate::kernel::for_each_null(bitmap, 0..out.len(), |i| out[i] = f64::NAN);
        }
        true
    }

    /// The string dictionary, for string columns.
    pub fn dict(&self) -> Option<&StrDict> {
        match &self.data {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Distinct-code count of a dictionary-encoded column, `None` for
    /// numeric columns. This is the single source of truth for both the
    /// optimizer's distinct estimate and the dense/hash group-by kernel
    /// cutoff: dense accumulator arrays are sized by exactly this value.
    ///
    /// Sourced from the packed-chunk metadata (largest code ever stored);
    /// codes are handed out densely by this column's own dictionary, so
    /// `max_code + 1 == dict.len()` whenever any row is non-null.
    pub fn cardinality(&self) -> Option<usize> {
        match &self.data {
            ColumnData::Str { dict, codes } => Some(
                codes
                    .max_code()
                    .map_or_else(|| dict.len(), |m| m as usize + 1),
            ),
            _ => None,
        }
    }

    /// Heap bytes held by this column's physical storage (packed chunks,
    /// null bitmaps, dictionary), from the chunk metadata.
    pub fn heap_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.heap_bytes(),
            ColumnData::Float(v) => v.heap_bytes(),
            ColumnData::Str { dict, codes } => dict.heap_bytes() + codes.heap_bytes(),
        }
    }

    /// Raw access to the physical data (type dispatch only; row access
    /// goes through the accessors).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Scans for all row indices whose string code is in `codes`.
    ///
    /// `codes` should be small (it comes from a hit group); rows are
    /// scanned with the word-at-a-time decoder, which is the dominant
    /// cost either way.
    pub fn rows_with_codes(&self, wanted: &[u32]) -> Vec<usize> {
        let ColumnData::Str { codes, .. } = &self.data else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if wanted.is_empty() {
            return out;
        }
        if wanted.len() <= 4 {
            codes.for_each(0..codes.len(), |row, c| {
                if let Some(c) = c {
                    if wanted.contains(&c) {
                        out.push(row);
                    }
                }
            });
        } else {
            let set: std::collections::HashSet<u32> = wanted.iter().copied().collect();
            codes.for_each(0..codes.len(), |row, c| {
                if let Some(c) = c {
                    if set.contains(&c) {
                        out.push(row);
                    }
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::CHUNK_ROWS;

    #[test]
    fn dict_interning_is_stable() {
        let mut d = StrDict::default();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        let a2 = d.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(a).unwrap().as_ref(), "alpha");
        assert_eq!(d.code_of("beta"), Some(b));
        assert_eq!(d.code_of("gamma"), None);
    }

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new("city", ValueType::Str, true);
        c.push(Value::from("Columbus")).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::from("Seattle")).unwrap();
        c.push(Value::from("Columbus")).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0).as_str(), Some("Columbus"));
        assert!(c.get(1).is_null());
        assert_eq!(c.get_code(0), c.get_code(3));
        assert_eq!(c.dict().unwrap().len(), 2);
        assert_eq!(c.cardinality(), Some(2));
    }

    #[test]
    fn roundtrip_survives_freeze_and_chunk_seal() {
        let mut c = Column::new("city", ValueType::Str, true);
        let names = ["Columbus", "Seattle", "Berlin", "Osaka", "Quito"];
        let n = CHUNK_ROWS + 777;
        for i in 0..n {
            if i % 53 == 0 {
                c.push(Value::Null).unwrap();
            } else {
                c.push(Value::from(names[i % names.len()])).unwrap();
            }
        }
        c.freeze();
        assert_eq!(c.len(), n);
        assert_eq!(c.cardinality(), Some(5));
        for i in [0, 1, 52, 53, CHUNK_ROWS - 1, CHUNK_ROWS, n - 1] {
            if i % 53 == 0 {
                assert!(c.get(i).is_null(), "row {i}");
            } else {
                assert_eq!(c.get(i).as_str(), Some(names[i % names.len()]), "row {i}");
            }
        }
        // Packed footprint beats the unpacked Vec<Option<u32>> layout.
        assert!(c.heap_bytes() < n * std::mem::size_of::<Option<u32>>());
    }

    #[test]
    fn for_each_code_matches_get_code() {
        let mut c = Column::new("s", ValueType::Str, true);
        for i in 0..1000usize {
            if i % 7 == 0 {
                c.push(Value::Null).unwrap();
            } else {
                c.push(Value::from(format!("v{}", i % 19).as_str()))
                    .unwrap();
            }
        }
        c.freeze();
        let mut scanned = Vec::new();
        c.for_each_code(|row, code| scanned.push((row, code)));
        assert_eq!(scanned.len(), 1000);
        for (row, code) in scanned {
            assert_eq!(code, c.get_code(row), "row {row}");
        }
    }

    #[test]
    fn unpack_codes_matches_get_code() {
        let mut c = Column::new("s", ValueType::Str, true);
        for i in 0..(CHUNK_ROWS + 100) {
            if i % 11 == 0 {
                c.push(Value::Null).unwrap();
            } else {
                c.push(Value::from(format!("v{}", i % 300).as_str()))
                    .unwrap();
            }
        }
        c.freeze();
        let mut codes = Vec::new();
        assert!(c.unpack_codes_into(&mut codes));
        assert_eq!(codes.len(), c.len());
        for (i, &got) in codes.iter().enumerate() {
            match c.get_code(i) {
                Some(code) => assert_eq!(got, code, "row {i}"),
                None => assert_eq!(got, crate::kernel::NULL_CODE, "row {i}"),
            }
        }
        let mut floats = Vec::new();
        assert!(!c.unpack_floats_into(&mut floats));
        assert!(floats.is_empty());
    }

    #[test]
    fn unpack_floats_matches_get_float() {
        let mut f = Column::new("price", ValueType::Float, false);
        let mut q = Column::new("qty", ValueType::Int, false);
        for i in 0..500i64 {
            if i % 9 == 0 {
                f.push(Value::Null).unwrap();
                q.push(Value::Null).unwrap();
            } else {
                f.push(Value::Float(i as f64 * 1.5)).unwrap();
                q.push(Value::Int(i)).unwrap();
            }
        }
        for c in [&f, &q] {
            let mut out = Vec::new();
            assert!(c.unpack_floats_into(&mut out));
            assert_eq!(out.len(), 500);
            for (i, &got) in out.iter().enumerate() {
                match c.get_float(i) {
                    Some(v) => assert_eq!(got.to_bits(), v.to_bits(), "row {i}"),
                    None => assert!(got.is_nan(), "row {i}"),
                }
            }
        }
        let mut codes = Vec::new();
        assert!(!f.unpack_codes_into(&mut codes));
    }

    #[test]
    fn cardinality_is_none_for_numeric_columns() {
        let mut c = Column::new("qty", ValueType::Int, false);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.cardinality(), None);
        let f = Column::new("price", ValueType::Float, false);
        assert_eq!(f.cardinality(), None);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new("qty", ValueType::Int, false);
        assert!(c.push(Value::from("oops")).is_err());
        assert!(c.push(Value::Int(3)).is_ok());
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new("price", ValueType::Float, false);
        c.push(Value::Int(3)).unwrap();
        c.push(Value::Float(1.5)).unwrap();
        assert_eq!(c.get_float(0), Some(3.0));
        assert_eq!(c.get_float(1), Some(1.5));
    }

    #[test]
    fn rows_with_codes_finds_matches() {
        let mut c = Column::new("name", ValueType::Str, true);
        for s in ["a", "b", "a", "c", "b", "a"] {
            c.push(Value::from(s)).unwrap();
        }
        let code_a = c.dict().unwrap().code_of("a").unwrap();
        let code_c = c.dict().unwrap().code_of("c").unwrap();
        assert_eq!(c.rows_with_codes(&[code_a]), vec![0, 2, 5]);
        assert_eq!(c.rows_with_codes(&[code_a, code_c]), vec![0, 2, 3, 5]);
        assert!(c.rows_with_codes(&[]).is_empty());
    }

    #[test]
    fn heap_bytes_counts_numeric_storage() {
        let mut c = Column::new("qty", ValueType::Int, false);
        for i in 0..100 {
            c.push(Value::Int(i)).unwrap();
        }
        c.freeze();
        // 8 bytes per row, no null bitmap: half the Vec<Option<i64>> cost.
        assert_eq!(c.heap_bytes(), 100 * 8);
    }

    #[test]
    fn searchable_only_applies_to_strings() {
        let c = Column::new("qty", ValueType::Int, true);
        assert!(!c.is_searchable());
        let c = Column::new("name", ValueType::Str, true);
        assert!(c.is_searchable());
        let c = Column::new("name", ValueType::Str, false);
        assert!(!c.is_searchable());
    }
}
