//! Warehouse specification files: a small declarative format that wires
//! CSV tables into a full star/snowflake schema, so KDAP can be pointed
//! at external data with no Rust code (used by the `kdap` CLI).
//!
//! ```text
//! # kdap warehouse spec
//! table PRODUCT product.csv
//! table SALES   sales.csv
//! fact SALES
//! edge SALES.PKey PRODUCT.PKey dim=Product
//! edge SALES.BuyerKey ACCOUNT.AKey role=Buyer dim=Customer
//! dimension Product tables=PRODUCT \
//!     hierarchy=Categories:PRODUCT.Category>PRODUCT.Name \
//!     groupby=PRODUCT.Category:cat,PRODUCT.Price:num
//! measure Revenue = SALES.Price * SALES.Qty
//! measure Units   = SALES.Qty
//! ```
//!
//! * one directive per line; `#` starts a comment; a trailing `\`
//!   continues a line;
//! * CSV files use the typed-header format of [`crate::csv`];
//! * file contents are supplied through a resolver callback, so the
//!   parser stays I/O-free and testable.

use crate::builder::WarehouseBuilder;
use crate::catalog::Warehouse;
use crate::csv::load_csv_table;
use crate::error::WarehouseError;
use crate::schema::AttrKind;

/// Parses `spec` and builds the warehouse, fetching each referenced CSV
/// through `resolve` (typically `std::fs::read_to_string` relative to the
/// spec's directory).
pub fn load_spec(
    spec: &str,
    mut resolve: impl FnMut(&str) -> Result<String, String>,
) -> Result<Warehouse, WarehouseError> {
    let mut b = WarehouseBuilder::new();
    let bad = |line_no: usize, msg: &str| {
        WarehouseError::InvalidEdge(format!("spec line {line_no}: {msg}"))
    };

    for (line_no, raw) in logical_lines(spec) {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(directive) = parts.next() else {
            continue;
        };
        match directive {
            "table" => {
                let name = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "table needs a name"))?;
                let file = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "table needs a csv file"))?;
                let csv =
                    resolve(file).map_err(|e| bad(line_no, &format!("cannot read {file}: {e}")))?;
                load_csv_table(&mut b, name, &csv)?;
            }
            "fact" => {
                let name = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "fact needs a table"))?;
                b.fact(name)?;
            }
            "edge" => {
                let child = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "edge needs child col"))?;
                let parent = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "edge needs parent col"))?;
                let mut role = None;
                let mut dim = None;
                for opt in parts {
                    if let Some(v) = opt.strip_prefix("role=") {
                        role = Some(v);
                    } else if let Some(v) = opt.strip_prefix("dim=") {
                        dim = Some(v);
                    } else {
                        return Err(bad(line_no, &format!("unknown edge option {opt}")));
                    }
                }
                b.edge(child, parent, role, dim)?;
            }
            "dimension" => {
                let name = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "dimension needs a name"))?;
                let mut tables: Vec<&str> = Vec::new();
                let mut hierarchies: Vec<(String, Vec<String>)> = Vec::new();
                let mut groupby: Vec<(String, AttrKind)> = Vec::new();
                for opt in parts {
                    if let Some(v) = opt.strip_prefix("tables=") {
                        tables.extend(v.split(','));
                    } else if let Some(v) = opt.strip_prefix("hierarchy=") {
                        let (hname, levels) = v
                            .split_once(':')
                            .ok_or_else(|| bad(line_no, "hierarchy needs name:levels"))?;
                        hierarchies.push((
                            hname.to_string(),
                            levels.split('>').map(str::to_string).collect(),
                        ));
                    } else if let Some(v) = opt.strip_prefix("groupby=") {
                        for g in v.split(',') {
                            let (col, kind) = g
                                .rsplit_once(':')
                                .ok_or_else(|| bad(line_no, "groupby needs col:cat|num"))?;
                            let kind = match kind {
                                "cat" => AttrKind::Categorical,
                                "num" => AttrKind::Numerical,
                                other => {
                                    return Err(bad(
                                        line_no,
                                        &format!("groupby kind must be cat|num, got {other}"),
                                    ))
                                }
                            };
                            groupby.push((col.to_string(), kind));
                        }
                    } else {
                        return Err(bad(line_no, &format!("unknown dimension option {opt}")));
                    }
                }
                if tables.is_empty() {
                    return Err(bad(line_no, "dimension needs tables=…"));
                }
                let h: Vec<(&str, Vec<&str>)> = hierarchies
                    .iter()
                    .map(|(n, ls)| (n.as_str(), ls.iter().map(String::as_str).collect()))
                    .collect();
                let g: Vec<(&str, AttrKind)> =
                    groupby.iter().map(|(c, k)| (c.as_str(), *k)).collect();
                b.dimension(name, &tables, h, g)?;
            }
            "measure" => {
                // measure NAME = A [* B]
                let name = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "measure needs a name"))?;
                let eq = parts.next();
                if eq != Some("=") {
                    return Err(bad(line_no, "measure syntax: NAME = Col [* Col]"));
                }
                let a = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "measure needs a column"))?;
                match (parts.next(), parts.next()) {
                    (None, _) => {
                        b.measure_column(name, a)?;
                    }
                    (Some("*"), Some(col_b)) => {
                        b.measure_product(name, a, col_b)?;
                    }
                    _ => return Err(bad(line_no, "measure syntax: NAME = Col [* Col]")),
                }
            }
            other => return Err(bad(line_no, &format!("unknown directive {other}"))),
        }
    }
    b.finish()
}

/// Joins `\`-continued lines, yielding `(first_line_number, text)`.
fn logical_lines(spec: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut buffer = String::new();
    let mut start_line = 0usize;
    for (i, line) in spec.lines().enumerate() {
        if buffer.is_empty() {
            start_line = i + 1;
        }
        let trimmed = line.trim_end();
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            buffer.push_str(stripped.trim_end());
            buffer.push(' ');
        } else {
            buffer.push_str(trimmed);
            out.push((start_line, std::mem::take(&mut buffer)));
        }
    }
    if !buffer.is_empty() {
        out.push((start_line, buffer));
    }
    out
}

/// Renders the complete schema of `wh` back into spec syntax, referencing
/// one CSV file per table (named `<table>.csv`). Together with
/// [`crate::csv::export_table`] this makes any warehouse — including the
/// generated demo ones — round-trippable through the spec format.
pub fn export_spec(wh: &crate::catalog::Warehouse) -> String {
    let schema = wh.schema();
    let mut out = String::from("# kdap warehouse spec (generated)\n");
    for t in wh.tables() {
        out.push_str(&format!("table {} {}.csv\n", t.name(), t.name()));
    }
    out.push_str(&format!("fact {}\n", wh.table(schema.fact_table()).name()));
    for e in schema.edges() {
        out.push_str(&format!(
            "edge {} {}{}{}\n",
            wh.col_name(e.child),
            wh.col_name(e.parent),
            e.role
                .as_ref()
                .map(|r| format!(" role={r}"))
                .unwrap_or_default(),
            e.dimension
                .map(|d| format!(" dim={}", schema.dimension(d).name))
                .unwrap_or_default(),
        ));
    }
    for d in schema.dimensions() {
        let tables: Vec<&str> = d.tables.iter().map(|&t| wh.table(t).name()).collect();
        out.push_str(&format!("dimension {} tables={}", d.name, tables.join(",")));
        for h in &d.hierarchies {
            let levels: Vec<String> = h.levels.iter().map(|&l| wh.col_name(l)).collect();
            out.push_str(&format!(" hierarchy={}:{}", h.name, levels.join(">")));
        }
        if !d.groupby_candidates.is_empty() {
            let gs: Vec<String> = d
                .groupby_candidates
                .iter()
                .map(|g| {
                    format!(
                        "{}:{}",
                        wh.col_name(g.attr),
                        match g.kind {
                            AttrKind::Categorical => "cat",
                            AttrKind::Numerical => "num",
                        }
                    )
                })
                .collect();
            out.push_str(&format!(" groupby={}", gs.join(",")));
        }
        out.push('\n');
    }
    for m in schema.measures() {
        match &m.expr {
            crate::schema::MeasureExpr::Column(c) => {
                out.push_str(&format!("measure {} = {}\n", m.name, wh.col_name(*c)))
            }
            crate::schema::MeasureExpr::Product(a, b) => out.push_str(&format!(
                "measure {} = {} * {}\n",
                m.name,
                wh.col_name(*a),
                wh.col_name(*b)
            )),
        }
    }
    out
}

/// Persists the warehouse as `warehouse.spec` plus one CSV per table
/// inside `dir` (created if absent) — loadable by [`load_warehouse`] or
/// `kdap --spec <dir>/warehouse.spec`.
pub fn save_warehouse(
    wh: &crate::catalog::Warehouse,
    dir: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("warehouse.spec"), export_spec(wh))?;
    for t in wh.tables() {
        let csv = crate::csv::export_table(wh, t.name())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(dir.join(format!("{}.csv", t.name())), csv)?;
    }
    Ok(())
}

/// Loads a warehouse previously written by [`save_warehouse`].
pub fn load_warehouse(dir: &std::path::Path) -> Result<crate::catalog::Warehouse, WarehouseError> {
    let spec = std::fs::read_to_string(dir.join("warehouse.spec"))
        .map_err(|e| WarehouseError::InvalidEdge(format!("cannot read spec: {e}")))?;
    load_spec(&spec, |file| {
        std::fs::read_to_string(dir.join(file)).map_err(|e| e.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(file: &str) -> Result<String, String> {
        match file {
            "sales.csv" => Ok("Id:int,PKey:int,Qty:int,Price:float\n\
                               1,1,2,10\n2,2,1,5\n3,1,1,10\n"
                .into()),
            "product.csv" => Ok("PKey:int,Name:str:text,Category:str:text,Price:float\n\
                                 1,Widget,Tools,10\n2,Gadget,Toys,5\n"
                .into()),
            other => Err(format!("no such file {other}")),
        }
    }

    const SPEC: &str = "\
# demo spec
table PRODUCT product.csv
table SALES sales.csv
fact SALES
edge SALES.PKey PRODUCT.PKey dim=Product
dimension Product tables=PRODUCT \\
    hierarchy=Cats:PRODUCT.Category>PRODUCT.Name \\
    groupby=PRODUCT.Category:cat,PRODUCT.Price:num
measure Revenue = SALES.Price * SALES.Qty
measure Units = SALES.Qty
";

    #[test]
    fn full_spec_roundtrip() {
        let wh = load_spec(SPEC, resolver).unwrap();
        assert_eq!(wh.fact_rows(), 3);
        assert_eq!(wh.schema().dimensions().len(), 1);
        assert_eq!(wh.schema().measures().len(), 2);
        let dim = wh.schema().dimension_by_name("Product").unwrap();
        assert_eq!(dim.hierarchies.len(), 1);
        assert_eq!(dim.groupby_candidates.len(), 2);
        let m = wh.schema().measure_by_name("Revenue").unwrap().clone();
        assert_eq!(wh.eval_measure(&m, 0), Some(20.0));
    }

    #[test]
    fn continuation_lines_join() {
        let lines = logical_lines("a \\\nb\nc");
        assert_eq!(lines, vec![(1, "a b".to_string()), (3, "c".to_string())]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = load_spec("bogus directive\n", resolver).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = load_spec("table X missing.csv\nfact X\n", resolver).unwrap_err();
        assert!(err.to_string().contains("missing.csv"), "{err}");
        let err = load_spec("measure M := X\n", resolver).unwrap_err();
        assert!(err.to_string().contains("measure"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let wh = load_spec(
            "# just a fact table\n\ntable SALES sales.csv  # inline comment\nfact SALES\n",
            resolver,
        )
        .unwrap();
        assert_eq!(wh.fact_rows(), 3);
    }

    #[test]
    fn bad_groupby_kind_rejected() {
        let spec = "table PRODUCT product.csv\ntable SALES sales.csv\nfact SALES\n\
                    edge SALES.PKey PRODUCT.PKey dim=P\n\
                    dimension P tables=PRODUCT groupby=PRODUCT.Name:fancy\n";
        let err = load_spec(spec, resolver).unwrap_err();
        assert!(err.to_string().contains("cat|num"), "{err}");
    }
}
