//! Property-based tests for the storage layer.

use proptest::prelude::*;

use kdap_warehouse::{StrDict, Table, Value, ValueType};

proptest! {
    /// Interning any sequence of strings: codes round-trip and the
    /// dictionary size equals the number of distinct inputs.
    #[test]
    fn dict_roundtrip(words in proptest::collection::vec("[a-z]{0,8}", 0..50)) {
        let mut dict = StrDict::default();
        let codes: Vec<u32> = words.iter().map(|w| dict.intern(w)).collect();
        for (w, c) in words.iter().zip(&codes) {
            prop_assert_eq!(dict.resolve(*c).unwrap().as_ref(), w.as_str());
            prop_assert_eq!(dict.code_of(w), Some(*c));
        }
        let mut distinct = words.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// Pushing typed rows and reading them back is lossless.
    #[test]
    fn table_roundtrip(rows in proptest::collection::vec(
        (any::<i64>(), -1.0e9..1.0e9f64, "[ -~]{0,12}", any::<bool>()), 0..40)
    ) {
        let mut t = Table::new("T", &[
            ("I", ValueType::Int, false),
            ("F", ValueType::Float, false),
            ("S", ValueType::Str, true),
        ]).unwrap();
        for (i, f, s, null_str) in &rows {
            let sv = if *null_str { Value::Null } else { Value::from(s.as_str()) };
            t.push_row(vec![Value::Int(*i), Value::Float(*f), sv]).unwrap();
        }
        prop_assert_eq!(t.nrows(), rows.len());
        for (r, (i, f, s, null_str)) in rows.iter().enumerate() {
            let row = t.row(r);
            prop_assert_eq!(row[0].as_int(), Some(*i));
            prop_assert_eq!(row[1].as_float(), Some(*f));
            if *null_str {
                prop_assert!(row[2].is_null());
            } else {
                prop_assert_eq!(row[2].as_str(), Some(s.as_str()));
            }
            let _ = (i, f, s);
        }
    }

    /// rows_with_codes returns exactly the rows whose value is selected.
    #[test]
    fn rows_with_codes_matches_scan(
        values in proptest::collection::vec(0u8..6, 1..60),
        wanted in proptest::collection::vec(0u8..6, 0..4),
    ) {
        let mut t = Table::new("T", &[("S", ValueType::Str, true)]).unwrap();
        for v in &values {
            t.push_row(vec![Value::from(format!("v{v}"))]).unwrap();
        }
        let col = t.column(0);
        let dict = col.dict().unwrap();
        let codes: Vec<u32> = wanted
            .iter()
            .filter_map(|v| dict.code_of(&format!("v{v}")))
            .collect();
        let got = col.rows_with_codes(&codes);
        let expect: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| wanted.contains(v))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expect);
    }
}
