//! Criterion micro-benchmarks for every pipeline stage the paper touches:
//! text search, candidate generation, ranking, subspace materialization,
//! aggregation, facet construction, and the Algorithm 2 interval merge
//! (whose < 5 ms / 500 iterations claim E7 also checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kdap_core::facet::{merge_intervals, AnnealConfig};
use kdap_core::{
    explore, generate_star_nets, materialize, rank_star_nets, GenConfig, Kdap, RankMethod,
};
use kdap_datagen::{build_aw_online, Scale};
use kdap_query::{group_by_categorical, AggFunc, JoinIndex, RowSet};
use kdap_textindex::{SearchOptions, TextIndex};

fn session() -> Kdap {
    Kdap::builder(build_aw_online(Scale::full(), 42).expect("valid"))
        .build()
        .expect("measure")
}

fn bench_textindex(c: &mut Criterion) {
    let kdap = session();
    let index = kdap.text_index();
    let opts = SearchOptions::default();
    let mut g = c.benchmark_group("textindex");
    g.bench_function("keyword_california", |b| {
        b.iter(|| black_box(index.search_keyword(black_box("california"), &opts)))
    });
    g.bench_function("keyword_prefix_mount", |b| {
        b.iter(|| black_box(index.search_keyword(black_box("mount"), &opts)))
    });
    g.bench_function("phrase_mountain_bikes", |b| {
        b.iter(|| black_box(index.search_phrase(black_box(&["mountain", "bikes"]), &opts)))
    });
    g.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let wh = build_aw_online(Scale::full(), 42).expect("valid");
    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.bench_function("text_index_build", |b| {
        b.iter(|| black_box(TextIndex::build(black_box(&wh))))
    });
    g.bench_function("join_index_build", |b| {
        b.iter(|| black_box(JoinIndex::build(black_box(&wh))))
    });
    g.finish();
}

fn bench_differentiate(c: &mut Criterion) {
    let kdap = session();
    let wh = kdap.warehouse();
    let index = kdap.text_index();
    let gen_cfg = GenConfig::default();
    let mut g = c.benchmark_group("differentiate");
    for query in [
        "California",
        "California Mountain Bikes",
        "Sydney Helmet Discount",
    ] {
        g.bench_with_input(BenchmarkId::new("generate", query), &query, |b, q| {
            let keywords: Vec<&str> = q.split_whitespace().collect();
            b.iter(|| black_box(generate_star_nets(wh, index, &keywords, &gen_cfg)))
        });
    }
    let keywords = ["california", "mountain", "bikes"];
    let nets = generate_star_nets(wh, index, &keywords, &gen_cfg);
    for method in RankMethod::ALL {
        g.bench_with_input(BenchmarkId::new("rank", method.label()), &method, |b, m| {
            b.iter(|| black_box(rank_star_nets(nets.clone(), *m)))
        });
    }
    g.finish();
}

fn bench_explore(c: &mut Criterion) {
    let kdap = session();
    let ranked = kdap.interpret("California Mountain Bikes");
    let net = &ranked[0].net;
    let mut g = c.benchmark_group("explore");
    g.sample_size(20);
    g.bench_function("materialize_subspace", |b| {
        b.iter(|| black_box(materialize(kdap.warehouse(), kdap.join_index(), net)))
    });
    g.bench_function("facet_construction", |b| {
        b.iter(|| {
            black_box(explore(
                kdap.warehouse(),
                kdap.join_index(),
                net,
                kdap.measure(),
                kdap.facet_config(),
            ))
        })
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("facet_construction_threads", threads),
            &threads,
            |b, &t| {
                let exec = kdap_query::ExecConfig::with_threads(t);
                b.iter(|| {
                    black_box(kdap_core::explore_with(
                        kdap.warehouse(),
                        kdap.join_index(),
                        net,
                        kdap.measure(),
                        kdap.facet_config(),
                        &exec,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let kdap = session();
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let fact = wh.schema().fact_table();
    let attr = wh
        .col_ref("DimProductSubcategory", "ProductSubcategoryName")
        .unwrap();
    let path = kdap_bench::unique_fact_path(wh, "DimProductSubcategory");
    let all = RowSet::full(wh.fact_rows());
    let measure = kdap.measure().clone();
    // Warm the row-mapper cache so the bench measures the aggregation.
    let _ = group_by_categorical(wh, jidx, fact, &path, attr, &all, &measure, AggFunc::Sum);
    c.bench_function("aggregate/group_by_subcategory_60k_facts", |b| {
        b.iter(|| {
            black_box(group_by_categorical(
                wh,
                jidx,
                fact,
                &path,
                attr,
                &all,
                &measure,
                AggFunc::Sum,
            ))
        })
    });
}

fn bench_subspace_cache(c: &mut Criterion) {
    // §7 future-work optimization: repeated materialization with and
    // without the subspace cache.
    let kdap = session();
    let ranked = kdap.interpret("California Mountain Bikes");
    let net = &ranked[0].net;
    let cache = kdap_core::SubspaceCache::new(32);
    cache.materialize(kdap.warehouse(), kdap.join_index(), net); // warm
    let mut g = c.benchmark_group("subspace_cache");
    g.bench_function("cold_materialize", |b| {
        b.iter(|| black_box(materialize(kdap.warehouse(), kdap.join_index(), net)))
    });
    g.bench_function("cached_materialize", |b| {
        b.iter(|| black_box(cache.materialize(kdap.warehouse(), kdap.join_index(), net)))
    });
    g.finish();
}

fn bench_anneal(c: &mut Criterion) {
    let x: Vec<f64> = (0..40).map(|i| ((i * 37) % 23) as f64).collect();
    let y: Vec<f64> = (0..40).map(|i| ((i * 17) % 19) as f64).collect();
    let mut g = c.benchmark_group("anneal");
    for iters in [100usize, 500] {
        g.bench_with_input(
            BenchmarkId::new("merge_intervals", iters),
            &iters,
            |b, &n| {
                let cfg = AnnealConfig {
                    iterations: n,
                    ..AnnealConfig::default()
                };
                b.iter(|| black_box(merge_intervals(&x, &y, &cfg)))
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_textindex,
    bench_index_build,
    bench_differentiate,
    bench_explore,
    bench_aggregation,
    bench_subspace_cache,
    bench_anneal
);
criterion_main!(benches);
