//! # kdap-bench
//!
//! Shared machinery for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation (§6), plus the Criterion
//! micro-benchmarks. See DESIGN.md for the experiment ↔ binary map and
//! EXPERIMENTS.md for recorded outputs.

use kdap_core::{RankedStarNet, StarNet};
use kdap_datagen::LabeledQuery;
use kdap_query::{
    group_by_buckets, paths_between, project_numeric, Bucketizer, JoinIndex, JoinPath, RowSet,
    Selection, MAX_PATH_LEN,
};
use kdap_warehouse::{ColRef, Measure, Warehouse};

/// Does a star net match a labeled query's intended interpretation?
///
/// It must constrain exactly the intended attribute domains (no more, no
/// fewer), each hit group must contain the intended instance, and — when
/// the ground truth pins a dimension — the join path must enter it.
pub fn matches_intended(wh: &Warehouse, net: &StarNet, q: &LabeledQuery) -> bool {
    if net.constraints.len() != q.intended.len() {
        return false;
    }
    let schema = wh.schema();
    q.intended.iter().all(|want| {
        net.constraints.iter().any(|c| {
            if c.group.attr != want.attr {
                return false;
            }
            if !c.group.hits.iter().any(|h| h.value.as_ref() == want.value) {
                return false;
            }
            match (&want.dimension, c.path.dimension(schema)) {
                (Some(dname), Some(did)) => schema.dimension(did).name == *dname,
                (Some(_), None) => false,
                (None, _) => true,
            }
        })
    })
}

/// 1-based rank of the first star net matching the ground truth, if any.
pub fn rank_of_intended(
    wh: &Warehouse,
    ranked: &[RankedStarNet],
    q: &LabeledQuery,
) -> Option<usize> {
    ranked
        .iter()
        .position(|r| matches_intended(wh, &r.net, q))
        .map(|p| p + 1)
}

/// Cumulative satisfaction curve: entry `x-1` is the percentage of
/// queries whose intended interpretation appears within the top-`x`.
pub fn cumulative_curve(ranks: &[Option<usize>], max_rank: usize) -> Vec<f64> {
    let n = ranks.len().max(1) as f64;
    (1..=max_rank)
        .map(|x| {
            let hit = ranks
                .iter()
                .filter(|r| matches!(r, Some(rank) if *rank <= x))
                .count();
            100.0 * hit as f64 / n
        })
        .collect()
}

/// One roll-up case for the bucket-count experiments (Figures 5/6): a
/// child-level subspace and its parent-level background space.
pub struct RollupCase {
    pub label: String,
    pub ds: RowSet,
    pub rup: RowSet,
}

/// The unique fact path to `table` (panics when ambiguous — the AW
/// schemata have exactly one path per dimension table).
pub fn unique_fact_path(wh: &Warehouse, table: &str) -> JoinPath {
    let schema = wh.schema();
    let tid = wh.table_id(table).expect("table exists");
    let paths = paths_between(schema, schema.fact_table(), tid, MAX_PATH_LEN);
    assert_eq!(paths.len(), 1, "expected a unique path to {table}");
    paths.into_iter().next().unwrap()
}

/// Builds one roll-up case per distinct child value: DS′ = facts with
/// `child_attr = v`, RUP = facts with `parent_attr = parent(v)`. Cases
/// with fewer than `min_facts` subspace facts are dropped (their
/// correlations are noise).
pub fn hierarchy_rollup_cases(
    wh: &Warehouse,
    jidx: &JoinIndex,
    child_attr: ColRef,
    parent_attr: ColRef,
    min_facts: usize,
) -> Vec<RollupCase> {
    let schema = wh.schema();
    let fact = schema.fact_table();
    let child_table = wh.table(child_attr.table);
    let child_col = wh.column(child_attr);
    let parent_col = wh.column(parent_attr);
    let child_path = unique_fact_path(wh, child_table.name());
    let parent_path = unique_fact_path(wh, wh.table(parent_attr.table).name());

    // child code → parent code, via the child table rows.
    let to_parent = if parent_attr.table == child_attr.table {
        None
    } else {
        let sub = paths_between(schema, child_attr.table, parent_attr.table, 4)
            .into_iter()
            .next()
            .expect("hierarchy levels are connected");
        Some(jidx.row_mapper(wh, child_attr.table, &sub))
    };

    let dict = child_col.dict().expect("categorical child level");
    let mut cases = Vec::new();
    for (code, value) in dict.iter() {
        let rows = child_col.rows_with_codes(&[code]);
        let parent_code = rows.iter().find_map(|&r| match &to_parent {
            None => parent_col.get_code(r),
            Some(mapper) => mapper[r].and_then(|pr| parent_col.get_code(pr as usize)),
        });
        let Some(parent_code) = parent_code else {
            continue;
        };
        let ds =
            Selection::by_codes(child_path.clone(), child_attr, vec![code]).eval(wh, jidx, fact);
        if ds.len() < min_facts {
            continue;
        }
        let rup = Selection::by_codes(parent_path.clone(), parent_attr, vec![parent_code])
            .eval(wh, jidx, fact);
        cases.push(RollupCase {
            label: value.to_string(),
            ds,
            rup,
        });
    }
    cases
}

/// Correlation of the DS′/RUP aggregation series for a numerical
/// attribute under a given bucketizer.
pub fn bucketized_correlation(
    wh: &Warehouse,
    jidx: &JoinIndex,
    case: &RollupCase,
    attr: ColRef,
    attr_path: &JoinPath,
    measure: &Measure,
    buckets: &Bucketizer,
) -> f64 {
    let fact = wh.schema().fact_table();
    let x = group_by_buckets(
        wh,
        jidx,
        fact,
        attr_path,
        attr,
        &case.ds,
        measure,
        kdap_query::AggFunc::Sum,
        buckets,
    );
    let y = group_by_buckets(
        wh,
        jidx,
        fact,
        attr_path,
        attr,
        &case.rup,
        measure,
        kdap_query::AggFunc::Sum,
        buckets,
    );
    // §5.2.1: only segments that exist in DS′ participate in the
    // comparison — buckets with no DS′ fact are dropped from both series.
    let occupancy = group_by_buckets(
        wh,
        jidx,
        fact,
        attr_path,
        attr,
        &case.ds,
        measure,
        kdap_query::AggFunc::Count,
        buckets,
    );
    let (xs, ys): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(&y)
        .zip(&occupancy)
        .filter(|(_, &cnt)| cnt > 0.0)
        .map(|((a, b), _)| (*a, *b))
        .unzip();
    kdap_core::pearson(&xs, &ys)
}

/// One sweep point of Figures 5/6: mean error (in percentage points of
/// correlation, |corr_n − corr_truth| × 100) over all roll-up cases, at a
/// given basic-interval count.
pub struct SweepPoint {
    pub buckets: usize,
    pub mean_error_pct: f64,
    pub cases: usize,
}

/// Sweeps basic-interval counts for one numerical attribute over a set of
/// roll-up cases, comparing against the per-distinct-value ground truth.
pub fn bucket_sweep(
    wh: &Warehouse,
    jidx: &JoinIndex,
    cases: &[RollupCase],
    attr: ColRef,
    measure: &Measure,
    bucket_counts: &[usize],
) -> Vec<SweepPoint> {
    let fact = wh.schema().fact_table();
    let attr_path = unique_fact_path(wh, wh.table(attr.table).name());

    // Per-case ground truth: one bucket per distinct value in DS′.
    let truths: Vec<Option<(f64, Vec<f64>)>> = cases
        .iter()
        .map(|case| {
            let values = project_numeric(wh, jidx, fact, &attr_path, attr, &case.ds);
            let gt_buckets = Bucketizer::per_distinct(values.iter().copied())?;
            if gt_buckets.n_buckets() < 3 {
                return None;
            }
            let corr =
                bucketized_correlation(wh, jidx, case, attr, &attr_path, measure, &gt_buckets);
            Some((corr, values))
        })
        .collect();

    bucket_counts
        .iter()
        .map(|&n| {
            let mut total = 0.0;
            let mut counted = 0usize;
            for (case, truth) in cases.iter().zip(&truths) {
                let Some((gt_corr, values)) = truth else {
                    continue;
                };
                let Some(buckets) = Bucketizer::equal_width(values.iter().copied(), n) else {
                    continue;
                };
                let corr =
                    bucketized_correlation(wh, jidx, case, attr, &attr_path, measure, &buckets);
                total += (corr - gt_corr).abs() * 100.0;
                counted += 1;
            }
            SweepPoint {
                buckets: n,
                mean_error_pct: if counted == 0 {
                    0.0
                } else {
                    total / counted as f64
                },
                cases: counted,
            }
        })
        .collect()
}

/// Renders a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    line(&hdr);
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_core::{generate_star_nets, rank_star_nets, GenConfig, RankMethod};
    use kdap_datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};

    #[test]
    fn cumulative_curve_counts_correctly() {
        let ranks = vec![Some(1), Some(1), Some(3), None, Some(11)];
        let curve = cumulative_curve(&ranks, 5);
        assert_eq!(curve[0], 40.0);
        assert_eq!(curve[1], 40.0);
        assert_eq!(curve[2], 60.0);
        assert_eq!(curve[4], 60.0);
    }

    #[test]
    fn intended_interpretation_is_rankable_end_to_end() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let index = kdap_textindex::TextIndex::build(&wh);
        let cfg = WorkloadConfig {
            n_queries: 10,
            ..WorkloadConfig::default()
        };
        let queries = generate_workload(&wh, &cfg);
        let mut found = 0;
        for q in &queries {
            let refs: Vec<&str> = q.keywords.iter().map(String::as_str).collect();
            let nets = generate_star_nets(&wh, &index, &refs, &GenConfig::default());
            let ranked = rank_star_nets(nets, RankMethod::Standard);
            if rank_of_intended(&wh, &ranked, q).is_some() {
                found += 1;
            }
        }
        // The intended interpretation must be generatable for most
        // queries (this is the precondition for Figure 4 to be
        // meaningful).
        assert!(found >= 8, "only {found}/10 intended interpretations found");
    }

    #[test]
    fn rollup_cases_are_proper_supersets() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let jidx = JoinIndex::build(&wh);
        let sub = wh
            .col_ref("DimProductSubcategory", "ProductSubcategoryName")
            .unwrap();
        let cat = wh.col_ref("DimProductCategory", "CategoryName").unwrap();
        let cases = hierarchy_rollup_cases(&wh, &jidx, sub, cat, 5);
        assert!(!cases.is_empty());
        for c in &cases {
            assert!(c.rup.len() >= c.ds.len(), "case {}", c.label);
            for row in c.ds.iter() {
                assert!(c.rup.contains(row));
            }
        }
    }

    #[test]
    fn bucket_sweep_error_decreases_with_buckets() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let jidx = JoinIndex::build(&wh);
        let sub = wh
            .col_ref("DimProductSubcategory", "ProductSubcategoryName")
            .unwrap();
        let cat = wh.col_ref("DimProductCategory", "CategoryName").unwrap();
        let cases = hierarchy_rollup_cases(&wh, &jidx, sub, cat, 8);
        let attr = wh.col_ref("DimProduct", "DealerPrice").unwrap();
        let measure = wh.schema().measure_by_name("SalesRevenue").unwrap().clone();
        let sweep = bucket_sweep(&wh, &jidx, &cases, attr, &measure, &[5, 80]);
        assert_eq!(sweep.len(), 2);
        assert!(sweep[0].cases > 0);
        // More basic intervals → closer to ground truth on average.
        assert!(
            sweep[1].mean_error_pct <= sweep[0].mean_error_pct + 1e-9,
            "5 buckets: {:.2}, 80 buckets: {:.2}",
            sweep[0].mean_error_pct,
            sweep[1].mean_error_pct
        );
    }
}
