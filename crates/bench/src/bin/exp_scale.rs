//! Experiment E14 — scaling: can the engine survive 10M rows?
//!
//! The compressed columnar storage (bit-packed dictionary chunks) and
//! hybrid row sets (array/bitmap/run containers per 64Ki-row block) exist
//! so the engine's working set and query latency grow *sub-linearly*
//! while the fact table grows linearly. This binary measures that claim
//! directly: it builds AW_ONLINE at a ladder of scale factors (facts ×f,
//! dimensions ×√f — see `Scale::scaled`), runs a fixed keyword workload
//! through the full interpret→explore pipeline under a 2 GiB memory
//! budget, and records the p50 explore latency per thread count.
//!
//! Methodology: per rung, the session is warmed once over every net
//! (plans, row mappers, the measure vector), then each net is explored
//! `repeats` times per thread count — rounds interleaved over the nets,
//! keeping each net's best round (the same best-of-N discipline as
//! `exp_obs`, so frequency drift cancels instead of inflating a rung) —
//! and the p50 over the per-net minima kept. Warm state is the honest
//! comparison across rungs — every rung amortizes the same one-time
//! costs, so the curve isolates the per-query work that actually scales
//! with the data.
//!
//! With `--check`, the run exits nonzero unless p50 latency grew by a
//! smaller factor than the fact count between the smallest and largest
//! rung (the sub-linearity gate CI enforces at `--scale 10`).
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_scale -- --scale 10 --check
//!   cargo run --release -p kdap-bench --bin exp_scale -- --scale 200   # ~12.1M facts

use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::{Kdap, StarNet};
use kdap_datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};

/// The scale-factor ladder, filtered by `--scale`.
const LADDER: [usize; 8] = [1, 2, 5, 10, 20, 50, 100, 200];

/// One rung of the ladder.
struct Rung {
    scale: usize,
    facts: usize,
    warehouse_bytes: usize,
    build_ms: f64,
    nets: usize,
    /// `(threads, p50_ms)` in the order measured.
    p50_ms: Vec<(usize, f64)>,
}

fn p50(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn run_rung(
    scale: usize,
    threads: &[usize],
    repeats: usize,
    max_nets: usize,
    budget_bytes: u64,
) -> Rung {
    eprintln!("scale {scale}: building AW_ONLINE…");
    let t0 = Instant::now();
    let wh = build_aw_online(Scale::full().scaled(scale), 42).expect("generator is valid");
    let facts = wh.fact_rows();
    let warehouse_bytes = wh.approx_bytes();
    let queries = generate_workload(&wh, &WorkloadConfig::default());
    let mut kdap = Kdap::builder(wh)
        .memory_budget(budget_bytes)
        .build()
        .expect("measure");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "scale {scale}: {facts} facts · {:.1} MB compressed · built in {:.0} ms",
        warehouse_bytes as f64 / 1048576.0,
        build_ms
    );

    let nets: Vec<StarNet> = queries
        .iter()
        .filter_map(|q| kdap.interpret(&q.text()).into_iter().next())
        .map(|r| r.net)
        .take(max_nets)
        .collect();
    assert!(!nets.is_empty(), "workload produced no interpretations");

    // Warm once: plans, semi-join bitmaps, row mappers, measure vector.
    // Every explore runs governed by the memory budget — a breach aborts
    // the whole experiment, which is exactly the point.
    for net in &nets {
        kdap.explore(net).expect("warm explore within budget");
    }

    let mut p50_ms = Vec::new();
    for &t in threads {
        kdap.set_threads(t);
        // Interleave rounds over the nets and keep each net's best, so
        // CPU-frequency drift across the run cancels; the rung's number
        // is the p50 over per-net minima.
        let mut best = vec![f64::MAX; nets.len()];
        for _ in 0..repeats {
            for (i, net) in nets.iter().enumerate() {
                let t0 = Instant::now();
                let ex = kdap.explore(net).expect("explore within budget");
                best[i] = best[i].min(t0.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(ex);
            }
        }
        p50_ms.push((t, p50(&mut best)));
    }
    Rung {
        scale,
        facts,
        warehouse_bytes,
        build_ms,
        nets: nets.len(),
        p50_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
            .or_else(|| {
                let pfx = format!("{name}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&pfx).map(String::from))
            })
    };
    let max_scale: usize = arg("--scale").and_then(|v| v.parse().ok()).unwrap_or(10);
    let repeats: usize = arg("--repeats").and_then(|v| v.parse().ok()).unwrap_or(2);
    let max_nets: usize = arg("--nets").and_then(|v| v.parse().ok()).unwrap_or(8);
    let budget_mb: u64 = arg("--budget-mb")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);
    let threads: Vec<usize> = arg("--threads")
        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let check = args.iter().any(|a| a == "--check");
    let budget_bytes = budget_mb * 1024 * 1024;

    let ladder: Vec<usize> = LADDER.iter().copied().filter(|&s| s <= max_scale).collect();
    assert!(
        ladder.len() >= 2,
        "--scale must admit at least two ladder rungs (≥ 2)"
    );

    let rungs: Vec<Rung> = ladder
        .iter()
        .map(|&s| run_rung(s, &threads, repeats, max_nets, budget_bytes))
        .collect();

    println!(
        "## E14 — scaling, AW_ONLINE ×{{{}}} under a {budget_mb} MiB budget (repeats={repeats})\n",
        ladder
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut headers = vec!["scale".to_string(), "facts".to_string(), "MB".to_string()];
    headers.extend(threads.iter().map(|t| format!("p50 ms (t={t})")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = rungs
        .iter()
        .map(|r| {
            let mut row = vec![
                format!("{}", r.scale),
                format!("{}", r.facts),
                format!("{:.1}", r.warehouse_bytes as f64 / 1048576.0),
            ];
            row.extend(r.p50_ms.iter().map(|(_, ms)| format!("{ms:.2}")));
            row
        })
        .collect();
    print_table(&headers_ref, &rows);

    let (first, last) = (&rungs[0], &rungs[rungs.len() - 1]);
    let facts_growth = last.facts as f64 / first.facts as f64;
    let p50_growth = last.p50_ms[0].1 / first.p50_ms[0].1;
    println!(
        "\nfacts grew {facts_growth:.1}× · p50 (t={}) grew {p50_growth:.1}× → {}",
        threads[0],
        if p50_growth < facts_growth {
            "sub-linear"
        } else {
            "NOT sub-linear"
        }
    );

    let json = render_json(
        &rungs,
        &threads,
        repeats,
        budget_bytes,
        facts_growth,
        p50_growth,
    );
    let path = "results/BENCH_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if check {
        assert!(
            p50_growth < facts_growth,
            "p50 latency grew {p50_growth:.2}× while facts grew {facts_growth:.2}× — \
             scaling is not sub-linear"
        );
        println!(
            "\ncheck passed: p50 growth {p50_growth:.2}× < facts growth {facts_growth:.2}× \
             and every explore ran inside the {budget_mb} MiB budget"
        );
    }
}

fn render_json(
    rungs: &[Rung],
    threads: &[usize],
    repeats: usize,
    budget_bytes: u64,
    facts_growth: f64,
    p50_growth: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E14\",\n");
    out.push_str("  \"generator\": \"aw_online\",\n");
    out.push_str(&format!("  \"budget_bytes\": {budget_bytes},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"scales\": [\n");
    for (i, r) in rungs.iter().enumerate() {
        let p50s = r
            .p50_ms
            .iter()
            .map(|(t, ms)| format!("{{\"threads\": {t}, \"p50_ms\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"scale\": {}, \"facts\": {}, \"warehouse_bytes\": {}, \
             \"build_ms\": {:.1}, \"nets\": {}, \"p50\": [{}]}}{}\n",
            r.scale,
            r.facts,
            r.warehouse_bytes,
            r.build_ms,
            r.nets,
            p50s,
            if i + 1 < rungs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sublinear\": {{\"facts_growth\": {facts_growth:.3}, \"p50_growth\": {p50_growth:.3}, \
         \"ok\": {}}}\n",
        p50_growth < facts_growth
    ));
    out.push_str("}\n");
    out
}
