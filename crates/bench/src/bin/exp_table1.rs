//! Experiment E1 — reproduces **Table 1**: the top-3 star nets returned
//! for the keyword query "California Mountain Bikes" on AW_ONLINE.
//!
//! The paper's expected shape: the intended interpretation (StateProvince
//! = California ⋈ ProductSubcategory = Mountain Bikes) ranks first; the
//! "California Street" address interpretation and looser product matches
//! follow with visibly lower scores.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_table1 [-- --scale small]`

use kdap_bench::print_table;
use kdap_core::Kdap;
use kdap_datagen::{build_aw_online, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--scale=small" || a == "small") {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let kdap = Kdap::builder(wh).build().expect("measure defined");

    let query = "California Mountain Bikes";
    println!("## Table 1 — star nets for \"{query}\" (AW_ONLINE)\n");
    let ranked = kdap.interpret(query);
    println!("candidate interpretations generated: {}\n", ranked.len());

    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, r)| {
            vec![
                format!("{}", i + 1),
                r.net.display(kdap.warehouse()),
                format!("{:.6}", r.score),
            ]
        })
        .collect();
    print_table(
        &["rank", "star net (hit groups via join paths)", "score"],
        &rows,
    );

    // Sanity line for EXPERIMENTS.md: is the intended interpretation #1?
    let top = ranked.first().map(|r| r.net.display(kdap.warehouse()));
    if let Some(top) = top {
        let intended_first =
            top.contains("StateProvinceName/{California}") && top.contains("Mountain Bikes");
        println!(
            "\nintended interpretation ranked first: {}",
            if intended_first { "YES" } else { "NO" }
        );
    }
}
