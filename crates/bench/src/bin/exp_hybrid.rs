//! Extension E9 — interface-consistency ablation (§7).
//!
//! The paper's closing discussion: dynamic facet construction is useful
//! for exploration "but may become inadequate whenever the users have a
//! very concrete goal for their aggregations — in such cases the
//! *consistency* of the interface organization becomes critical and a
//! hybrid solution may be better."
//!
//! We quantify the trade-off over a session of related queries:
//! * **churn** — how much the per-dimension attribute layout changes
//!   between consecutive queries (1 − positional agreement); lower is
//!   easier to navigate with a concrete goal;
//! * **mean interestingness** — the average facet score surfaced; higher
//!   means more exploration value on screen.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_hybrid`

use kdap_bench::print_table;
use kdap_core::{FacetOrder, Kdap};
use kdap_datagen::{build_aw_online, Scale};

const SESSION: &[&str] = &[
    "Bikes",
    "\"Mountain Bikes\"",
    "\"Road Bikes\"",
    "Clothing",
    "Accessories",
    "California Bikes",
];

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("measure defined");
    kdap.facet_config_mut().top_k_attrs = 3;

    println!("## Hybrid interface organization (§7) — layout churn vs interestingness\n");
    println!("session: {}\n", SESSION.join(" → "));

    let orders = [
        ("dynamic", FacetOrder::Dynamic),
        ("hybrid (pin 1)", FacetOrder::Hybrid { pinned: 1 }),
        ("hybrid (pin 2)", FacetOrder::Hybrid { pinned: 2 }),
        ("consistent", FacetOrder::Consistent),
    ];

    let mut rows = Vec::new();
    for (label, order) in orders {
        kdap.facet_config_mut().order = order;
        // Layouts per query: dimension → ordered non-promoted attr names.
        let mut layouts: Vec<std::collections::BTreeMap<String, Vec<String>>> = Vec::new();
        let mut score_sum = 0.0;
        let mut score_n = 0usize;
        for q in SESSION {
            let ranked = kdap.interpret(q);
            let Some(r) = ranked.first() else { continue };
            let ex = kdap.explore(&r.net).expect("star net evaluates");
            let mut layout = std::collections::BTreeMap::new();
            for panel in &ex.panels {
                let attrs: Vec<String> = panel
                    .attrs
                    .iter()
                    .filter(|a| !a.promoted)
                    .map(|a| a.name.clone())
                    .collect();
                for a in panel.attrs.iter().filter(|a| !a.promoted) {
                    score_sum += a.score;
                    score_n += 1;
                }
                layout.insert(panel.dimension.clone(), attrs);
            }
            layouts.push(layout);
        }
        // Churn: positional disagreement between consecutive layouts.
        let mut churn_sum = 0.0;
        let mut churn_n = 0usize;
        for w in layouts.windows(2) {
            for (dim, attrs_a) in &w[0] {
                let Some(attrs_b) = w[1].get(dim) else {
                    continue;
                };
                let len = attrs_a.len().max(attrs_b.len());
                if len == 0 {
                    continue;
                }
                let same = attrs_a.iter().zip(attrs_b).filter(|(x, y)| x == y).count();
                churn_sum += 1.0 - same as f64 / len as f64;
                churn_n += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", 100.0 * churn_sum / churn_n.max(1) as f64),
            format!("{:+.3}", score_sum / score_n.max(1) as f64),
        ]);
    }
    print_table(
        &[
            "ordering policy",
            "layout churn per step",
            "mean facet interestingness",
        ],
        &rows,
    );
    println!(
        "\nDynamic maximizes surfaced interestingness but reshuffles the panel on \
         every query; Consistent is perfectly stable but surfaces whatever the \
         schema declared first; Hybrid trades between them — the §7 hypothesis."
    );
}
