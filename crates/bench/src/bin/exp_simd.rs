//! Experiment E15 — vectorized kernel layer speedups.
//!
//! The engine's hot loops run through runtime-dispatched batch kernels
//! (`kdap_warehouse::kernel`, `kdap_query::kernel`): bulk bit-unpack of
//! packed dictionary codes, bitmap word ops and canonicalization counts,
//! f64 measure gathers, and the batch fused group-by built on all of
//! them. Every kernel has a forced-scalar twin that is bit-identical
//! (`tests/simd_equivalence.rs` proves it); this binary measures what the
//! SIMD tiers buy over that reference on the current host.
//!
//! Three micro-kernels and one macro kernel are timed, each interleaved
//! scalar/dispatched round-robin with the best round kept, so frequency
//! drift cancels:
//!
//! 1. `decode/<bits>` — bulk unpack of packed codes at each bit width.
//! 2. `bitmap/*` — AND/OR/ANDNOT and popcount over container-sized
//!    word blocks.
//! 3. `gather` — measure gather through a shuffled index vector.
//! 4. `fused-agg` — the full multi-spec fused group-by over an
//!    AW_ONLINE subspace: forced-scalar per-row reference vs the
//!    dispatched batch path.
//!
//! With `--check`, the run exits nonzero unless the fused-aggregation
//! speedup reaches `KDAP_SIMD_MIN_SPEEDUP` (default 2.0×) — skipped
//! automatically when the host's detected tier is already Scalar, where
//! both sides run the same code.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_simd
//!   cargo run --release -p kdap-bench --bin exp_simd -- --small --check

use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::Kdap;
use kdap_datagen::{build_aw_online, Scale};
use kdap_query::kernel as qkernel;
use kdap_query::{
    fact_paths_by_table, multi_group_by_exec, ExecConfig, FacetSpec, MeasureVector, RowSet,
    DENSE_GROUP_LIMIT, MAX_PATH_LEN,
};
use kdap_warehouse::kernel as wkernel;
use kdap_warehouse::{ColRef, TableId, ValueType};

/// One scalar-vs-dispatched measurement.
struct Pair {
    name: String,
    scalar_ms: f64,
    simd_ms: f64,
    /// Work units per call (codes, words, rows) for throughput context.
    units: u64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }
}

/// Interleaves scalar (`run(true)`) and dispatched (`run(false)`) rounds
/// `repeats` times and keeps each side's best, in ms.
fn best_of(repeats: usize, mut run: impl FnMut(bool)) -> (f64, f64) {
    let mut best_scalar = f64::MAX;
    let mut best_simd = f64::MAX;
    for _ in 0..repeats {
        let t0 = Instant::now();
        run(true);
        best_scalar = best_scalar.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        run(false);
        best_simd = best_simd.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best_scalar, best_simd)
}

/// Deterministic pseudo-random words (splitmix64).
fn words(n: usize, mut seed: u64) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

fn bench_decode(repeats: usize, iters: usize, out: &mut Vec<Pair>) {
    const LEN: usize = 1 << 16; // one sealed chunk of codes
    for bits in [1u8, 2, 4, 8, 16, 32] {
        let per_word = 64 / bits as usize;
        let src = words(LEN.div_ceil(per_word), bits as u64);
        let mut buf = vec![0u32; LEN];
        let (scalar_ms, simd_ms) = best_of(repeats, |scalar| {
            for _ in 0..iters {
                if scalar {
                    wkernel::unpack_words_scalar(&src, bits, LEN, &mut buf);
                } else {
                    wkernel::unpack_words(&src, bits, LEN, &mut buf);
                }
            }
            std::hint::black_box(&buf);
        });
        out.push(Pair {
            name: format!("decode/{bits}b"),
            scalar_ms,
            simd_ms,
            units: (LEN * iters) as u64,
        });
    }
}

fn bench_bitmap(repeats: usize, iters: usize, out: &mut Vec<Pair>) {
    const WORDS: usize = 1024; // one bitmap container
    let a = words(WORDS, 7);
    let b = words(WORDS, 11);
    let mut dst = a.clone();
    type WordOp = fn(&mut [u64], &[u64]);
    let ops: [(&str, WordOp, WordOp); 3] = [
        ("bitmap/and", qkernel::and_words_scalar, qkernel::and_words),
        ("bitmap/or", qkernel::or_words_scalar, qkernel::or_words),
        (
            "bitmap/andnot",
            qkernel::andnot_words_scalar,
            qkernel::andnot_words,
        ),
    ];
    for (name, scalar_op, simd_op) in ops {
        let (scalar_ms, simd_ms) = best_of(repeats, |scalar| {
            for _ in 0..iters {
                dst.copy_from_slice(&a);
                if scalar {
                    scalar_op(&mut dst, &b);
                } else {
                    simd_op(&mut dst, &b);
                }
            }
            std::hint::black_box(&dst);
        });
        out.push(Pair {
            name: name.to_string(),
            scalar_ms,
            simd_ms,
            units: (WORDS * iters) as u64,
        });
    }
    let mut acc = 0usize;
    let (scalar_ms, simd_ms) = best_of(repeats, |scalar| {
        for _ in 0..iters {
            acc = acc.wrapping_add(if scalar {
                qkernel::popcount_words_scalar(&a)
            } else {
                qkernel::popcount_words(&a)
            });
        }
        std::hint::black_box(acc);
    });
    out.push(Pair {
        name: "bitmap/popcount".to_string(),
        scalar_ms,
        simd_ms,
        units: (WORDS * iters) as u64,
    });
}

fn bench_gather(repeats: usize, iters: usize, out: &mut Vec<Pair>) {
    const N: usize = 1 << 16;
    let values: Vec<f64> = (0..N).map(|i| i as f64 * 0.5).collect();
    let idx: Vec<u32> = words(N, 13)
        .into_iter()
        .map(|w| (w % N as u64) as u32)
        .collect();
    let mut buf = vec![0.0f64; N];
    let (scalar_ms, simd_ms) = best_of(repeats, |scalar| {
        for _ in 0..iters {
            if scalar {
                qkernel::gather_f64_scalar(&values, &idx, &mut buf);
            } else {
                qkernel::gather_f64(&values, &idx, &mut buf);
            }
        }
        std::hint::black_box(&buf);
    });
    out.push(Pair {
        name: "gather".to_string(),
        scalar_ms,
        simd_ms,
        units: (N * iters) as u64,
    });
}

/// The macro kernel: a full multi-spec fused group-by over AW_ONLINE,
/// per-row forced-scalar reference vs the dispatched batch path.
fn bench_fused(scale: Scale, repeats: usize, out: &mut Vec<Pair>) {
    eprintln!("building AW_ONLINE for fused-agg...");
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let kdap = Kdap::builder(wh).build().expect("measure defined");
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let schema = wh.schema();
    let fact = schema.fact_table();
    let mv = MeasureVector::build(wh, kdap.measure());
    let rows = RowSet::full(wh.fact_rows());
    let by_table = fact_paths_by_table(schema, MAX_PATH_LEN);
    let mut specs = vec![FacetSpec::Total];
    for t in 0..wh.tables().len() as u32 {
        let tid = TableId(t);
        if tid == fact {
            continue;
        }
        let Some(path) = by_table.get(&tid).and_then(|p| p.first()) else {
            continue;
        };
        let mapper = jidx.row_mapper(wh, fact, path);
        for (c, col) in wh.tables()[t as usize].columns().iter().enumerate() {
            let attr = ColRef::new(tid, c as u32);
            if col.dict().is_some() {
                specs.push(FacetSpec::Categorical {
                    attr,
                    mapper: mapper.clone(),
                });
            } else if col.value_type() == ValueType::Float {
                specs.push(FacetSpec::NumericDomain {
                    attr,
                    mapper: mapper.clone(),
                });
            }
        }
    }
    let scalar_exec = ExecConfig::serial().with_force_scalar(true);
    let simd_exec = ExecConfig::serial();
    let run = |exec: &ExecConfig| {
        let groups = multi_group_by_exec(wh, &specs, &rows, &mv, exec, DENSE_GROUP_LIMIT)
            .expect("ungoverned");
        std::hint::black_box(groups.len());
    };
    // Warm both paths (decode scratch, page cache).
    run(&scalar_exec);
    run(&simd_exec);
    let (scalar_ms, simd_ms) = best_of(repeats, |scalar| {
        run(if scalar { &scalar_exec } else { &simd_exec })
    });
    out.push(Pair {
        name: format!("fused-agg ({} specs, {} rows)", specs.len(), rows.len()),
        scalar_ms,
        simd_ms,
        units: rows.len() as u64,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a.contains("small"));
    let check = args.iter().any(|a| a == "--check");
    let repeats: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--repeats="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if small { 3 } else { 7 });
    let min_speedup: f64 = std::env::var("KDAP_SIMD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let micro_iters = if small { 50 } else { 400 };
    let scale = if small {
        Scale::small()
    } else {
        Scale::full().scaled(20)
    };

    let detected = wkernel::detected_tier();
    let active = wkernel::active_tier();
    println!(
        "## E15 — vectorized kernels (detected {detected}, active {active}, features [{}])\n",
        wkernel::detected_features().join(", ")
    );
    if active.is_scalar() {
        println!(
            "active tier is Scalar ({}): speedups will be ~1.0× and the --check gate is skipped",
            if wkernel::simd_disabled_by_env() {
                "KDAP_NO_SIMD set"
            } else {
                "no SIMD support detected"
            }
        );
    }

    let mut pairs = Vec::new();
    bench_decode(repeats, micro_iters, &mut pairs);
    bench_bitmap(repeats, micro_iters * 16, &mut pairs);
    bench_gather(repeats, micro_iters, &mut pairs);
    bench_fused(scale, repeats, &mut pairs);

    let mut rows_out = Vec::new();
    for p in &pairs {
        let throughput = p.units as f64 / (p.simd_ms * 1e3); // Munits/s
        rows_out.push(vec![
            p.name.clone(),
            format!("{:.3}", p.scalar_ms),
            format!("{:.3}", p.simd_ms),
            format!("{:.2}x", p.speedup()),
            format!("{:.0}", throughput),
        ]);
    }
    print_table(
        &["kernel", "scalar ms", "simd ms", "speedup", "Munits/s"],
        &rows_out,
    );

    let fused = pairs.last().expect("fused pair present");
    println!(
        "\nfused-agg: {:.2}x over forced-scalar (gate {:.1}x, tier {active})",
        fused.speedup(),
        min_speedup
    );

    let json = render_json(&pairs, repeats, min_speedup);
    let path = "results/BENCH_simd.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if check {
        if active.is_scalar() {
            println!("check skipped: no SIMD tier active on this host");
            return;
        }
        assert!(
            fused.speedup() >= min_speedup,
            "fused-aggregation speedup {:.2}x below the {:.1}x gate",
            fused.speedup(),
            min_speedup
        );
        println!("check passed: fused-agg ≥ {min_speedup:.1}x");
    }
}

fn render_json(pairs: &[Pair], repeats: usize, min_speedup: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E15\",\n");
    out.push_str(&format!(
        "  \"detected_tier\": \"{}\",\n  \"active_tier\": \"{}\",\n",
        wkernel::detected_tier().name(),
        wkernel::active_tier().name()
    ));
    out.push_str(&format!(
        "  \"features\": [{}],\n",
        wkernel::detected_features()
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"min_speedup\": {min_speedup},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \
             \"speedup\": {:.3}, \"units_per_call\": {}}}{}\n",
            p.name,
            p.scalar_ms,
            p.simd_ms,
            p.speedup(),
            p.units,
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
