//! Experiment E4 — reproduces **Figure 5**: basic-interval (bucket) count
//! vs. group-by attribute score error on AW_ONLINE.
//!
//! Four lines, as in the paper: numerical attributes {Customer
//! YearlyIncome, Product DealerPrice} × roll-up operations {StateProvince
//! → Country, ProductSubcategory → Category}. For each roll-up case
//! (every state with its country / every subcategory with its category),
//! the correlation at each bucket count is compared against the
//! per-distinct-value ground truth; the mean |Δcorr|×100 over all cases
//! is reported. Expected shape: error falls quickly with bucket count and
//! converges past ~40–80 buckets.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_fig5`

use kdap_bench::{bucket_sweep, hierarchy_rollup_cases, print_table};
use kdap_datagen::{build_aw_online, Scale};
use kdap_query::JoinIndex;

const BUCKET_COUNTS: &[usize] = &[5, 10, 20, 40, 80, 160, 320];

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let jidx = JoinIndex::build(&wh);
    let measure = wh.schema().measure_by_name("SalesRevenue").unwrap().clone();

    let income = wh.col_ref("DimCustomer", "YearlyIncome").unwrap();
    let dealer = wh.col_ref("DimProduct", "DealerPrice").unwrap();
    let state = wh.col_ref("DimStateProvince", "StateProvinceName").unwrap();
    let country = wh.col_ref("DimStateProvince", "CountryRegionName").unwrap();
    let subcat = wh
        .col_ref("DimProductSubcategory", "ProductSubcategoryName")
        .unwrap();
    let category = wh.col_ref("DimProductCategory", "CategoryName").unwrap();

    let geo_cases = hierarchy_rollup_cases(&wh, &jidx, state, country, 30);
    let prod_cases = hierarchy_rollup_cases(&wh, &jidx, subcat, category, 30);
    println!(
        "## Figure 5 — bucket count vs attribute-score error (AW_ONLINE)\n\n\
         roll-up cases: {} state→country, {} subcategory→category\n",
        geo_cases.len(),
        prod_cases.len()
    );

    let lines = [
        ("YearlyIncome / State→Country", income, &geo_cases),
        ("YearlyIncome / Subcat→Category", income, &prod_cases),
        ("DealerPrice / State→Country", dealer, &geo_cases),
        ("DealerPrice / Subcat→Category", dealer, &prod_cases),
    ];

    let mut rows = Vec::new();
    for (label, attr, cases) in lines {
        let sweep = bucket_sweep(&wh, &jidx, cases, attr, &measure, BUCKET_COUNTS);
        let mut row = vec![label.to_string()];
        row.extend(sweep.iter().map(|p| format!("{:.2}", p.mean_error_pct)));
        row.push(format!("{}", sweep.first().map(|p| p.cases).unwrap_or(0)));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["attribute / roll-up".into()];
    headers.extend(BUCKET_COUNTS.iter().map(|b| format!("{b} buckets")));
    headers.push("cases".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!("\n(error = mean |corr_buckets − corr_ground_truth| × 100 over all roll-up cases)");
}
