//! Experiment E11 — the plan optimizer and shared semi-join reuse.
//!
//! Differentiation evaluates *every* candidate star net of a query, and
//! candidates overlap heavily: the same `(hit group, join path)` semi-join
//! appears in many nets. The optimizer compiles the whole candidate set to
//! physical plans, deduplicates steps by canonical fingerprint, and
//! evaluates each distinct constraint exactly once through the session's
//! semi-join cache.
//!
//! This binary runs the differentiation phase of a labeled workload twice
//! — optimizer ON (batch + cache + reorder + fusion) and OFF (naive
//! per-net cascades, exactly the seed's execution) — verifies the
//! subspaces are bit-identical, asserts the exactly-once property via the
//! cache counters, and reports wall times and the cache hit rate.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_plan                # AW_ONLINE
//!   cargo run --release -p kdap-bench --bin exp_plan -- --db=reseller
//!   cargo run --release -p kdap-bench --bin exp_plan -- --small --threads=4

use std::collections::HashSet;
use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::{materialize_batch, materialize_planned, Kdap, Planner, StarNet};
use kdap_datagen::{build_aw_online, build_aw_reseller, generate_workload, Scale, WorkloadConfig};
use kdap_query::ExecConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reseller = args.iter().any(|a| a.contains("reseller"));
    let threads: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let scale = if args.iter().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };

    let (wh, wl_cfg, db_name) = if reseller {
        (
            build_aw_reseller(scale, 42).expect("generator is valid"),
            WorkloadConfig {
                dimensions: Some(vec!["Reseller".into(), "Employee".into()]),
                ..WorkloadConfig::default()
            },
            "AW_RESELLER",
        )
    } else {
        (
            build_aw_online(scale, 42).expect("generator is valid"),
            WorkloadConfig::default(),
            "AW_ONLINE",
        )
    };
    eprintln!("building {db_name} ({} facts)...", scale.facts);
    let queries = generate_workload(&wh, &wl_cfg);
    let kdap = Kdap::builder(wh)
        .threads(threads)
        .build()
        .expect("measure defined");
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let exec = if threads == 1 {
        ExecConfig::serial()
    } else {
        ExecConfig::with_threads(threads)
    };

    // Candidate sets, interpreted once and shared by both runs.
    let candidate_sets: Vec<Vec<StarNet>> = queries
        .iter()
        .map(|q| {
            kdap.interpret(&q.text())
                .into_iter()
                .map(|r| r.net)
                .collect()
        })
        .collect();
    let total_nets: usize = candidate_sets.iter().map(Vec::len).sum();
    println!(
        "## E11 — plan optimizer & shared semi-join reuse ({db_name}, {} queries, {} candidate nets, threads={threads})\n",
        queries.len(),
        total_nets,
    );

    // Optimizer OFF: the seed's execution — one semi-join cascade per net,
    // no sharing between candidates of the same query.
    let naive = Planner::naive();
    let t0 = Instant::now();
    let mut naive_checksum = 0u64;
    let mut naive_sizes: Vec<usize> = Vec::with_capacity(total_nets);
    for nets in &candidate_sets {
        for net in nets {
            let sub =
                materialize_planned(wh, jidx, net, &naive, &exec).expect("star net evaluates");
            naive_checksum = naive_checksum.wrapping_add(checksum(&sub.rows));
            naive_sizes.push(sub.len());
        }
    }
    let naive_time = t0.elapsed();

    // Optimizer ON: per query, compile the whole candidate set, dedup
    // shared steps, evaluate each distinct constraint exactly once.
    let opt = Planner::optimized();
    let t0 = Instant::now();
    let mut opt_checksum = 0u64;
    let mut opt_sizes: Vec<usize> = Vec::with_capacity(total_nets);
    for nets in &candidate_sets {
        let refs: Vec<&StarNet> = nets.iter().collect();
        for sub in materialize_batch(wh, jidx, &refs, &opt, &exec).expect("star nets evaluate") {
            opt_checksum = opt_checksum.wrapping_add(checksum(&sub.rows));
            opt_sizes.push(sub.len());
        }
    }
    let opt_time = t0.elapsed();

    assert_eq!(
        naive_sizes, opt_sizes,
        "optimized subspace sizes must match naive"
    );
    assert_eq!(
        naive_checksum, opt_checksum,
        "optimized fact-row sets must be bit-identical to naive"
    );

    // The exactly-once property: across the whole run, the cache records
    // one miss per distinct constraint fingerprint and one hit for every
    // repeated appearance.
    let (hits, misses) = opt.cache_stats().expect("optimized planner is cached");
    let distinct: usize = {
        let mut seen = HashSet::new();
        for nets in &candidate_sets {
            for net in nets {
                for step in opt.plan(wh, net).steps {
                    seen.insert(step.key());
                }
            }
        }
        seen.len()
    };
    assert_eq!(
        misses as usize, distinct,
        "each distinct constraint must be evaluated exactly once"
    );
    let total_steps = hits + misses;
    let hit_rate = if total_steps == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total_steps as f64
    };

    let speedup = naive_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9);
    print_table(
        &[
            "optimizer",
            "wall ms",
            "semi-joins",
            "cache hits",
            "hit rate",
        ],
        &[
            vec![
                "off (naive)".into(),
                format!("{:.1}", naive_time.as_secs_f64() * 1e3),
                format!("{total_steps}"),
                "—".into(),
                "—".into(),
            ],
            vec![
                "on (batch+cache)".into(),
                format!("{:.1}", opt_time.as_secs_f64() * 1e3),
                format!("{misses}"),
                format!("{hits}"),
                format!("{hit_rate:.1}%"),
            ],
        ],
    );
    println!(
        "\ndistinct constraints: {distinct} of {total_steps} total · speedup ×{speedup:.2} · checksum {naive_checksum:#x}"
    );
}

/// Order-sensitive digest of a fact-row bitmap (FNV-1a over the words).
fn checksum(rows: &kdap_query::RowSet) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in rows.to_words() {
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
