//! Experiment E13 — observability overhead.
//!
//! The tracing/metrics layer (`kdap-obs`) threads an `Obs` handle through
//! every hot path: text search, plan compile/optimize, semi-join steps,
//! the fused group-by kernels, and the session loop. The design contract
//! is that a *disabled* handle costs one branch — no clock read, no lock,
//! no allocation — so sessions that never ask for profiles pay nothing.
//!
//! This binary measures that contract on a labeled workload:
//!
//! 1. `off` vs `off2`: two identical obs-off configurations, bounding
//!    run-to-run noise on this machine.
//! 2. `off` vs `on`: the recorder enabled, metrics recorded on every
//!    step, a JSONL access-log line formatted per query, and every query
//!    offered to a slow-query ledger — the full service-grade telemetry
//!    path, giving the instrumented overhead.
//! 3. A micro-benchmark of the disabled calls themselves (timer + span),
//!    in ns/op.
//!
//! The three configurations are interleaved round-robin and the best
//! round of each kept, so CPU-frequency drift cancels instead of
//! masquerading as overhead. Every exploration is asserted bit-identical
//! across obs on/off (the recorder only observes; it never reorders
//! chunk merges). With `--check`, the run exits nonzero when the
//! obs-on overhead exceeds `KDAP_OBS_MAX_OVERHEAD_PCT` (default 2%)
//! plus the measured noise bound — the CI gate.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_obs
//!   cargo run --release -p kdap-bench --bin exp_obs -- --small --repeats=5 --check

use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::{Exploration, Kdap, StarNet};
use kdap_datagen::{
    build_aw_online, build_ebiz, generate_workload, EbizScale, Scale, WorkloadConfig,
};
use kdap_obs::{JsonLogger, LedgerEntry, Obs, SlowQueryLedger};
use kdap_warehouse::Warehouse;

struct DbResult {
    db: &'static str,
    facts: usize,
    nets: usize,
    off_ms: f64,
    off2_ms: f64,
    on_ms: f64,
    profile_stages: usize,
    profile_json: String,
}

impl DbResult {
    /// Overhead of the enabled recorder relative to the off baseline.
    fn on_overhead_pct(&self) -> f64 {
        (self.on_ms / self.off_ms - 1.0) * 100.0
    }
    /// Run-to-run noise between the two identical off runs.
    fn noise_pct(&self) -> f64 {
        (self.off2_ms / self.off_ms - 1.0).abs() * 100.0
    }
}

/// Runs the workload once. With `telemetry`, every query also pays the
/// service path a live server pays: a JSONL access-log line and a
/// slow-query-ledger insertion — so the measured "on" overhead covers
/// the whole telemetry stack, not just the recorder.
fn explore_all(
    kdap: &Kdap,
    nets: &[StarNet],
    telemetry: Option<(&JsonLogger, &SlowQueryLedger)>,
) -> (f64, Vec<Exploration>) {
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(nets.len());
    for (i, n) in nets.iter().enumerate() {
        let q0 = Instant::now();
        let ex = kdap.explore(n).expect("explore succeeds");
        if let Some((logger, ledger)) = telemetry {
            let latency_ns = q0.elapsed().as_nanos() as u64;
            logger.info(
                "access",
                &[
                    ("net", (i as u64).into()),
                    ("latency_ns", latency_ns.into()),
                ],
            );
            // The admission pre-check is the path a live server takes:
            // only queries the full ledger could retain pay the entry
            // construction.
            if ledger.admits(latency_ns) {
                ledger.record(LedgerEntry {
                    trace_id: None,
                    verb: "explore".to_string(),
                    keywords: format!("net-{i}"),
                    latency_ns,
                    status: 200,
                    breach: None,
                    profile: None,
                });
            }
        }
        out.push(ex);
    }
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

fn run_db(
    db: &'static str,
    build: impl Fn() -> Warehouse,
    threads: usize,
    repeats: usize,
) -> DbResult {
    eprintln!("building {db}...");
    let wh = build();
    let facts = wh.fact_rows();
    let queries = generate_workload(&wh, &WorkloadConfig::default());
    let off = Kdap::builder(wh).threads(threads).build().expect("measure");
    let on = Kdap::builder(build())
        .threads(threads)
        .observability(true)
        .build()
        .expect("measure");

    let nets: Vec<StarNet> = queries
        .iter()
        .filter_map(|q| off.interpret(&q.text()).into_iter().next())
        .map(|r| r.net)
        .collect();

    // The "on" configuration pays the full service telemetry path: log
    // lines go to a sink writer (formatting cost without disk noise) and
    // every query is offered to a bounded slow-query ledger.
    let logger = JsonLogger::to_writer(Box::new(std::io::sink()));
    let ledger = SlowQueryLedger::new(32);

    // Warm both sessions (plans, stats, measure vectors) so the timed
    // runs compare steady state.
    let (_, ex_off) = explore_all(&off, &nets, None);
    let (_, ex_on) = explore_all(&on, &nets, Some((&logger, &ledger)));
    assert_eq!(
        ex_off, ex_on,
        "{db}: obs on/off explorations must be bit-identical"
    );

    // Interleave the three configurations round-robin and keep the best
    // round of each, so CPU-frequency drift between runs cancels instead
    // of masquerading as recorder overhead.
    let (mut off_ms, mut on_ms, mut off2_ms) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..repeats {
        off_ms = off_ms.min(explore_all(&off, &nets, None).0);
        on_ms = on_ms.min(explore_all(&on, &nets, Some((&logger, &ledger))).0);
        off2_ms = off2_ms.min(explore_all(&off, &nets, None).0);
    }

    // One representative profile for the JSON artifact.
    let label = queries
        .first()
        .map(|q| q.text())
        .unwrap_or_else(|| "workload".to_string());
    let report = on.profile_query(&label).expect("profile succeeds");
    DbResult {
        db,
        facts,
        nets: nets.len(),
        off_ms,
        off2_ms,
        on_ms,
        profile_stages: report.profile.len(),
        profile_json: report.profile.to_json(),
    }
}

/// ns/op of the calls disabled sessions actually pay.
fn micro_disabled(iters: u64) -> (f64, f64) {
    let obs = Obs::disabled();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(obs.timer().stop());
    }
    let timer_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let t0 = Instant::now();
    for i in 0..iters {
        let s = obs.span("micro");
        if i == u64::MAX {
            s.rows_out(acc); // keep the guard alive without optimizing out
        }
    }
    let span_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    (timer_ns, span_ns)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let repeats: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--repeats="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let small = args.iter().any(|a| a.contains("small"));
    let check = args.iter().any(|a| a == "--check");
    let max_overhead_pct: f64 = std::env::var("KDAP_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let aw_scale = if small { Scale::small() } else { Scale::full() };
    let ebiz_scale = if small {
        EbizScale::small()
    } else {
        EbizScale::full()
    };

    let results = vec![
        run_db(
            "AW_ONLINE",
            || build_aw_online(aw_scale, 42).expect("generator is valid"),
            threads,
            repeats,
        ),
        run_db(
            "EBIZ",
            || build_ebiz(ebiz_scale, 42).expect("generator is valid"),
            threads,
            repeats,
        ),
    ];
    let (timer_ns, span_ns) = micro_disabled(20_000_000);

    println!("## E13 — observability overhead (threads={threads}, repeats={repeats})\n");
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.db.into(),
            format!("{}", r.nets),
            format!("{:.1}", r.off_ms),
            format!("{:.1}", r.off2_ms),
            format!("{:.1}", r.on_ms),
            format!("{:+.2}%", r.on_overhead_pct()),
            format!("{:.2}%", r.noise_pct()),
        ]);
    }
    print_table(
        &[
            "db",
            "nets",
            "off ms",
            "off2 ms",
            "on ms",
            "on overhead",
            "noise",
        ],
        &rows,
    );
    println!(
        "\ndisabled-handle micro: timer {timer_ns:.2} ns/op · span {span_ns:.2} ns/op \
         (obs off pays a branch, never a clock read)"
    );
    for r in &results {
        println!(
            "{}: {} facts · {} nets · profile of 1 query has {} stages",
            r.db, r.facts, r.nets, r.profile_stages
        );
    }

    let json = render_json(
        &results,
        threads,
        repeats,
        timer_ns,
        span_ns,
        max_overhead_pct,
    );
    let path = "results/BENCH_obs.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if check {
        // The enabled recorder may legitimately cost a little; what must
        // stay near zero is the *disabled* path. Enforce the threshold on
        // the enabled run, allowing measured noise on top.
        for r in &results {
            let budget = max_overhead_pct + r.noise_pct();
            assert!(
                r.on_overhead_pct() <= budget,
                "{}: obs-on overhead {:.2}% exceeds {:.2}% (threshold {}% + noise {:.2}%)",
                r.db,
                r.on_overhead_pct(),
                budget,
                max_overhead_pct,
                r.noise_pct(),
            );
        }
        println!("\ncheck passed: overhead within {max_overhead_pct}% (+ measured noise)");
    }
}

fn render_json(
    results: &[DbResult],
    threads: usize,
    repeats: usize,
    timer_ns: f64,
    span_ns: f64,
    max_overhead_pct: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E13\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"max_overhead_pct\": {max_overhead_pct},\n"));
    out.push_str(&format!(
        "  \"disabled_micro\": {{\"timer_ns_per_op\": {timer_ns:.3}, \"span_ns_per_op\": {span_ns:.3}}},\n"
    ));
    out.push_str("  \"databases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"db\": \"{}\", \"facts\": {}, \"nets\": {}, \"off_ms\": {:.3}, \
             \"off2_ms\": {:.3}, \"on_ms\": {:.3}, \"on_overhead_pct\": {:.3}, \
             \"noise_pct\": {:.3}, \"bit_identical\": true, \"profile_stages\": {},\n\
             \"sample_profile\": {}}}{}\n",
            r.db,
            r.facts,
            r.nets,
            r.off_ms,
            r.off2_ms,
            r.on_ms,
            r.on_overhead_pct(),
            r.noise_pct(),
            r.profile_stages,
            indent_json(&r.profile_json, 4),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Re-indents a pre-rendered JSON fragment for embedding.
fn indent_json(json: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    json.lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}
