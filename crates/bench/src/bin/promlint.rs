//! A small Prometheus text-exposition linter for CI: reads an exposition
//! (file argument or stdin), validates it with
//! [`kdap_obs::lint_exposition`], and exits nonzero on the first
//! violation. The same checker the server's own tests use — no external
//! promtool needed.
//!
//! Run:
//!   curl -s http://127.0.0.1:8642/metrics | cargo run -p kdap-bench --bin promlint
//!   cargo run -p kdap-bench --bin promlint -- metrics.txt

use std::io::Read;

use kdap_obs::lint_exposition;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, text) = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => (path.clone(), text),
            Err(e) => {
                eprintln!("promlint: cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("promlint: cannot read stdin: {e}");
                std::process::exit(2);
            }
            ("<stdin>".to_string(), text)
        }
    };
    match lint_exposition(&text) {
        Ok(samples) => {
            println!("promlint: {source}: OK ({samples} samples)");
        }
        Err(msg) => {
            eprintln!("promlint: {source}: {msg}");
            std::process::exit(1);
        }
    }
}
