//! Experiment E5 — reproduces **Figure 6**: bucket count vs. group-by
//! attribute score error on AW_RESELLER.
//!
//! Three lines, as in the paper: the reseller numerical attributes
//! AnnualSales, AnnualRevenue and NumberOfEmployees, under the
//! ProductSubcategory → Category roll-up. Same error metric and expected
//! convergence shape as Figure 5.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_fig6`

use kdap_bench::{bucket_sweep, hierarchy_rollup_cases, print_table};
use kdap_datagen::{build_aw_reseller, Scale};
use kdap_query::JoinIndex;

const BUCKET_COUNTS: &[usize] = &[5, 10, 20, 40, 80, 160, 320];

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_RESELLER ({} facts)...", scale.facts);
    let wh = build_aw_reseller(scale, 42).expect("generator is valid");
    let jidx = JoinIndex::build(&wh);
    let measure = wh.schema().measure_by_name("SalesRevenue").unwrap().clone();

    let subcat = wh
        .col_ref("DimProductSubcategory", "ProductSubcategoryName")
        .unwrap();
    let category = wh.col_ref("DimProductCategory", "CategoryName").unwrap();
    let cases = hierarchy_rollup_cases(&wh, &jidx, subcat, category, 30);
    println!(
        "## Figure 6 — bucket count vs attribute-score error (AW_RESELLER)\n\n\
         roll-up cases: {} subcategory→category\n",
        cases.len()
    );

    let attrs = [
        (
            "AnnualSales",
            wh.col_ref("DimReseller", "AnnualSales").unwrap(),
        ),
        (
            "AnnualRevenue",
            wh.col_ref("DimReseller", "AnnualRevenue").unwrap(),
        ),
        (
            "NumberOfEmployees",
            wh.col_ref("DimReseller", "NumberOfEmployees").unwrap(),
        ),
    ];

    let mut rows = Vec::new();
    for (label, attr) in attrs {
        let sweep = bucket_sweep(&wh, &jidx, &cases, attr, &measure, BUCKET_COUNTS);
        let mut row = vec![label.to_string()];
        row.extend(sweep.iter().map(|p| format!("{:.2}", p.mean_error_pct)));
        row.push(format!("{}", sweep.first().map(|p| p.cases).unwrap_or(0)));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["attribute".into()];
    headers.extend(BUCKET_COUNTS.iter().map(|b| format!("{b} buckets")));
    headers.push("cases".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!("\n(error = mean |corr_buckets − corr_ground_truth| × 100 over all roll-up cases)");
}
