//! Extension E8 — numeric/measure attributes as hit candidates, the
//! paper's first future-work item (§7).
//!
//! With the extension enabled, numeric keywords generate additional
//! interpretations over numerical attribute domains (prices, incomes,
//! measure columns). This experiment shows (a) the interpretation space
//! before/after, (b) that textual interpretations still outrank numeric
//! ones when both exist ("2001" as a calendar-year label vs. a price
//! point), and (c) end-to-end subspace selection through a numeric
//! constraint.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_numeric`

use kdap_bench::print_table;
use kdap_core::{Kdap, NumericConfig};
use kdap_datagen::{build_aw_online, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("measure defined");

    println!("## Numeric hit candidates (§7 future work)\n");

    // Pick a price point that actually exists in the data.
    let price_attr = kdap
        .warehouse()
        .col_ref("DimProduct", "DealerPrice")
        .unwrap();
    let some_price = kdap
        .warehouse()
        .column(price_attr)
        .get_float(0)
        .expect("product 1 has a dealer price");
    let price_kw = format!("{some_price}");

    let queries = ["2001", price_kw.as_str(), "80000 California"];
    let mut rows = Vec::new();
    for q in queries {
        let baseline = kdap.interpret(q).len();
        kdap.gen_config_mut().numeric = NumericConfig {
            enabled: true,
            ..NumericConfig::default()
        };
        let ranked = kdap.interpret(q);
        let numeric_count = ranked
            .iter()
            .filter(|r| r.net.constraints.iter().any(|c| c.group.numeric.is_some()))
            .count();
        let top = ranked
            .first()
            .map(|r| {
                let d = r.net.display(kdap.warehouse());
                if d.len() > 70 {
                    format!("{}…", &d[..d.char_indices().take(70).last().unwrap().0])
                } else {
                    d
                }
            })
            .unwrap_or_else(|| "(none)".into());
        rows.push(vec![
            q.to_string(),
            format!("{baseline}"),
            format!("{}", ranked.len()),
            format!("{numeric_count}"),
            top,
        ]);
        kdap.gen_config_mut().numeric = NumericConfig::default();
    }
    print_table(
        &[
            "query",
            "interpretations (text only)",
            "with numeric hits",
            "numeric nets",
            "top interpretation",
        ],
        &rows,
    );

    // End-to-end: explore a numeric interpretation.
    kdap.gen_config_mut().numeric = NumericConfig {
        enabled: true,
        ..NumericConfig::default()
    };
    let ranked = kdap.interpret(&price_kw);
    if let Some(r) = ranked
        .iter()
        .find(|r| r.net.constraints.iter().any(|c| c.group.numeric.is_some()))
    {
        let ex = kdap.explore(&r.net).expect("star net evaluates");
        println!(
            "\nexploring numeric interpretation of \"{price_kw}\": {} fact points, revenue {:.2}, {} facet panels",
            ex.subspace_size,
            ex.total_aggregate,
            ex.panels.len()
        );
    }
}
