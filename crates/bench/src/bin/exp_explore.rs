//! Experiment E12 — single-pass fused facet aggregation.
//!
//! The explore phase ranks every candidate facet attribute of a subspace
//! by correlation against the roll-up spaces (§5). The per-facet pipeline
//! pays several scans of the subspace bitmap *per candidate* (group-by,
//! domain projection, bucket series, plus one per roll-up space); the
//! fused pipeline materializes the measure once and computes *all*
//! candidate group-bys in one scan of the subspace and one scan per
//! roll-up space, choosing dense accumulator arrays or a hash fallback
//! per attribute from dictionary cardinality.
//!
//! This binary runs full facet ranking over a labeled workload twice —
//! per-facet (the seed's execution, kept as the oracle) and fused —
//! verifies the explorations are bit-identical (all kernels share the
//! same fixed chunk-merge order, so this holds at any thread count),
//! and reports wall times, facets/sec, and scans saved. Results also land in
//! machine-readable form at `results/BENCH_explore.json`.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_explore               # AW_ONLINE + EBIZ
//!   cargo run --release -p kdap-bench --bin exp_explore -- --db=ebiz
//!   cargo run --release -p kdap-bench --bin exp_explore -- --small --threads=4

use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::{FacetConfig, FacetKernel, Kdap, StarNet};
use kdap_datagen::{
    build_aw_online, build_ebiz, generate_workload, EbizScale, Scale, WorkloadConfig,
};
use kdap_warehouse::Warehouse;

struct DbResult {
    db: &'static str,
    facts: usize,
    queries: usize,
    nets: usize,
    candidates: usize,
    scans_fused: usize,
    scans_old: usize,
    per_facet_ms: f64,
    fused_ms: f64,
    repeats: usize,
}

impl DbResult {
    fn speedup(&self) -> f64 {
        self.per_facet_ms / self.fused_ms.max(1e-9)
    }
    fn facets_per_sec(&self, ms: f64) -> f64 {
        (self.candidates * self.repeats) as f64 / (ms / 1e3).max(1e-9)
    }
}

fn run_db(
    db: &'static str,
    build: impl Fn() -> Warehouse,
    threads: usize,
    repeats: usize,
) -> DbResult {
    eprintln!("building {db}...");
    let wh = build();
    let facts = wh.fact_rows();
    let queries = generate_workload(&wh, &WorkloadConfig::default());
    let fused = Kdap::builder(wh)
        .threads(threads)
        .build()
        .expect("measure defined");
    let per_facet = Kdap::builder(build())
        .threads(threads)
        .facet_config(FacetConfig {
            kernel: FacetKernel::PerFacet,
            ..FacetConfig::default()
        })
        .build()
        .expect("measure defined");

    // Top-ranked interpretation per query — the net a user actually explores.
    let nets: Vec<StarNet> = queries
        .iter()
        .filter_map(|q| fused.interpret(&q.text()).into_iter().next())
        .map(|r| r.net)
        .collect();

    // Instrumented pass: candidate counts and scan accounting, plus the
    // fused explorations for the oracle check. Warms both sessions'
    // subspace/semi-join caches so the timed runs compare kernels only.
    let mut candidates = 0;
    let mut scans_fused = 0;
    let mut scans_old = 0;
    let mut mismatches = 0;
    for net in &nets {
        let (ex, report) = fused.explain_explore(net).expect("explore succeeds");
        candidates += report.candidates;
        scans_fused += report.scans_fused;
        scans_old += report.scans_old;
        let oracle = per_facet.explore(net).expect("explore succeeds");
        if ex != oracle {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "fused explorations must equal the per-facet oracle"
    );

    let t0 = Instant::now();
    for _ in 0..repeats {
        for net in &nets {
            let _ = per_facet.explore(net).expect("explore succeeds");
        }
    }
    let per_facet_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    for _ in 0..repeats {
        for net in &nets {
            let _ = fused.explore(net).expect("explore succeeds");
        }
    }
    let fused_ms = t0.elapsed().as_secs_f64() * 1e3;

    DbResult {
        db,
        facts,
        queries: queries.len(),
        nets: nets.len(),
        candidates,
        scans_fused,
        scans_old,
        per_facet_ms,
        fused_ms,
        repeats,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let repeats: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--repeats="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let small = args.iter().any(|a| a.contains("small"));
    let only_db = args
        .iter()
        .find_map(|a| a.strip_prefix("--db="))
        .map(str::to_owned);

    let aw_scale = if small { Scale::small() } else { Scale::full() };
    let ebiz_scale = if small {
        EbizScale::small()
    } else {
        EbizScale::full()
    };

    let mut results: Vec<DbResult> = Vec::new();
    if only_db.as_deref().is_none_or(|d| d.contains("online")) {
        results.push(run_db(
            "AW_ONLINE",
            || build_aw_online(aw_scale, 42).expect("generator is valid"),
            threads,
            repeats,
        ));
    }
    if only_db.as_deref().is_none_or(|d| d.contains("ebiz")) {
        results.push(run_db(
            "EBIZ",
            || build_ebiz(ebiz_scale, 42).expect("generator is valid"),
            threads,
            repeats,
        ));
    }

    println!(
        "## E12 — single-pass fused facet aggregation (threads={threads}, repeats={repeats})\n"
    );
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.db.into(),
            "per-facet".into(),
            format!("{:.1}", r.per_facet_ms),
            format!("{:.0}", r.facets_per_sec(r.per_facet_ms)),
            format!("{}", r.scans_old),
            "—".into(),
            "—".into(),
        ]);
        rows.push(vec![
            r.db.into(),
            "fused".into(),
            format!("{:.1}", r.fused_ms),
            format!("{:.0}", r.facets_per_sec(r.fused_ms)),
            format!("{}", r.scans_fused),
            format!("{}", r.scans_old - r.scans_fused),
            format!("×{:.2}", r.speedup()),
        ]);
    }
    print_table(
        &[
            "db", "pipeline", "wall ms", "facets/s", "scans", "saved", "speedup",
        ],
        &rows,
    );
    for r in &results {
        println!(
            "\n{}: {} facts · {} queries · {} nets · {} candidate facets · scans {} → {} (saved {})",
            r.db,
            r.facts,
            r.queries,
            r.nets,
            r.candidates,
            r.scans_old,
            r.scans_fused,
            r.scans_old - r.scans_fused,
        );
    }

    let json = render_json(&results, threads, repeats);
    let path = "results/BENCH_explore.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace carries no serde): one object per
/// database with timings, throughput and scan accounting.
fn render_json(results: &[DbResult], threads: usize, repeats: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"E12\",\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"databases\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"db\": \"{}\", \"facts\": {}, \"queries\": {}, \"nets\": {}, \
             \"candidate_facets\": {}, \"scans_per_facet\": {}, \"scans_fused\": {}, \
             \"scans_saved\": {}, \"per_facet_ms\": {:.3}, \"fused_ms\": {:.3}, \
             \"per_facet_facets_per_sec\": {:.1}, \"fused_facets_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            r.db,
            r.facts,
            r.queries,
            r.nets,
            r.candidates,
            r.scans_old,
            r.scans_fused,
            r.scans_old - r.scans_fused,
            r.per_facet_ms,
            r.fused_ms,
            r.facets_per_sec(r.per_facet_ms),
            r.facets_per_sec(r.fused_ms),
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
