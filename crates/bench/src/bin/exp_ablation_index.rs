//! Ablation A1 — attribute-level vs. tuple-level text indexing (§3).
//!
//! The paper rejects tuple-level indexing (the DBExplorer/DISCOVER/BANKS
//! convention) because a tuple hit cannot say *which attribute* matched,
//! and "query disambiguation is crucial for keyword-driven analytical
//! processing". This experiment quantifies the loss on the AW_ONLINE
//! workload keywords:
//!
//! * **conflation rate** — fraction of keywords for which at least one
//!   tuple hit matches in ≥2 different attribute domains, or for which
//!   two tuple hits of the same table match in different domains (the §3
//!   `ABC` scenario: the hits look identical but denote different
//!   subspaces);
//! * **index sizes** — tuple documents vs. attribute-instance documents.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_ablation_index`

use std::collections::HashSet;

use kdap_bench::print_table;
use kdap_datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};
use kdap_textindex::{SearchOptions, TextIndex, TupleIndex};

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let attr_index = TextIndex::build(&wh);
    let tuple_index = TupleIndex::build(&wh);
    let queries = generate_workload(&wh, &WorkloadConfig::default());

    let keywords: Vec<String> = {
        let mut ks: Vec<String> = queries
            .iter()
            .flat_map(|q| q.keywords.iter().cloned())
            .collect();
        ks.sort();
        ks.dedup();
        ks
    };

    let opts = SearchOptions::default();
    let mut conflated = 0usize;
    let mut with_hits = 0usize;
    let mut total_tuple_hits = 0usize;
    let mut total_attr_groups = 0usize;
    for kw in &keywords {
        let tuple_hits = tuple_index.search_keyword(kw, 5_000);
        if tuple_hits.is_empty() {
            continue;
        }
        with_hits += 1;
        total_tuple_hits += tuple_hits.len();

        let attr_hits = attr_index.search_keyword(kw, &opts);
        let groups: HashSet<_> = attr_hits
            .iter()
            .map(|h| attr_index.doc(h.doc).attr)
            .collect();
        total_attr_groups += groups.len();

        // Conflation: within one table, did the keyword match different
        // attribute domains across (or within) tuples? A tuple-level
        // system presents those hits identically.
        let mut domains_per_table: std::collections::HashMap<_, HashSet<_>> =
            std::collections::HashMap::new();
        let mut intra_tuple = false;
        for h in &tuple_hits {
            let matched = tuple_index.matched_attrs(kw, h.doc);
            if matched.len() > 1 {
                intra_tuple = true;
            }
            domains_per_table
                .entry(tuple_index.doc(h.doc).table)
                .or_default()
                .extend(matched);
        }
        if intra_tuple || domains_per_table.values().any(|d| d.len() > 1) {
            conflated += 1;
        }
    }

    println!("## Ablation — attribute-level vs tuple-level indexing (AW_ONLINE)\n");
    print_table(
        &[
            "metric",
            "attribute-level (paper §3)",
            "tuple-level (prior work)",
        ],
        &[
            vec![
                "virtual documents".into(),
                format!("{}", attr_index.n_docs()),
                format!("{}", tuple_index.n_docs()),
            ],
            vec![
                "index size".into(),
                format!("{:.2} MB", attr_index.approx_bytes() as f64 / 1e6),
                "n/a (no positions kept)".into(),
            ],
            vec![
                "avg interpretations per keyword".into(),
                format!(
                    "{:.1} hit groups (one per attribute domain)",
                    total_attr_groups as f64 / with_hits.max(1) as f64
                ),
                format!(
                    "{:.0} raw tuple hits (domain unknown)",
                    total_tuple_hits as f64 / with_hits.max(1) as f64
                ),
            ],
            vec![
                "keywords with conflated domains".into(),
                "0 (structurally impossible)".into(),
                format!(
                    "{} / {} ({:.0}%)",
                    conflated,
                    with_hits,
                    100.0 * conflated as f64 / with_hits.max(1) as f64
                ),
            ],
        ],
    );
    println!(
        "\nA conflated keyword is one whose tuple hits span ≥2 attribute domains \
         within a table — the §3 \"ABC\" case where tuple-level indexing cannot \
         distinguish semantically different subspaces."
    );
}
