//! Experiment E2 — reproduces **Table 2**: the dynamically selected
//! group-by attributes and attribute instances of the Product dimension
//! after the analyst picks star net #1 of "California Mountain Bikes".
//!
//! Expected shape (paper): ProductSubCategory is promoted with the
//! "Mountain Bikes" hit pinned; DealerPrice shows merged numeric ranges;
//! ModelName and Color follow with their ranked instances.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_table2 [-- --scale small]`

use kdap_bench::print_table;
use kdap_core::Kdap;
use kdap_datagen::{build_aw_online, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--scale=small" || a == "small") {
        Scale::small()
    } else {
        Scale::full()
    };
    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let wh = build_aw_online(scale, 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("measure defined");
    kdap.facet_config_mut().top_k_attrs = 4;
    kdap.facet_config_mut().top_k_instances = 5;
    kdap.facet_config_mut().display_intervals = 3;

    let ranked = kdap.interpret("California Mountain Bikes");
    let net = &ranked.first().expect("interpretations exist").net;
    println!(
        "## Table 2 — selected attributes & instances (Product dimension)\n\nstar net: {}\n",
        net.display(kdap.warehouse())
    );
    let ex = kdap.explore(net).expect("star net evaluates");
    println!(
        "subspace: {} fact points, total revenue {:.2}\n",
        ex.subspace_size, ex.total_aggregate
    );

    for panel in &ex.panels {
        println!("### {} Dimension", panel.dimension);
        let mut rows = Vec::new();
        for attr in &panel.attrs {
            for (i, e) in attr.entries.iter().enumerate() {
                rows.push(vec![
                    if i == 0 {
                        attr.name.clone()
                    } else {
                        String::new()
                    },
                    if i == 0 {
                        format!(
                            "{:+.3}{}",
                            attr.score,
                            if attr.promoted { " (hit)" } else { "" }
                        )
                    } else {
                        String::new()
                    },
                    format!("{}{}", e.label, if e.is_hit { " *" } else { "" }),
                    format!("{:.2}", e.aggregate),
                ]);
            }
        }
        print_table(
            &[
                "group-by attribute",
                "score",
                "attribute instance",
                "revenue",
            ],
            &rows,
        );
        println!();
    }
}
