//! Experiment E16 — multi-tenant server load test.
//!
//! Drives an in-process [`KdapServer`] (the same engine `kdap serve`
//! runs) with N concurrent client connections over a mixed request
//! stream — keyword explorations, differentiations, and stats reads —
//! split across two tenants, and reports per-tenant throughput and
//! latency percentiles. Each client thread opens one TCP connection per
//! request (`Connection: close`), so the numbers include accept + parse
//! overhead, matching what a simple HTTP client experiences.
//!
//! With `--check`, the run exits nonzero when any request fails (a
//! non-2xx status) — the CI smoke gate. Admission-control 429s count as
//! failures here because the drive rate is sized under `max_inflight`.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_serve
//!   cargo run --release -p kdap-bench --bin exp_serve -- --small --clients=4 --check

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::Kdap;
use kdap_datagen::{
    build_aw_online, build_ebiz, generate_workload, EbizScale, Scale, WorkloadConfig,
};
use kdap_obs::lint_exposition;
use kdap_server::{EngineRegistry, KdapServer, ServerConfig};

/// One completed request: tenant index, action, latency, HTTP status.
struct Sample {
    tenant: usize,
    action: &'static str,
    micros: u64,
    status: u16,
}

const TENANTS: [&str; 2] = ["aw", "ebiz"];

/// Minimal HTTP/1.1 client: one request per connection, returns the
/// status code (0 on transport error).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: kdap\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return 0;
    }
    let mut raw = Vec::new();
    if stream.read_to_end(&mut raw).is_err() {
        return 0;
    }
    let text = String::from_utf8_lossy(&raw);
    text.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Like [`request`] but also returns the response body — used for the
/// post-load `/metrics` scrape.
fn request_body(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (0, String::new());
    };
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: kdap\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return (0, String::new());
    }
    let mut raw = Vec::new();
    if stream.read_to_end(&mut raw).is_err() {
        return (0, String::new());
    }
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// The request mix one client thread walks, round-robin: index `i`
/// picks the tenant, the keyword, and the action; `offset` staggers each
/// client into the cycle so tenants and actions interleave across the
/// fleet.
fn drive(
    addr: SocketAddr,
    keywords: &[Vec<String>],
    requests: usize,
    offset: usize,
) -> Vec<Sample> {
    let mut out = Vec::with_capacity(requests);
    for i in (offset..).take(requests) {
        // Shift the tenant by the mix cycle so every action lands on
        // every tenant (plain `i % 2` would pin odd actions to one).
        let tenant = (i + i / 6) % TENANTS.len();
        let t = TENANTS[tenant];
        let (action, method, path, body): (&'static str, _, String, String) = match i % 6 {
            5 => ("stats", "GET", format!("/v1/{t}/stats"), String::new()),
            3 => {
                let kw = &keywords[tenant][i / 2 % keywords[tenant].len()];
                (
                    "differentiate",
                    "POST",
                    format!("/v1/{t}/differentiate"),
                    format!("{{\"keywords\": \"{kw}\"}}"),
                )
            }
            _ => {
                let kw = &keywords[tenant][i / 2 % keywords[tenant].len()];
                (
                    "explore",
                    "POST",
                    format!("/v1/{t}/explore"),
                    format!("{{\"keywords\": \"{kw}\"}}"),
                )
            }
        };
        let t0 = Instant::now();
        let status = request(addr, method, &path, &body);
        out.push(Sample {
            tenant,
            action,
            micros: t0.elapsed().as_micros() as u64,
            status,
        });
    }
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a.contains("small"));
    let check = args.iter().any(|a| a == "--check");
    let clients: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--clients="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let per_client: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--requests="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if small { 30 } else { 120 });

    eprintln!("building tenants...");
    let aw = build_aw_online(Scale::small(), 42).expect("generator is valid");
    let ebiz = build_ebiz(EbizScale::small(), 7).expect("generator is valid");
    let kw_aw: Vec<String> = generate_workload(&aw, &WorkloadConfig::default())
        .iter()
        .take(16)
        .map(|q| q.text())
        .collect();
    let kw_ebiz: Vec<String> = generate_workload(&ebiz, &WorkloadConfig::default())
        .iter()
        .take(16)
        .map(|q| q.text())
        .collect();
    let keywords = vec![kw_aw, kw_ebiz];
    let registry = EngineRegistry::new()
        .with(
            TENANTS[0],
            Arc::new(
                Kdap::builder(aw)
                    .cache_capacity(64)
                    .observability(true)
                    .build()
                    .expect("measure defined"),
            ),
        )
        .with(
            TENANTS[1],
            Arc::new(
                Kdap::builder(ebiz)
                    .cache_capacity(64)
                    .observability(true)
                    .build()
                    .expect("measure defined"),
            ),
        );
    let config = ServerConfig {
        port: 0,
        workers: clients.max(4),
        ..ServerConfig::default()
    };
    let server = KdapServer::start(registry, &config).expect("ephemeral bind");
    let addr = server.addr();
    eprintln!("server on {addr}, {clients} clients x {per_client} requests");

    let t0 = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|s| {
        let keywords = &keywords;
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || drive(addr, keywords, per_client, c)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Telemetry sweep: provoke one governor breach per tenant (instant
    // deadline → typed 408), then scrape the cross-tenant Prometheus
    // exposition and lint it with the in-repo checker.
    for (tenant, kws) in TENANTS.iter().zip(&keywords) {
        let kw = kws.first().map(String::as_str).unwrap_or("sales");
        let status = request(
            addr,
            "POST",
            &format!("/v1/{tenant}/explore"),
            &format!("{{\"keywords\": \"{kw}\", \"timeout_ms\": 0}}"),
        );
        assert_eq!(status, 408, "instant deadline on `{tenant}` must breach");
    }
    let (status, exposition) = request_body(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "/metrics must serve under load");
    let prom_samples = match lint_exposition(&exposition) {
        Ok(n) => n,
        Err(e) => panic!("/metrics exposition failed lint: {e}"),
    };
    for t in TENANTS {
        assert!(
            exposition.contains(&format!("tenant=\"{t}\"")),
            "exposition must label tenant `{t}`"
        );
    }
    for needle in [
        "kdap_http_requests",
        "kdap_http_explore_latency_ns_bucket{",
        "kdap_governor_timeouts",
    ] {
        assert!(
            exposition.contains(needle),
            "exposition must carry {needle}"
        );
    }
    eprintln!("metrics: {prom_samples} prometheus samples, lint clean, both tenants labeled");

    server.shutdown();

    // Aggregate per (tenant, action) and per tenant.
    let mut by_key: BTreeMap<(usize, &'static str), Vec<u64>> = BTreeMap::new();
    let mut failures = 0usize;
    for sm in &samples {
        if !(200..300).contains(&sm.status) {
            failures += 1;
        }
        by_key
            .entry((sm.tenant, sm.action))
            .or_default()
            .push(sm.micros);
    }
    let total = samples.len();
    println!(
        "## E16 — server load ({clients} clients, {total} requests, {:.2}s wall, \
         {:.0} req/s, {failures} failures)\n",
        wall_s,
        total as f64 / wall_s
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for ((tenant, action), mut lat) in by_key {
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 0.50),
            percentile(&lat, 0.95),
            percentile(&lat, 0.99),
        );
        rows.push(vec![
            TENANTS[tenant].to_string(),
            action.to_string(),
            format!("{}", lat.len()),
            format!("{:.2}", p50 as f64 / 1e3),
            format!("{:.2}", p95 as f64 / 1e3),
            format!("{:.2}", p99 as f64 / 1e3),
        ]);
        json_rows.push(format!(
            "    {{\"tenant\": \"{}\", \"action\": \"{}\", \"requests\": {}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            TENANTS[tenant],
            action,
            lat.len(),
            p50 as f64 / 1e3,
            p95 as f64 / 1e3,
            p99 as f64 / 1e3,
        ));
    }
    print_table(
        &["tenant", "action", "requests", "p50 ms", "p95 ms", "p99 ms"],
        &rows,
    );

    let json = format!(
        "{{\n  \"experiment\": \"E16\",\n  \"clients\": {clients},\n  \
         \"requests\": {total},\n  \"wall_s\": {wall_s:.3},\n  \
         \"throughput_rps\": {:.1},\n  \"failures\": {failures},\n  \
         \"latencies\": [\n{}\n  ]\n}}\n",
        total as f64 / wall_s,
        json_rows.join(",\n"),
    );
    let path = "results/BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if check {
        assert!(
            failures == 0,
            "{failures} of {total} requests failed under load"
        );
        println!("\ncheck passed: {total} requests, zero failures");
    }
}
