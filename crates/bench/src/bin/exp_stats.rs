//! Experiment E7 — system statistics and performance claims (§6.1/§6.5):
//! offline text-index size (paper: ~5 MB for both databases), and the
//! latency of the 500-iteration interval merge (paper: < 5 ms, no DBMS
//! access) plus end-to-end differentiate/explore timings.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_stats`

use std::time::Instant;

use kdap_bench::print_table;
use kdap_core::facet::{merge_intervals, AnnealConfig};
use kdap_core::Kdap;
use kdap_datagen::{build_aw_online, build_aw_reseller, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    println!("## System statistics (E7)\n");

    let mut rows = Vec::new();
    for (name, wh) in [
        ("AW_ONLINE", build_aw_online(scale, 42).expect("valid")),
        ("AW_RESELLER", build_aw_reseller(scale, 42).expect("valid")),
    ] {
        let t0 = Instant::now();
        let kdap = Kdap::builder(wh).build().expect("measure");
        let build_ms = t0.elapsed().as_millis();
        rows.push(vec![
            name.to_string(),
            format!("{}", kdap.warehouse().fact_rows()),
            format!("{}", kdap.warehouse().tables().len()),
            format!("{}", kdap.warehouse().searchable_columns().count()),
            format!("{}", kdap.text_index().n_docs()),
            format!("{:.2} MB", kdap.text_index().approx_bytes() as f64 / 1e6),
            format!("{:.2} MB", kdap.warehouse().approx_bytes() as f64 / 1e6),
            format!("{build_ms} ms"),
        ]);
        if name == "AW_ONLINE" {
            // Differentiate-phase latency on a representative query.
            let t = Instant::now();
            let ranked = kdap.interpret("California Mountain Bikes");
            let interpret_ms = t.elapsed().as_secs_f64() * 1000.0;
            let t = Instant::now();
            let _ex = kdap.explore(&ranked[0].net).expect("star net evaluates");
            let explore_ms = t.elapsed().as_secs_f64() * 1000.0;
            println!(
                "differentiate(\"California Mountain Bikes\"): {:.1} ms for {} candidates; \
                 explore(top net): {:.1} ms\n",
                interpret_ms,
                ranked.len(),
                explore_ms
            );
        }
    }
    print_table(
        &[
            "database",
            "facts",
            "tables",
            "searchable domains",
            "virtual docs",
            "text index",
            "warehouse",
            "index build",
        ],
        &rows,
    );

    // §6.5: "a 500 iterations interval merge operation takes less than
    // 5 milliseconds" — pure in-memory array manipulation.
    let x: Vec<f64> = (0..40).map(|i| ((i * 37) % 23) as f64).collect();
    let y: Vec<f64> = (0..40).map(|i| ((i * 17) % 19) as f64).collect();
    let cfg = AnnealConfig {
        iterations: 500,
        ..AnnealConfig::default()
    };
    // Warm up, then time a batch.
    let _ = merge_intervals(&x, &y, &cfg);
    let t = Instant::now();
    const RUNS: usize = 100;
    for _ in 0..RUNS {
        let _ = std::hint::black_box(merge_intervals(&x, &y, &cfg));
    }
    let per_run_ms = t.elapsed().as_secs_f64() * 1000.0 / RUNS as f64;
    println!(
        "\n500-iteration interval merge (40 basic intervals): {per_run_ms:.3} ms \
         (paper claims < 5 ms) → {}",
        if per_run_ms < 5.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
