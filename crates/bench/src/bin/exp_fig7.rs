//! Experiment E6 — reproduces **Figure 7/8**: convergence of the
//! simulated-annealing interval merge (Algorithm 2).
//!
//! Three scenarios, as in the paper:
//!   (a) query "France Clothing",    attribute Customer YearlyIncome (AW_ONLINE)
//!   (b) query "France Accessories", attribute Customer YearlyIncome (AW_ONLINE)
//!   (c) query "British Columbia",   attribute Reseller NumberOfEmployees (AW_RESELLER)
//!
//! Each scenario runs the real pipeline — interpret the query, take the
//! top star net, build the 40 basic intervals against the roll-up space —
//! then merges into K ∈ {5, 6, 7} display intervals, reporting the error
//! (|corr_merged − corr_basic| × 100) as iterations advance. Expected
//! shape: error drops sharply within ~100 iterations; smaller K converges
//! more slowly.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_fig7`

use kdap_bench::print_table;
use kdap_core::facet::{merge_intervals, rank_dimension_attrs, AnnealConfig, NumericSeries};
use kdap_core::{materialize, rollup_spaces, Kdap};
use kdap_datagen::{build_aw_online, build_aw_reseller, Scale};
use kdap_warehouse::ColRef;

const CHECKPOINTS: &[usize] = &[0, 10, 20, 30, 50, 75, 100, 150, 200, 300, 500];

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    println!("## Figure 7 — simulated-annealing interval merge convergence\n");

    eprintln!("building AW_ONLINE ({} facts)...", scale.facts);
    let online = Kdap::builder(build_aw_online(scale, 42).expect("valid"))
        .build()
        .expect("measure");
    eprintln!("building AW_RESELLER ({} facts)...", scale.facts);
    let reseller = Kdap::builder(build_aw_reseller(scale, 42).expect("valid"))
        .build()
        .expect("measure");

    let scenarios: [(&Kdap, &str, &str, &str, &str); 3] = [
        (
            &online,
            "France Clothing",
            "Customer",
            "DimCustomer",
            "YearlyIncome",
        ),
        (
            &online,
            "France Accessories",
            "Customer",
            "DimCustomer",
            "YearlyIncome",
        ),
        (
            &reseller,
            "\"British Columbia\"",
            "Reseller",
            "DimReseller",
            "NumberOfEmployees",
        ),
    ];

    for (kdap, query, dim_name, table, column) in scenarios {
        let attr = kdap
            .warehouse()
            .col_ref(table, column)
            .expect("attr exists");
        match numeric_series(kdap, query, dim_name, attr) {
            Some(series) => report_scenario(query, column, &series),
            None => println!("### \"{query}\" / {column}: no numeric series (empty subspace)\n"),
        }
    }
    println!("(error = |corr(merged) − corr(basic intervals)| × 100; 40 basic intervals)");
}

/// Runs the differentiate phase and extracts the basic-interval series of
/// one numerical attribute from the attribute-ranking machinery.
fn numeric_series(kdap: &Kdap, query: &str, dim_name: &str, attr: ColRef) -> Option<NumericSeries> {
    let ranked = kdap.interpret(query);
    let net = &ranked.first()?.net;
    eprintln!("  \"{query}\" → {}", net.display(kdap.warehouse()));
    let wh = kdap.warehouse();
    let jidx = kdap.join_index();
    let sub = materialize(wh, jidx, net);
    if sub.is_empty() {
        return None;
    }
    let rups = rollup_spaces(wh, jidx, net);
    let dim = wh.schema().dimension_by_name(dim_name)?;
    let ranked_attrs = rank_dimension_attrs(
        wh,
        jidx,
        net,
        &sub,
        &rups,
        dim,
        kdap.measure(),
        kdap.facet_config(),
    );
    ranked_attrs
        .into_iter()
        .find(|ra| ra.attr == attr)
        .and_then(|ra| ra.numeric)
}

fn report_scenario(query: &str, column: &str, series: &NumericSeries) {
    println!("### query \"{query}\", attribute domain {column}\n");
    let mut rows = Vec::new();
    for k in [5usize, 6, 7] {
        let cfg = AnnealConfig {
            target_intervals: k,
            iterations: 500,
            ..AnnealConfig::default()
        };
        let result = merge_intervals(&series.ds, &series.rup, &cfg);
        let mut row = vec![format!("K={k}")];
        for &cp in CHECKPOINTS {
            let err = if cp == 0 {
                // Error of the equal-width start, before any iteration.
                result.history.first().copied().unwrap_or(result.error)
            } else {
                result.history[(cp - 1).min(result.history.len() - 1)]
            };
            row.push(format!("{:.2}", err * 100.0));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["target".into()];
    headers.extend(CHECKPOINTS.iter().map(|c| format!("iter {c}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
    println!();
}
