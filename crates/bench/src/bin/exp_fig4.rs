//! Experiment E3/E3b — reproduces **Figure 4**: evaluation of the four
//! star-net ranking methods on a 50-query labeled workload.
//!
//! For each query, candidate star nets are generated once and ranked by
//! each method; the curve reports the percentage of queries whose
//! intended interpretation falls within the top-x. Expected shape
//! (paper): standard ≥ no-group-size-norm ≫ no-group-number-norm and
//! baseline; standard reaches ~90%+ at rank 1 and 100% within the top 5.
//!
//! Run:
//!   cargo run --release -p kdap-bench --bin exp_fig4              # AW_ONLINE
//!   cargo run --release -p kdap-bench --bin exp_fig4 -- --db=reseller
//!   cargo run --release -p kdap-bench --bin exp_fig4 -- --threads=4

use std::time::Instant;

use kdap_bench::{cumulative_curve, print_table, rank_of_intended};
use kdap_core::{generate_star_nets, rank_star_nets, GenConfig, Kdap, RankMethod};
use kdap_datagen::{build_aw_online, build_aw_reseller, generate_workload, Scale, WorkloadConfig};
use kdap_textindex::TextIndex;

const MAX_RANK: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reseller = args.iter().any(|a| a.contains("reseller"));
    let threads: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let scale = if args.iter().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };

    let (wh, wl_cfg, db_name) = if reseller {
        // §6.3: reseller queries draw keywords from dimensions the online
        // fact table does not use, like Reseller and Employee.
        (
            build_aw_reseller(scale, 42).expect("generator is valid"),
            WorkloadConfig {
                dimensions: Some(vec!["Reseller".into(), "Employee".into()]),
                ..WorkloadConfig::default()
            },
            "AW_RESELLER",
        )
    } else {
        (
            build_aw_online(scale, 42).expect("generator is valid"),
            WorkloadConfig::default(),
            "AW_ONLINE",
        )
    };
    eprintln!("building {db_name} ({} facts)...", scale.facts);
    let index = TextIndex::build(&wh);
    let queries = generate_workload(&wh, &wl_cfg);
    println!(
        "## Figure 4 — star-net ranking methods, {} labeled queries ({db_name})\n",
        queries.len()
    );

    // Generate candidates once per query; methods only re-rank.
    let gen_cfg = GenConfig::default();
    let mut per_method_ranks: Vec<Vec<Option<usize>>> =
        vec![Vec::with_capacity(queries.len()); RankMethod::ALL.len()];
    let mut unreachable = 0usize;
    for q in &queries {
        let refs: Vec<&str> = q.keywords.iter().map(String::as_str).collect();
        let nets = generate_star_nets(&wh, &index, &refs, &gen_cfg);
        if nets.is_empty() {
            unreachable += 1;
        }
        for (mi, method) in RankMethod::ALL.iter().enumerate() {
            let ranked = rank_star_nets(nets.clone(), *method);
            per_method_ranks[mi].push(rank_of_intended(&wh, &ranked, q));
        }
    }
    if unreachable > 0 {
        println!("(queries with no candidate star net at all: {unreachable})\n");
    }
    if args.iter().any(|a| a.contains("ranks")) {
        for (q, r) in queries.iter().zip(&per_method_ranks[0]) {
            println!("RANK {:?} {}", r, q.text());
        }
    }

    let mut rows = Vec::new();
    for (mi, method) in RankMethod::ALL.iter().enumerate() {
        let curve = cumulative_curve(&per_method_ranks[mi], MAX_RANK);
        let mut row = vec![method.label().to_string()];
        row.extend(curve.iter().map(|v| format!("{v:.0}%")));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["method".into()];
    headers.extend((1..=MAX_RANK).map(|x| format!("top-{x}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    // The paper calls out its worst case ("Sydney Helmet Discount", top
    // 5); report ours for the standard method.
    let worst = per_method_ranks[0]
        .iter()
        .zip(&queries)
        .filter_map(|(r, q)| r.map(|rank| (rank, q.text())))
        .max_by_key(|(rank, _)| *rank);
    if let Some((rank, text)) = worst {
        println!("\nworst satisfied query under standard ranking: \"{text}\" at rank {rank}");
    }
    let missed: Vec<String> = per_method_ranks[0]
        .iter()
        .zip(&queries)
        .filter(|(r, _)| r.is_none())
        .map(|(_, q)| q.text())
        .collect();
    if !missed.is_empty() {
        println!("queries never satisfied (intended net not generated): {missed:?}");
    }

    // The Table 3 analogue: the full workload, two queries per row.
    println!(
        "
### workload queries (Table 3 analogue)
"
    );
    let texts: Vec<String> = queries.iter().map(|q| q.text()).collect();
    let mut rows = Vec::new();
    for pair in texts.chunks(2) {
        let mut row = Vec::new();
        for (j, t) in pair.iter().enumerate() {
            row.push(format!("{}", rows.len() * 2 + j + 1));
            row.push(t.clone());
        }
        while row.len() < 4 {
            row.push(String::new());
        }
        rows.push(row);
    }
    print_table(&["#", "query", "#", "query"], &rows);

    // Timed two-phase loop over the whole workload: differentiate each
    // query, then explore its top interpretations. The explore phase runs
    // on the parallel execution engine with the configured thread count;
    // results are identical for every setting, only the wall time moves.
    let kdap = Kdap::builder(wh)
        .threads(threads)
        .build()
        .expect("measure defined");
    let mut checksum = 0.0f64;
    let mut explored = 0usize;
    let t0 = Instant::now();
    for q in &queries {
        let ranked = kdap.interpret(&q.text());
        for r in ranked.iter().take(3) {
            let ex = kdap.explore(&r.net).expect("star net evaluates");
            checksum += ex.total_aggregate;
            explored += 1;
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "\nexplore workload: {} explorations in {:.1} ms (threads={}, checksum {:.3})",
        explored,
        elapsed.as_secs_f64() * 1e3,
        threads,
        checksum
    );
}
