//! Robustness check — Figure 4's conclusions across generator seeds.
//!
//! The paper evaluates one fixed dataset/workload; our substitution makes
//! both synthetic, so we verify the conclusions do not hinge on seed 42:
//! for several (warehouse, workload) seeds, the standard method's top-1 /
//! top-5 satisfaction and its margin over the no-group-number-norm
//! ablation are reported. The reproduction claim stands if the ordering
//! (standard ≳ no-size-norm > baseline ≫ no-number-norm) holds for every
//! seed.
//!
//! Run: `cargo run --release -p kdap-bench --bin exp_sensitivity`

use kdap_bench::{cumulative_curve, print_table, rank_of_intended};
use kdap_core::{generate_star_nets, rank_star_nets, GenConfig, RankMethod};
use kdap_datagen::{build_aw_online, generate_workload, Scale, WorkloadConfig};
use kdap_textindex::TextIndex;

const SEEDS: &[u64] = &[1, 7, 42, 123, 2026];

fn main() {
    let scale = if std::env::args().any(|a| a.contains("small")) {
        Scale::small()
    } else {
        Scale::full()
    };
    println!("## Seed sensitivity of the Figure 4 conclusions (AW_ONLINE)\n");

    let mut rows = Vec::new();
    let mut ordering_holds_everywhere = true;
    for &seed in SEEDS {
        eprintln!("seed {seed}: building warehouse + workload...");
        let wh = build_aw_online(scale, seed).expect("generator is valid");
        let index = TextIndex::build(&wh);
        let wl = WorkloadConfig {
            seed: seed.wrapping_mul(31).wrapping_add(17),
            ..WorkloadConfig::default()
        };
        let queries = generate_workload(&wh, &wl);

        let mut per_method: Vec<Vec<Option<usize>>> = vec![Vec::new(); RankMethod::ALL.len()];
        for q in &queries {
            let refs: Vec<&str> = q.keywords.iter().map(String::as_str).collect();
            let nets = generate_star_nets(&wh, &index, &refs, &GenConfig::default());
            for (mi, m) in RankMethod::ALL.iter().enumerate() {
                let ranked = rank_star_nets(nets.clone(), *m);
                per_method[mi].push(rank_of_intended(&wh, &ranked, q));
            }
        }
        let top = |mi: usize, k: usize| cumulative_curve(&per_method[mi], k)[k - 1];
        let std1 = top(0, 1);
        let std5 = top(0, 5);
        let nonum5 = top(1, 5);
        let nosize5 = top(2, 5);
        let base5 = top(3, 5);
        let holds = std5 >= base5 - 1e-9 && base5 > nonum5 && nosize5 > nonum5;
        ordering_holds_everywhere &= holds;
        rows.push(vec![
            format!("{seed}"),
            format!("{std1:.0}%"),
            format!("{std5:.0}%"),
            format!("{nosize5:.0}%"),
            format!("{base5:.0}%"),
            format!("{nonum5:.0}%"),
            if holds { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &[
            "seed",
            "standard top-1",
            "standard top-5",
            "no-size-norm top-5",
            "baseline top-5",
            "no-number-norm top-5",
            "ordering holds",
        ],
        &rows,
    );
    println!(
        "\nFigure 4 ordering (standard ≈ no-size-norm ≥ baseline ≫ no-number-norm) \
         holds for every seed: {}",
        if ordering_holds_everywhere {
            "YES"
        } else {
            "NO"
        }
    );
}
