//! Property-based tests for the executor: RowSet vs a model set,
//! semi-join vs brute-force join, aggregation consistency, bucketizers.

use std::collections::HashSet;

use proptest::prelude::*;

use kdap_query::{
    aggregate_total, group_by_categorical, paths_between, AggFunc, Bucketizer, JoinIndex, RowSet,
    Selection,
};
use kdap_warehouse::{Value, ValueType, Warehouse, WarehouseBuilder};

proptest! {
    /// RowSet agrees with a HashSet model under insert/intersect/union.
    #[test]
    fn rowset_model(
        n in 1usize..200,
        a in proptest::collection::vec(0usize..200, 0..80),
        b in proptest::collection::vec(0usize..200, 0..80),
    ) {
        let a: Vec<usize> = a.into_iter().filter(|&x| x < n).collect();
        let b: Vec<usize> = b.into_iter().filter(|&x| x < n).collect();
        let sa = RowSet::from_rows(n, a.iter().copied());
        let sb = RowSet::from_rows(n, b.iter().copied());
        let ma: HashSet<usize> = a.iter().copied().collect();
        let mb: HashSet<usize> = b.iter().copied().collect();

        prop_assert_eq!(sa.len(), ma.len());
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let minter: HashSet<usize> = ma.intersection(&mb).copied().collect();
        prop_assert_eq!(inter.iter().collect::<HashSet<_>>(), minter);
        let mut uni = sa.clone();
        uni.union_with(&sb);
        let muni: HashSet<usize> = ma.union(&mb).copied().collect();
        prop_assert_eq!(uni.iter().collect::<HashSet<_>>(), muni);
        for row in 0..n {
            prop_assert_eq!(sa.contains(row), ma.contains(&row));
        }
    }

    /// Semi-join along FACT → DIM → OUTER equals a brute-force join.
    #[test]
    fn semijoin_matches_bruteforce(
        dim_outer in proptest::collection::vec(0i64..5, 1..8),      // DIM row → OUTER key
        fact_dim in proptest::collection::vec(0i64..8, 0..60),      // FACT row → DIM key
        outer_labels in proptest::collection::vec(0u8..3, 5),       // OUTER key → label id
        wanted in 0u8..3,
    ) {
        let n_dim = dim_outer.len() as i64;
        let wh = build_chain(&dim_outer, &fact_dim, &outer_labels);
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let outer = wh.table_id("OUTER").unwrap();
        let path = paths_between(wh.schema(), fact, outer, 4).remove(0);
        let attr = wh.col_ref("OUTER", "Label").unwrap();
        let dict = wh.column(attr).dict().unwrap();
        let codes: Vec<u32> = dict.code_of(&format!("L{wanted}")).into_iter().collect();

        let sel = Selection::by_codes(path, attr, codes);
        let got: HashSet<usize> = sel.eval(&wh, &idx, fact).iter().collect();

        // Brute force: follow keys by hand.
        let mut expect = HashSet::new();
        for (f, dkey) in fact_dim.iter().enumerate() {
            if *dkey < n_dim {
                let okey = dim_outer[*dkey as usize];
                if outer_labels[okey as usize] == wanted {
                    expect.insert(f);
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Group-by aggregates partition the total: Σ groups = total over
    /// rows that join successfully with a non-null attribute.
    #[test]
    fn groupby_partitions_total(
        dim_outer in proptest::collection::vec(0i64..5, 1..8),
        fact_dim in proptest::collection::vec(0i64..8, 1..60),
        outer_labels in proptest::collection::vec(0u8..3, 5),
    ) {
        let n_dim = dim_outer.len() as i64;
        let wh = build_chain(&dim_outer, &fact_dim, &outer_labels);
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let outer = wh.table_id("OUTER").unwrap();
        let path = paths_between(wh.schema(), fact, outer, 4).remove(0);
        let attr = wh.col_ref("OUTER", "Label").unwrap();
        let measure = wh.schema().measure_by_name("M").unwrap().clone();
        let all = RowSet::full(wh.fact_rows());
        let groups = group_by_categorical(&wh, &idx, fact, &path, attr, &all, &measure, AggFunc::Sum);
        let group_total: f64 = groups.values().sum();
        // Joinable facts only (dangling fact keys fall out of the join).
        let joined = RowSet::from_rows(
            wh.fact_rows(),
            fact_dim
                .iter()
                .enumerate()
                .filter(|(_, d)| **d < n_dim)
                .map(|(i, _)| i),
        );
        let direct = aggregate_total(&wh, &measure, &joined, AggFunc::Sum);
        prop_assert!((group_total - direct).abs() < 1e-6, "{group_total} vs {direct}");
    }

    /// Every in-range value lands in exactly one equal-width bucket, and
    /// bucket bounds tile the domain.
    #[test]
    fn equal_width_bucketizer_total(values in proptest::collection::vec(-1e6..1e6f64, 1..50), n in 1usize..64) {
        let b = Bucketizer::equal_width(values.iter().copied(), n).unwrap();
        for v in &values {
            let i = b.bucket_of(*v);
            prop_assert!(i.is_some());
            prop_assert!(i.unwrap() < b.n_buckets());
        }
        let mut prev_hi: Option<f64> = None;
        for i in 0..b.n_buckets() {
            let (lo, hi) = b.bounds(i);
            prop_assert!(hi >= lo);
            if let Some(p) = prev_hi {
                prop_assert!((lo - p).abs() < 1e-6);
            }
            prev_hi = Some(hi);
        }
    }

    /// Per-distinct bucketizer maps each value to its own bucket, in
    /// sorted order.
    #[test]
    fn per_distinct_bucketizer_exact(values in proptest::collection::vec(-1000i32..1000, 1..40)) {
        let vals: Vec<f64> = values.iter().map(|v| *v as f64).collect();
        let b = Bucketizer::per_distinct(vals.iter().copied()).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, c| a.partial_cmp(c).unwrap());
        sorted.dedup();
        prop_assert_eq!(b.n_buckets(), sorted.len());
        for v in &vals {
            let i = b.bucket_of(*v).unwrap();
            prop_assert_eq!(sorted[i], *v);
        }
    }
}

/// FACT(key, dkey, m) → DIM(dkey, okey) → OUTER(okey, label).
/// Fact rows with out-of-range dim keys are kept as NULLs (dangling keys
/// never enter the column, so FK validation passes).
fn build_chain(dim_outer: &[i64], fact_dim: &[i64], outer_labels: &[u8]) -> Warehouse {
    let n_dim = dim_outer.len() as i64;
    let mut b = WarehouseBuilder::new();
    b.table(
        "FACT",
        &[
            ("Id", ValueType::Int, false),
            ("DKey", ValueType::Int, false),
            ("M", ValueType::Float, false),
        ],
    )
    .unwrap();
    b.table(
        "DIM",
        &[
            ("DKey", ValueType::Int, false),
            ("OKey", ValueType::Int, false),
        ],
    )
    .unwrap();
    b.table(
        "OUTER",
        &[
            ("OKey", ValueType::Int, false),
            ("Label", ValueType::Str, true),
        ],
    )
    .unwrap();
    for (okey, label) in outer_labels.iter().enumerate() {
        b.row(
            "OUTER",
            vec![(okey as i64).into(), format!("L{label}").into()],
        )
        .unwrap();
    }
    for (dkey, okey) in dim_outer.iter().enumerate() {
        b.row("DIM", vec![(dkey as i64).into(), (*okey).into()])
            .unwrap();
    }
    for (f, dkey) in fact_dim.iter().enumerate() {
        let dval: Value = if *dkey < n_dim {
            (*dkey).into()
        } else {
            Value::Null
        };
        b.row(
            "FACT",
            vec![(f as i64).into(), dval, ((f % 7) as f64 + 1.0).into()],
        )
        .unwrap();
    }
    b.edge("FACT.DKey", "DIM.DKey", None, Some("D")).unwrap();
    b.edge("DIM.OKey", "OUTER.OKey", None, None).unwrap();
    b.dimension("D", &["DIM", "OUTER"], vec![], vec![]).unwrap();
    b.fact("FACT").unwrap();
    b.measure_column("M", "FACT.M").unwrap();
    b.finish().unwrap()
}
