//! Execution configuration for the parallel query engine.
//!
//! Every parallel kernel in this workspace is gated behind an
//! [`ExecConfig`]: `threads = 1` runs the exact serial code path
//! (bit-for-bit identical to the historical implementation), while
//! `threads > 1` fans work out over `std::thread::scope` workers. No
//! external thread-pool dependency is used — workers are scoped OS
//! threads pulling indices from a shared atomic counter, so the engine
//! builds anywhere the standard library does.
//!
//! Determinism note: parallel reductions in this workspace merge their
//! per-chunk partial results **in chunk order**, so for a fixed input the
//! output is identical for any `threads ≥ 2`. Floating-point sums can in
//! principle differ from the single-chain serial order in the last ulp;
//! integer-valued measures (and all bitmap/count kernels) are exact under
//! both schedules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use kdap_obs::Obs;

use crate::error::QueryError;
use crate::govern::QueryContext;

/// How query kernels execute: serially or across a fixed number of
/// worker threads. Also carries the [`Obs`] telemetry handle and the
/// optional per-query [`QueryContext`], so every kernel that receives an
/// `ExecConfig` can record timings and poll governance limits without
/// extra parameters; neither participates in equality — configs compare
/// by thread count alone.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of worker threads; `1` means strictly serial execution.
    pub threads: usize,
    /// Observability handle; [`Obs::disabled`] by default, making all
    /// instrumentation a no-op.
    pub obs: Obs,
    /// Per-query governance (deadline / cancellation / memory budget);
    /// `None` by default, making every check a single branch.
    pub govern: Option<Arc<QueryContext>>,
    /// Forces the scalar kernel tier for this session's queries even when
    /// the CPU supports SIMD — the in-process twin of the `KDAP_NO_SIMD`
    /// environment variable, used by equivalence tests and benches to
    /// compare tiers side by side.
    pub force_scalar: bool,
}

impl PartialEq for ExecConfig {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
    }
}

impl Eq for ExecConfig {}

impl ExecConfig {
    /// Strictly serial execution (the default).
    pub fn serial() -> Self {
        ExecConfig {
            threads: 1,
            obs: Obs::disabled(),
            govern: None,
            force_scalar: false,
        }
    }

    /// Execution over `threads` workers; `0` selects the machine's
    /// available parallelism.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ExecConfig {
            threads: threads.max(1),
            obs: Obs::disabled(),
            govern: None,
            force_scalar: false,
        }
    }

    /// The same configuration with `obs` attached.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The same configuration governed by `ctx`.
    pub fn with_govern(mut self, ctx: Arc<QueryContext>) -> Self {
        self.govern = Some(ctx);
        self
    }

    /// The same configuration with the scalar kernel tier forced on (or
    /// off) for this session's batch kernels.
    pub fn with_force_scalar(mut self, force: bool) -> Self {
        self.force_scalar = force;
        self
    }

    /// The kernel tier this configuration's batch kernels dispatch to:
    /// the process-wide [`crate::kernel::active_tier`] unless
    /// `force_scalar` pins the Scalar reference tier.
    pub fn kernel_tier(&self) -> crate::kernel::KernelTier {
        if self.force_scalar {
            crate::kernel::KernelTier::Scalar
        } else {
            crate::kernel::active_tier()
        }
    }

    /// True when kernels must take the serial code path.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Polls the governance context, if any. A single branch when the
    /// query is ungoverned.
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<(), QueryError> {
        match &self.govern {
            None => Ok(()),
            Some(g) => g.check(stage),
        }
    }

    /// Polls governance with stage progress (`completed` of `total`
    /// chunks/steps done). A single branch when ungoverned.
    #[inline]
    pub fn check_at(
        &self,
        stage: &'static str,
        completed: u64,
        total: u64,
    ) -> Result<(), QueryError> {
        match &self.govern {
            None => Ok(()),
            Some(g) => g.check_at(stage, completed, total),
        }
    }

    /// Charges `bytes` against the memory budget, if any. A single
    /// branch when ungoverned.
    #[inline]
    pub fn charge(&self, stage: &'static str, bytes: u64) -> Result<(), QueryError> {
        match &self.govern {
            None => Ok(()),
            Some(g) => g.charge(stage, bytes),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::serial()
    }
}

/// Order-preserving parallel map: applies `f` to every item and returns
/// the results in input order.
///
/// With a serial config (or fewer than two items) this is a plain
/// iterator map — no threads are spawned. Otherwise `exec.threads`
/// scoped workers pull indices from a shared counter, so uneven item
/// costs balance dynamically. A panic in `f` propagates to the caller.
pub fn par_map<T, R, F>(exec: &ExecConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if exec.is_serial() || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = exec.threads.min(n);
    let counter = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // Infallible unless `f` itself panicked, in which case
            // re-raising the panic on the caller's thread is the contract.
            .map(|h| {
                #[allow(clippy::expect_used)]
                h.join().expect("parallel worker panicked")
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        // Infallible: the shared counter hands out each index exactly once.
        .map(|r| {
            #[allow(clippy::expect_used)]
            r.expect("every index is computed exactly once")
        })
        .collect()
}

/// Splits `0..len` into contiguous ranges of at most `chunk` elements.
/// The chunking depends only on `len` and `chunk`, never on the thread
/// count — parallel reductions merge these ranges in order, making their
/// results independent of scheduling.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_default() {
        assert!(ExecConfig::default().is_serial());
        assert_eq!(ExecConfig::serial().threads, 1);
        assert!(!ExecConfig::with_threads(4).is_serial());
        assert!(ExecConfig::with_threads(0).threads >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let exec = ExecConfig::with_threads(threads);
            let out = par_map(&exec, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let exec = ExecConfig::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&exec, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(&exec, &[7u32], |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, chunk) in [(0usize, 4usize), (1, 4), (4, 4), (9, 4), (4096, 1024)] {
            let ranges = chunk_ranges(len, chunk);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered);
                assert!(r.end - r.start <= chunk);
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }
}
