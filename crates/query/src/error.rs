//! Typed errors for the query layer.
//!
//! Historically the executor primitives panicked (`assert!`, `expect`) on
//! misuse; the hot paths now surface structured [`QueryError`]s that the
//! core layer wraps into `kdap_core::KdapError`.

use std::fmt;

/// Errors raised by query-layer primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Two row sets over different universes were combined.
    UniverseMismatch {
        /// Universe (row count) of the left operand.
        left: usize,
        /// Universe of the right operand.
        right: usize,
    },
    /// A row index outside the set's universe was inserted.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// The set's universe.
        universe: usize,
    },
    /// A selection's attribute does not live on its join path's target
    /// table.
    AttrOffPathTarget {
        /// Table id of the selection attribute.
        attr_table: u32,
        /// Table id the path actually reaches.
        target_table: u32,
    },
    /// A word-level set representation carried set bits past its
    /// universe (`RowSet::from_words` with stray bits in the last word).
    TrailingBits {
        /// The set's universe (row count).
        universe: usize,
        /// How many stray bits were set past the universe.
        trailing: u32,
    },
    /// A bucketizer was requested with zero buckets.
    InvalidBucketCount,
    /// A governed query breached its deadline, cancellation token, or
    /// memory budget (see [`crate::govern::QueryContext`]).
    Governed {
        /// Which limit was breached.
        breach: crate::govern::Breach,
        /// Observability span name of the stage where the check fired.
        stage: &'static str,
        /// Chunks/steps of the stage completed before the breach.
        completed: u64,
        /// Total chunks/steps the stage would have run (0 when unknown).
        total: u64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UniverseMismatch { left, right } => {
                write!(f, "universe mismatch: {left} vs {right} rows")
            }
            QueryError::RowOutOfRange { row, universe } => {
                write!(f, "row {row} out of range {universe}")
            }
            QueryError::AttrOffPathTarget {
                attr_table,
                target_table,
            } => write!(
                f,
                "selection attribute lives on table #{attr_table}, but the join path targets table #{target_table}"
            ),
            QueryError::TrailingBits { universe, trailing } => write!(
                f,
                "word representation has {trailing} set bit(s) past the universe of {universe} rows"
            ),
            QueryError::InvalidBucketCount => write!(f, "bucket count must be positive"),
            QueryError::Governed {
                breach,
                stage,
                completed,
                total,
            } => {
                use crate::govern::Breach;
                match breach {
                    Breach::Timeout { elapsed_ms } => {
                        write!(f, "query timed out after {elapsed_ms} ms in `{stage}`")?
                    }
                    Breach::Cancelled => write!(f, "query cancelled in `{stage}`")?,
                    Breach::Budget {
                        budget_bytes,
                        charged_bytes,
                    } => write!(
                        f,
                        "memory budget exceeded in `{stage}`: charged {charged_bytes} of {budget_bytes} bytes"
                    )?,
                }
                if *total > 0 {
                    write!(f, " ({completed}/{total} chunks done)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = QueryError::UniverseMismatch { left: 5, right: 6 };
        assert_eq!(e.to_string(), "universe mismatch: 5 vs 6 rows");
        let e = QueryError::RowOutOfRange {
            row: 9,
            universe: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = QueryError::TrailingBits {
            universe: 130,
            trailing: 3,
        };
        assert!(e.to_string().contains("past the universe of 130 rows"));
        assert!(QueryError::InvalidBucketCount
            .to_string()
            .contains("positive"));
    }
}
