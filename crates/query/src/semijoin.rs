//! Semi-join propagation along join paths, plus fact→dimension row
//! mapping — the executor primitives behind subspace materialization and
//! group-by aggregation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use kdap_obs::CacheCounters;
use kdap_warehouse::{ColRef, EdgeId, TableId, Warehouse};

use crate::bitmap::RowSet;
use crate::error::QueryError;
use crate::path::JoinPath;

/// An origin→target row mapper: `mapper[origin_row]` is the row of the
/// path's target table the origin row joins to, `None` when the join
/// dead-ends.
pub type RowMapper = Arc<Vec<Option<u32>>>;

/// Precomputed per-edge hash indexes over a warehouse.
///
/// For each FK edge `child.fk → parent.pk` we store both directions:
/// * `children_by_key`: parent key → child row ids (semi-join *down*
///   towards the fact table),
/// * `parent_row_by_key`: key → parent row id (mapping fact rows *up* to
///   dimension attributes).
///
/// Built once per warehouse; all query operations borrow it.
pub struct JoinIndex {
    children_by_key: Vec<HashMap<i64, Vec<u32>>>,
    parent_row_by_key: Vec<HashMap<i64, u32>>,
    /// Memoized origin→target row mappers, keyed by `(origin, path)` —
    /// the same path walked from different origin tables (e.g. the fact
    /// table vs. a hierarchy level during roll-up) maps different rows.
    mapper_cache: Mutex<HashMap<(TableId, JoinPath), RowMapper>>,
    mapper_hits: AtomicU64,
    mapper_misses: AtomicU64,
}

impl JoinIndex {
    /// Builds hash indexes for every edge of `wh`.
    pub fn build(wh: &Warehouse) -> Self {
        let schema = wh.schema();
        let mut children_by_key = Vec::with_capacity(schema.edges().len());
        let mut parent_row_by_key = Vec::with_capacity(schema.edges().len());
        for edge in schema.edges() {
            let child_col = wh.column(edge.child);
            let mut by_key: HashMap<i64, Vec<u32>> = HashMap::new();
            for row in 0..child_col.len() {
                if let Some(k) = child_col.get_int(row) {
                    by_key.entry(k).or_default().push(row as u32);
                }
            }
            children_by_key.push(by_key);

            let parent_col = wh.column(edge.parent);
            let mut by_pk: HashMap<i64, u32> = HashMap::with_capacity(parent_col.len());
            for row in 0..parent_col.len() {
                if let Some(k) = parent_col.get_int(row) {
                    // Last writer wins; builders guarantee unique PKs in
                    // practice, and duplicates would be a data bug that the
                    // integrity check surfaces elsewhere.
                    by_pk.insert(k, row as u32);
                }
            }
            parent_row_by_key.push(by_pk);
        }
        JoinIndex {
            children_by_key,
            parent_row_by_key,
            mapper_cache: Mutex::new(HashMap::new()),
            mapper_hits: AtomicU64::new(0),
            mapper_misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss/eviction counters of the row-mapper cache. Mappers are
    /// never dropped, so evictions stay 0 for the index's lifetime.
    pub fn mapper_counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.mapper_hits.load(Ordering::Relaxed),
            misses: self.mapper_misses.load(Ordering::Relaxed),
            evictions: 0,
        }
    }

    /// Child rows of `edge` whose FK equals `key`.
    pub fn children(&self, edge: EdgeId, key: i64) -> &[u32] {
        self.children_by_key[edge.0 as usize]
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The parent row of `edge` with primary key `key`.
    pub fn parent_row(&self, edge: EdgeId, key: i64) -> Option<u32> {
        self.parent_row_by_key[edge.0 as usize].get(&key).copied()
    }

    /// Semi-joins a set of *target-table* rows back down `path` to the
    /// path's origin table, returning the origin rows that reach any of
    /// them. With the empty path this is just `target_rows` itself.
    pub fn rows_reaching(
        &self,
        wh: &Warehouse,
        origin: TableId,
        path: &JoinPath,
        target_rows: &RowSet,
    ) -> RowSet {
        let schema = wh.schema();
        debug_assert_eq!(
            target_rows.universe(),
            wh.table(path.target_table(schema, origin)).nrows()
        );
        let mut current = target_rows.clone();
        // Walk edges from the target back to the origin.
        for &eid in path.edges().iter().rev() {
            let edge = schema.edge(eid);
            let parent_col = wh.column(edge.parent);
            let child_nrows = wh.table(edge.child.table).nrows();
            let mut next = RowSet::empty(child_nrows);
            current.for_each_in_word_range(0..current.n_words(), |parent_row| {
                if let Some(key) = parent_col.get_int(parent_row) {
                    for &child_row in self.children(eid, key) {
                        next.insert(child_row as usize);
                    }
                }
            });
            current = next;
        }
        current
    }

    /// For each row of the path's origin table, the row of the target
    /// table it joins to (or `None` on a NULL FK along the way).
    ///
    /// Mappers are memoized per `(origin, path)` — facet construction
    /// reuses the same dimension paths for every candidate attribute, so
    /// each mapping is built once per session, not once per group-by.
    pub fn row_mapper(
        &self,
        wh: &Warehouse,
        origin: TableId,
        path: &JoinPath,
    ) -> Arc<Vec<Option<u32>>> {
        if let Some(m) = self.mapper_cache.lock().get(&(origin, path.clone())) {
            self.mapper_hits.fetch_add(1, Ordering::Relaxed);
            return m.clone();
        }
        self.mapper_misses.fetch_add(1, Ordering::Relaxed);
        let schema = wh.schema();
        let n = wh.table(origin).nrows();
        let mut mapping: Vec<Option<u32>> = (0..n as u32).map(Some).collect();
        for &eid in path.edges() {
            let edge = schema.edge(eid);
            let child_col = wh.column(edge.child);
            for slot in mapping.iter_mut() {
                *slot = slot.and_then(|row| {
                    child_col
                        .get_int(row as usize)
                        .and_then(|key| self.parent_row(eid, key))
                });
            }
        }
        let mapping = Arc::new(mapping);
        self.mapper_cache
            .lock()
            .insert((origin, path.clone()), mapping.clone());
        mapping
    }
}

/// A selection predicate over a subspace: rows of `attr`'s table whose
/// dictionary code is in `codes`, reached from the origin table via
/// `path`. This is exactly one hit group applied along one join path.
///
/// The numeric-range predicate supports the paper's future-work extension
/// of treating measure/numeric attributes as hit candidates (§7).
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Join path from the origin (fact) table to the attribute's table.
    pub path: JoinPath,
    /// The constrained attribute.
    pub attr: ColRef,
    /// Which target rows qualify.
    pub predicate: Predicate,
}

/// The row predicate of a [`Selection`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Dictionary codes of the selected attribute instances
    /// (OR-semantics within one selection, as within one hit group).
    Codes(Vec<u32>),
    /// Numeric attribute value within `[lo, hi]` (inclusive).
    Range {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
}

impl Selection {
    /// Categorical selection by dictionary codes.
    pub fn by_codes(path: JoinPath, attr: ColRef, codes: Vec<u32>) -> Self {
        Selection {
            path,
            attr,
            predicate: Predicate::Codes(codes),
        }
    }

    /// Numeric selection by inclusive value range.
    pub fn by_range(path: JoinPath, attr: ColRef, lo: f64, hi: f64) -> Self {
        Selection {
            path,
            attr,
            predicate: Predicate::Range { lo, hi },
        }
    }

    /// Evaluates the selection: origin-table rows whose joined target row
    /// satisfies the predicate. Panics on a selection whose attribute is
    /// off the path's target table; hot paths use [`Selection::try_eval`].
    pub fn eval(&self, wh: &Warehouse, idx: &JoinIndex, origin: TableId) -> RowSet {
        // Documented panic (see doc comment above).
        #[allow(clippy::expect_used)]
        self.try_eval(wh, idx, origin)
            .expect("attr must live on path target")
    }

    /// Fallible [`Selection::eval`]: surfaces an attribute/path mismatch
    /// as a typed [`QueryError`] instead of a debug-only assertion.
    pub fn try_eval(
        &self,
        wh: &Warehouse,
        idx: &JoinIndex,
        origin: TableId,
    ) -> Result<RowSet, QueryError> {
        let target = self.path.target_table(wh.schema(), origin);
        if self.attr.table != target {
            return Err(QueryError::AttrOffPathTarget {
                attr_table: self.attr.table.0,
                target_table: target.0,
            });
        }
        let col = wh.column(self.attr);
        let matching: Vec<usize> = match &self.predicate {
            Predicate::Codes(codes) => col.rows_with_codes(codes),
            Predicate::Range { lo, hi } => (0..col.len())
                .filter(|&r| {
                    col.get_float(r)
                        .map(|v| v >= *lo && v <= *hi)
                        .unwrap_or(false)
                })
                .collect(),
        };
        let target_rows = RowSet::from_rows(wh.table(target).nrows(), matching);
        Ok(idx.rows_reaching(wh, origin, &self.path, &target_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::paths_between;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    /// FACT(4 rows) → DIM(2 rows) → OUTER(2 rows)
    fn snowflake() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "FACT",
            &[
                ("Id", ValueType::Int, false),
                ("DKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "DIM",
            &[
                ("DKey", ValueType::Int, false),
                ("OKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.table(
            "OUTER",
            &[
                ("OKey", ValueType::Int, false),
                ("Region", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.rows(
            "OUTER",
            vec![
                vec![10i64.into(), "West".into()],
                vec![20i64.into(), "East".into()],
            ],
        )
        .unwrap();
        b.rows(
            "DIM",
            vec![
                vec![1i64.into(), 10i64.into(), "Widget".into()],
                vec![2i64.into(), 20i64.into(), "Gadget".into()],
            ],
        )
        .unwrap();
        b.rows(
            "FACT",
            vec![
                vec![100i64.into(), 1i64.into()],
                vec![101i64.into(), 1i64.into()],
                vec![102i64.into(), 2i64.into()],
                vec![103i64.into(), 2i64.into()],
            ],
        )
        .unwrap();
        b.edge("FACT.DKey", "DIM.DKey", None, Some("D")).unwrap();
        b.edge("DIM.OKey", "OUTER.OKey", None, None).unwrap();
        b.dimension("D", &["DIM", "OUTER"], vec![], vec![]).unwrap();
        b.fact("FACT").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn semijoin_one_hop() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let dim = wh.table_id("DIM").unwrap();
        let path = paths_between(wh.schema(), fact, dim, 4).remove(0);
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let code = wh.column(attr).dict().unwrap().code_of("Widget").unwrap();
        let sel = Selection::by_codes(path, attr, vec![code]);
        let rows = sel.eval(&wh, &idx, fact);
        assert_eq!(rows.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn semijoin_two_hops() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let outer = wh.table_id("OUTER").unwrap();
        let path = paths_between(wh.schema(), fact, outer, 4).remove(0);
        let attr = wh.col_ref("OUTER", "Region").unwrap();
        let code = wh.column(attr).dict().unwrap().code_of("East").unwrap();
        let sel = Selection::by_codes(path, attr, vec![code]);
        let rows = sel.eval(&wh, &idx, fact);
        assert_eq!(rows.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_path_selection_on_origin() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let dim = wh.table_id("DIM").unwrap();
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let code = wh.column(attr).dict().unwrap().code_of("Gadget").unwrap();
        let sel = Selection::by_codes(JoinPath::empty(), attr, vec![code]);
        let rows = sel.eval(&wh, &idx, dim);
        assert_eq!(rows.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn or_semantics_within_selection() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let dim = wh.table_id("DIM").unwrap();
        let path = paths_between(wh.schema(), fact, dim, 4).remove(0);
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let dict = wh.column(attr).dict().unwrap();
        let sel = Selection::by_codes(
            path,
            attr,
            vec![
                dict.code_of("Widget").unwrap(),
                dict.code_of("Gadget").unwrap(),
            ],
        );
        assert_eq!(sel.eval(&wh, &idx, fact).len(), 4);
    }

    #[test]
    fn row_mapper_follows_joins() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let outer = wh.table_id("OUTER").unwrap();
        let path = paths_between(wh.schema(), fact, outer, 4).remove(0);
        let mapping = idx.row_mapper(&wh, fact, &path);
        assert_eq!(mapping.as_ref(), &vec![Some(0), Some(0), Some(1), Some(1)]);
        // Second call hits the cache and returns the same Arc.
        let again = idx.row_mapper(&wh, fact, &path);
        assert!(Arc::ptr_eq(&mapping, &again));
        assert_eq!(idx.mapper_counters(), CacheCounters::new(1, 1, 0));
    }

    #[test]
    fn row_mapper_cache_distinguishes_origins() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let dim = wh.table_id("DIM").unwrap();
        // The empty path is valid from any origin: its mapper is the
        // identity over that origin's rows. A path-only cache key would
        // hand the FACT-sized identity back for the DIM request.
        let fact_map = idx.row_mapper(&wh, fact, &JoinPath::empty());
        let dim_map = idx.row_mapper(&wh, dim, &JoinPath::empty());
        assert_eq!(fact_map.len(), 4);
        assert_eq!(dim_map.len(), 2, "empty path from DIM is DIM-sized");
    }

    #[test]
    fn try_eval_rejects_off_path_attr() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let outer = wh.table_id("OUTER").unwrap();
        let path = paths_between(wh.schema(), fact, outer, 4).remove(0);
        // DIM attribute, but the path targets OUTER.
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let sel = Selection::by_codes(path, attr, vec![0]);
        let err = sel.try_eval(&wh, &idx, fact).unwrap_err();
        assert!(matches!(err, QueryError::AttrOffPathTarget { .. }));
    }

    #[test]
    fn empty_selection_yields_empty_set() {
        let wh = snowflake();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let dim = wh.table_id("DIM").unwrap();
        let path = paths_between(wh.schema(), fact, dim, 4).remove(0);
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let sel = Selection::by_codes(path, attr, vec![]);
        assert!(sel.eval(&wh, &idx, fact).is_empty());
    }
}
